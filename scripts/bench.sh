#!/usr/bin/env bash
# Regenerates the machine-readable perf snapshots at the repo root:
#
#   BENCH_substrate.json — dense message plane vs the reference loop
#   BENCH_refuters.json  — worker-pool refuters vs flm_par::sequential,
#                          plus certificate encode/decode/verify throughput
#                          (the three legs flm-audit runs per file)
#
# Medians are in ns/op; the "speedups" arrays carry the headline ratios.
# Usage: scripts/bench.sh [samples]   (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${1:-25}"

echo "==> cargo build --release -p flm-bench"
cargo build --release -p flm-bench

echo "==> substrate suite (${SAMPLES} samples)"
./target/release/regen --bench substrate --samples "$SAMPLES" --out BENCH_substrate.json

echo "==> refuter suite (${SAMPLES} samples)"
./target/release/regen --bench refuters --samples "$SAMPLES" --out BENCH_refuters.json

echo "Wrote BENCH_substrate.json and BENCH_refuters.json."
