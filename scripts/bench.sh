#!/usr/bin/env bash
# Regenerates the machine-readable perf snapshots at the repo root:
#
#   BENCH_substrate.json — dense message plane vs the reference loop
#   BENCH_refuters.json  — run-reuse engine (adaptive dispatch, warm run
#                          cache) vs the cold sequential baseline, plus
#                          certificate encode/decode/verify throughput
#                          (the three legs flm-audit runs per file)
#   BENCH_runcache.json  — each engine layer isolated: warm vs cold cache,
#                          scratch arena vs fresh buffers, adaptive vs
#                          naive pool dispatch
#   BENCH_serve.json     — FLMC-RPC round trips against an in-process
#                          flm-serve server: ping floor, refute requests
#                          warm vs cold, mixed-load generator throughput,
#                          plus the sharded plane: router-hop overhead vs
#                          a direct warm RPC, shard-local warm hit vs a
#                          cold simulate through the router, and a
#                          1000-socket wave against the router front
#   BENCH_campaign.json  — a trimmed fixed-seed chaos campaign (sweep +
#                          shrink + certify), parallel vs forced
#                          sequential, plus the deterministic mean shrink
#                          ratio in nodes
#   BENCH_prefix.json    — prefix-sharing incremental simulation: warm
#                          prefix fork and pure snapshot extraction vs a
#                          cold full run on a chain-link-shaped system,
#                          plus the SoA kernel vs the reference loop
#
# Timings are ns/op (min/median/mean); the "speedups" arrays carry the
# headline ratios, computed over the minima — the noise-floor estimator —
# (scripts/check.sh --bench-gate fails on a >25% regression against them).
# Usage: scripts/bench.sh [samples]   (default 25)
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${1:-25}"

echo "==> cargo build --release -p flm-bench"
cargo build --release -p flm-bench

echo "==> substrate suite (${SAMPLES} samples)"
./target/release/regen --bench substrate --samples "$SAMPLES" --out BENCH_substrate.json

echo "==> refuter suite (${SAMPLES} samples)"
./target/release/regen --bench refuters --samples "$SAMPLES" --out BENCH_refuters.json

echo "==> runcache suite (${SAMPLES} samples)"
./target/release/regen --bench runcache --samples "$SAMPLES" --out BENCH_runcache.json

echo "==> serve suite (${SAMPLES} samples)"
./target/release/regen --bench serve --samples "$SAMPLES" --out BENCH_serve.json

echo "==> campaign suite (${SAMPLES} samples)"
./target/release/regen --bench campaign --samples "$SAMPLES" --out BENCH_campaign.json

echo "==> prefix suite (${SAMPLES} samples)"
./target/release/regen --bench prefix --samples "$SAMPLES" --out BENCH_prefix.json

echo "Wrote BENCH_substrate.json, BENCH_refuters.json, BENCH_runcache.json, BENCH_serve.json, BENCH_campaign.json, and BENCH_prefix.json."
