#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
# Everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "All checks passed."
