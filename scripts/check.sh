#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
# Everything must pass with zero warnings.
#
# `--smoke` runs the fast subset only — debug build plus the core and
# simulator unit tests — for a quick pre-push signal; the default (full)
# mode is the gate that counts.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> smoke: cargo build"
    cargo build --workspace
    echo "==> smoke: cargo test (core + sim + par libs)"
    cargo test -p flm-core -p flm-sim -p flm-par --lib --quiet
    echo "Smoke checks passed (run without --smoke for the full gate)."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> audit round-trip smoke"
# A refuter-emitted certificate must audit clean (exit 0), and damaged
# bytes must be rejected as malformed (exit 2) — the flm-audit contract.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/regen --refute ba-nodes --emit-cert "$tmpdir/ba.flmc"
./target/release/flm-audit "$tmpdir/ba.flmc" --quiet
./target/release/regen --refute clock-sync --emit-cert "$tmpdir/clock.flmc"
./target/release/flm-audit "$tmpdir/clock.flmc" --quiet
head -c 40 "$tmpdir/ba.flmc" > "$tmpdir/truncated.flmc"
cat "$tmpdir/ba.flmc" <(printf 'junk') > "$tmpdir/trailing.flmc"
for mutant in truncated trailing; do
    set +e
    ./target/release/flm-audit "$tmpdir/$mutant.flmc" --quiet
    rc=$?
    set -e
    if [[ $rc -ne 2 ]]; then
        echo "flm-audit exited $rc on $mutant.flmc (expected 2: malformed)"
        exit 1
    fi
done

echo "All checks passed."
