#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
# Everything must pass with zero warnings.
#
# `--smoke` runs the fast subset only — debug build plus the core and
# simulator unit tests — for a quick pre-push signal; the default (full)
# mode is the gate that counts.
#
# `--bench-gate` re-measures every labeled speedup ratio and compares it
# against the committed BENCH_*.json snapshots: any ratio that lands below
# 75% of its committed value fails the gate. Run it on the bench host that
# produced the committed numbers; other machines carry different constants.
#
# `--serve-smoke` runs only the flm-serve round-trip smoke (also part of the
# full gate): start flm-serve on an ephemeral port, drive a refute + verify +
# audit round trip through flm-client, and audit the wire certificate with
# the local flm-audit.
#
# `--shard-smoke` stands up a 2-shard cluster behind an flm-router, all
# via the release binaries: warm keys through the router, drive the router
# load mode and cluster stats, kill one shard, restart it over the same
# store directory, and require the router to serve byte-identical
# certificates again once the backend heals.
#
# `--campaign-smoke` runs a tiny fixed-seed chaos campaign end to end:
# `regen --campaign --scale smoke` sweeps the protocol zoo across graph
# families, shrinks every violation, and writes certificates plus a report;
# `flm-audit --batch` must accept the whole directory (exit 0), and a second
# run with the same seed must reproduce the certificates byte-for-byte.
set -euo pipefail
cd "$(dirname "$0")/.."

# Starts flm-serve on an ephemeral port, round-trips refute/verify/audit
# through flm-client, and checks the wire certificate against the local
# flm-audit. Expects release binaries to be built already.
serve_smoke() {
    local tmpdir
    tmpdir="$(mktemp -d)"
    ./target/release/flm-serve --addr 127.0.0.1:0 --port-file "$tmpdir/addr" &
    local serve_pid=$!
    # shellcheck disable=SC2064  # expand tmpdir/serve_pid now, not at exit
    trap "kill $serve_pid 2>/dev/null || true; wait $serve_pid 2>/dev/null || true; rm -rf '$tmpdir'" RETURN
    for _ in $(seq 1 100); do
        [[ -s "$tmpdir/addr" ]] && break
        sleep 0.05
    done
    [[ -s "$tmpdir/addr" ]] || { echo "flm-serve never wrote its port file"; return 1; }
    local addr
    addr="$(cat "$tmpdir/addr")"

    ./target/release/flm-client ping --addr "$addr"
    ./target/release/flm-client refute ba-nodes --addr "$addr" --out "$tmpdir/wire.flmc"
    ./target/release/flm-client verify "$tmpdir/wire.flmc" --addr "$addr"
    ./target/release/flm-client audit "$tmpdir/wire.flmc" --addr "$addr" > /dev/null
    # The wire certificate must satisfy the *local* auditor too.
    ./target/release/flm-audit "$tmpdir/wire.flmc" --quiet
    # Damaged wire bytes must be rejected (exit 2) by the remote audit path.
    head -c 40 "$tmpdir/wire.flmc" > "$tmpdir/damaged.flmc"
    set +e
    ./target/release/flm-client audit "$tmpdir/damaged.flmc" --addr "$addr" 2>/dev/null
    local rc=$?
    set -e
    if [[ $rc -ne 2 ]]; then
        echo "flm-client audit exited $rc on damaged bytes (expected 2: malformed)"
        return 1
    fi
    ./target/release/flm-client stats --addr "$addr"

    # Restart warmth: two server lifetimes over the same --store-dir must
    # serve byte-identical certificate bytes — the second from the on-disk
    # certificate store, without re-simulating.
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    local store_dir="$tmpdir/store" run
    for run in 1 2; do
        rm -f "$tmpdir/addr"
        ./target/release/flm-serve --addr 127.0.0.1:0 --store-dir "$store_dir" \
            --port-file "$tmpdir/addr" &
        serve_pid=$!
        # shellcheck disable=SC2064  # re-arm cleanup with the new pid
        trap "kill $serve_pid 2>/dev/null || true; wait $serve_pid 2>/dev/null || true; rm -rf '$tmpdir'" RETURN
        for _ in $(seq 1 100); do
            [[ -s "$tmpdir/addr" ]] && break
            sleep 0.05
        done
        [[ -s "$tmpdir/addr" ]] || {
            echo "flm-serve (store run $run) never wrote its port file"; return 1; }
        addr="$(cat "$tmpdir/addr")"
        ./target/release/flm-client refute ba-nodes --addr "$addr" \
            --out "$tmpdir/warm$run.flmc"
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    done
    cmp "$tmpdir/warm1.flmc" "$tmpdir/warm2.flmc" || {
        echo "restart warmth broken: certificate bytes differ across restarts"
        return 1
    }
    # The disk-served bytes must satisfy the local auditor too.
    ./target/release/flm-audit "$tmpdir/warm2.flmc" --quiet
}

# Stands up router + 2 shards from the release binaries, warms keys
# through the router, then kills and restarts one shard over its store
# directory and requires the router to serve the same bytes again.
# Expects release binaries to be built already.
shard_smoke() {
    local tmpdir
    tmpdir="$(mktemp -d)"
    local pids=() p0 p1 peers attempt started=0 f
    # shellcheck disable=SC2064  # expand tmpdir now, not at exit
    trap "kill \${pids[@]:-} 2>/dev/null || true; wait 2>/dev/null || true; rm -rf '$tmpdir'" RETURN
    # The peer list must be known before either shard binds, so the ports
    # are picked up front; a collision just retries with fresh picks.
    for attempt in 1 2 3 4 5; do
        p0=$((20000 + RANDOM % 20000))
        p1=$((20000 + RANDOM % 20000))
        [[ $p0 -eq $p1 ]] && continue
        peers="127.0.0.1:$p0,127.0.0.1:$p1"
        rm -f "$tmpdir"/shard0.addr "$tmpdir"/shard1.addr
        ./target/release/flm-serve --addr "127.0.0.1:$p0" --shard-id 0 --peers "$peers" \
            --store-dir "$tmpdir/store0" --port-file "$tmpdir/shard0.addr" 2>/dev/null &
        pids[0]=$!
        ./target/release/flm-serve --addr "127.0.0.1:$p1" --shard-id 1 --peers "$peers" \
            --store-dir "$tmpdir/store1" --port-file "$tmpdir/shard1.addr" 2>/dev/null &
        pids[1]=$!
        started=1
        for f in shard0 shard1; do
            for _ in $(seq 1 100); do
                [[ -s "$tmpdir/$f.addr" ]] && break
                sleep 0.05
            done
            [[ -s "$tmpdir/$f.addr" ]] || started=0
        done
        [[ $started -eq 1 ]] && break
        kill "${pids[@]}" 2>/dev/null || true
        wait "${pids[@]}" 2>/dev/null || true
        echo "shard smoke: port pick $attempt collided, retrying"
    done
    [[ $started -eq 1 ]] || { echo "could not bind a 2-shard topology"; return 1; }

    ./target/release/flm-router --addr 127.0.0.1:0 --shards "$peers" \
        --reconnect-ms 100 --port-file "$tmpdir/router.addr" &
    pids[2]=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmpdir/router.addr" ]] && break
        sleep 0.05
    done
    [[ -s "$tmpdir/router.addr" ]] || { echo "flm-router never wrote its port file"; return 1; }
    local raddr
    raddr="$(cat "$tmpdir/router.addr")"

    ./target/release/flm-client ping --addr "$raddr"
    # Warm one key per side of the split (whichever shard owns which, both
    # families together cover both shards or at worst exercise one twice).
    ./target/release/flm-client refute ba-nodes --addr "$raddr" --out "$tmpdir/ba1.flmc"
    ./target/release/flm-client refute clock-sync --addr "$raddr" --out "$tmpdir/clock1.flmc"
    # Router-served bytes must satisfy the local auditor.
    ./target/release/flm-audit "$tmpdir/ba1.flmc" --quiet
    ./target/release/flm-audit "$tmpdir/clock1.flmc" --quiet
    # Cluster stats and the router load mode, end to end.
    ./target/release/flm-client stats --addr "$raddr"
    ./target/release/flm-client load --addr "$raddr" --mode router \
        --connections 2 --requests 4
    # Kill shard 0 and restart it on the same port over the same store:
    # once the router reconnects, the answer must come back byte-identical
    # (served disk-warm from the store, not re-simulated — the Rust
    # integration tests pin the counters; the smoke pins the bytes).
    kill "${pids[0]}" 2>/dev/null || true
    wait "${pids[0]}" 2>/dev/null || true
    rm -f "$tmpdir/shard0.addr"
    ./target/release/flm-serve --addr "127.0.0.1:$p0" --shard-id 0 --peers "$peers" \
        --store-dir "$tmpdir/store0" --port-file "$tmpdir/shard0.addr" 2>/dev/null &
    pids[0]=$!
    for _ in $(seq 1 100); do
        [[ -s "$tmpdir/shard0.addr" ]] && break
        sleep 0.05
    done
    [[ -s "$tmpdir/shard0.addr" ]] || { echo "restarted shard never wrote its port file"; return 1; }
    local healed=0
    for _ in $(seq 1 100); do
        if ./target/release/flm-client refute ba-nodes --addr "$raddr" \
            --out "$tmpdir/ba2.flmc" 2>/dev/null; then
            healed=1
            break
        fi
        sleep 0.1
    done
    [[ $healed -eq 1 ]] || { echo "router never healed after the shard restart"; return 1; }
    ./target/release/flm-client refute clock-sync --addr "$raddr" --out "$tmpdir/clock2.flmc"
    cmp "$tmpdir/ba1.flmc" "$tmpdir/ba2.flmc" || {
        echo "shard restart broke warmth: ba-nodes bytes differ through the router"
        return 1
    }
    cmp "$tmpdir/clock1.flmc" "$tmpdir/clock2.flmc" || {
        echo "shard restart broke warmth: clock-sync bytes differ through the router"
        return 1
    }
}

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> smoke: cargo build"
    cargo build --workspace
    echo "==> smoke: cargo test (core + sim + par libs)"
    cargo test -p flm-core -p flm-sim -p flm-par --lib --quiet
    echo "Smoke checks passed (run without --smoke for the full gate)."
    exit 0
fi

if [[ "${1:-}" == "--serve-smoke" ]]; then
    echo "==> serve smoke: cargo build --release -p flm-serve -p flm-bench"
    cargo build --release -p flm-serve -p flm-bench
    echo "==> serve smoke: flm-serve round trip on an ephemeral port"
    serve_smoke
    echo "Serve smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--shard-smoke" ]]; then
    echo "==> shard smoke: cargo build --release -p flm-serve"
    cargo build --release -p flm-serve
    echo "==> shard smoke: router + 2 shards, warm, kill, restart, re-serve"
    shard_smoke
    echo "Shard smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--campaign-smoke" ]]; then
    echo "==> campaign smoke: cargo build --release -p flm-bench -p flm-serve"
    cargo build --release -p flm-bench -p flm-serve
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    echo "==> campaign smoke: regen --campaign (seed 0xF1A, smoke scale)"
    ./target/release/regen --campaign --seed 0xF1A --scale smoke \
        --out-dir "$tmpdir/run1"
    ls "$tmpdir"/run1/*.flmc > /dev/null || {
        echo "campaign produced no certificates"; exit 1; }
    echo "==> campaign smoke: flm-audit --batch"
    ./target/release/flm-audit --batch "$tmpdir/run1"
    echo "==> campaign smoke: same seed reproduces byte-identically"
    ./target/release/regen --campaign --seed 0xF1A --scale smoke \
        --out-dir "$tmpdir/run2" 2>/dev/null
    diff -r "$tmpdir/run1" "$tmpdir/run2" > /dev/null || {
        echo "campaign is not reproducible: run1 and run2 differ"; exit 1; }
    echo "Campaign smoke passed."
    exit 0
fi

# Extracts "label<TAB>ratio" pairs from a suite JSON's speedups array
# (the snapshots are hand-rolled JSON with one speedup object per line).
extract_ratios() {
    sed -n 's/.*"label": "\(.*\)", "ratio": \([0-9.]*\).*/\1\t\2/p' "$1"
}

if [[ "${1:-}" == "--bench-gate" ]]; then
    samples="${2:-9}"
    echo "==> bench gate: cargo build --release -p flm-bench"
    cargo build --release -p flm-bench
    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    failed=0
    for suite in substrate refuters runcache serve campaign prefix; do
        committed="BENCH_${suite}.json"
        if [[ ! -f "$committed" ]]; then
            echo "bench gate: missing $committed"
            failed=1
            continue
        fi
        echo "==> bench gate: $suite suite ($samples samples)"
        ./target/release/regen --bench "$suite" --samples "$samples" \
            --out "$tmpdir/$suite.json" 2>/dev/null
        while IFS=$'\t' read -r label committed_ratio; do
            fresh_ratio="$(extract_ratios "$tmpdir/$suite.json" \
                | awk -F'\t' -v l="$label" '$1 == l {print $2}')"
            if [[ -z "$fresh_ratio" ]]; then
                echo "FAIL  $suite: \"$label\" missing from fresh measurement"
                failed=1
                continue
            fi
            verdict="$(awk -v f="$fresh_ratio" -v c="$committed_ratio" \
                'BEGIN {print (f < 0.75 * c) ? "regressed" : "ok"}')"
            if [[ "$verdict" == "regressed" ]]; then
                echo "FAIL  $suite: \"$label\" regressed: ${fresh_ratio}x vs committed ${committed_ratio}x (>25% drop)"
                failed=1
            else
                echo "ok    $suite: \"$label\": ${fresh_ratio}x (committed ${committed_ratio}x)"
            fi
        done < <(extract_ratios "$committed")
    done
    if [[ $failed -ne 0 ]]; then
        echo "Bench gate failed."
        exit 1
    fi
    echo "Bench gate passed."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> audit round-trip smoke"
# A refuter-emitted certificate must audit clean (exit 0), and damaged
# bytes must be rejected as malformed (exit 2) — the flm-audit contract.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/regen --refute ba-nodes --emit-cert "$tmpdir/ba.flmc"
./target/release/flm-audit "$tmpdir/ba.flmc" --quiet
./target/release/regen --refute clock-sync --emit-cert "$tmpdir/clock.flmc"
./target/release/flm-audit "$tmpdir/clock.flmc" --quiet
# The asynchronous (kind 2) family: the certificate's body is the full
# adversarial schedule, the audit replays it, and a rerun must reproduce
# the bytes exactly — schedules are deterministic, not sampled.
./target/release/regen --refute flp-async --emit-cert "$tmpdir/async.flmc"
./target/release/flm-audit "$tmpdir/async.flmc" --quiet
./target/release/regen --refute flp-async --emit-cert "$tmpdir/async2.flmc" > /dev/null
cmp "$tmpdir/async.flmc" "$tmpdir/async2.flmc" || {
    echo "flp-async is not reproducible: emitted certificates differ"
    exit 1
}
head -c 40 "$tmpdir/ba.flmc" > "$tmpdir/truncated.flmc"
cat "$tmpdir/ba.flmc" <(printf 'junk') > "$tmpdir/trailing.flmc"
for mutant in truncated trailing; do
    set +e
    ./target/release/flm-audit "$tmpdir/$mutant.flmc" --quiet
    rc=$?
    set -e
    if [[ $rc -ne 2 ]]; then
        echo "flm-audit exited $rc on $mutant.flmc (expected 2: malformed)"
        exit 1
    fi
done

echo "==> serve round-trip smoke"
serve_smoke

echo "==> shard round-trip smoke"
shard_smoke

echo "All checks passed."
