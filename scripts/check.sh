#!/usr/bin/env bash
# CI gate: formatting, lints, build, and the full test suite.
# Everything must pass with zero warnings.
#
# `--smoke` runs the fast subset only — debug build plus the core and
# simulator unit tests — for a quick pre-push signal; the default (full)
# mode is the gate that counts.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> smoke: cargo build"
    cargo build --workspace
    echo "==> smoke: cargo test (core + sim + par libs)"
    cargo test -p flm-core -p flm-sim -p flm-par --lib --quiet
    echo "Smoke checks passed (run without --smoke for the full gate)."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "All checks passed."
