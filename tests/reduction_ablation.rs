//! Ablation: the two proof paths for the general `n ≤ 3f` case.
//!
//! DESIGN.md calls out a design choice: the general node bound can be proven
//! (a) directly, with the partitioned double cover (`refute::ba_nodes`), or
//! (b) via footnote 3, collapsing classes into super-nodes and refuting on
//! the triangle (`reduction::Collapsed` + the three-node refuter). Both must
//! defeat the same protocols; this suite runs them side by side.

use flm_core::reduction::collapse_for_node_bound;
use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_protocols::{Eig, PhaseKing};
use flm_sim::{Device, Protocol};

struct AsIs<P: Protocol>(P);

impl<P: Protocol> Protocol for AsIs<P> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        self.0.device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        self.0.horizon(g)
    }
}

#[test]
fn direct_and_collapsed_paths_agree_on_k6_f2() {
    let g = builders::complete(6);

    // Path (a): direct partitioned double cover.
    let direct_proto = AsIs(Eig::new(2));
    let direct = refute::ba_nodes(&direct_proto, &g, 2).unwrap();
    direct.verify(&direct_proto).unwrap();

    // Path (b): collapse to the triangle, refute with f = 1.
    let collapsed = collapse_for_node_bound(Eig::new(2), &g, 2).unwrap();
    let tri = collapsed.quotient_graph().clone();
    let via_collapse = refute::ba_nodes(&collapsed, &tri, 1).unwrap();
    via_collapse.verify(&collapsed).unwrap();

    // Both proofs defeat the protocol; the theorems they instantiate match.
    assert_eq!(direct.theorem, via_collapse.theorem);
}

#[test]
fn direct_and_collapsed_paths_agree_on_k5_f2_phase_king() {
    let g = builders::complete(5);
    let direct_proto = AsIs(PhaseKing::new(2));
    let direct = refute::ba_nodes(&direct_proto, &g, 2).unwrap();
    direct.verify(&direct_proto).unwrap();

    let collapsed = collapse_for_node_bound(PhaseKing::new(2), &g, 2).unwrap();
    let tri = collapsed.quotient_graph().clone();
    let via_collapse = refute::ba_nodes(&collapsed, &tri, 1).unwrap();
    via_collapse.verify(&collapsed).unwrap();
}

#[test]
fn collapsed_devices_satisfy_the_axioms() {
    // Footnote 3's claim: "the devices and behaviors in S′ satisfy the
    // Locality and Fault axioms if the underlying devices do". Check
    // locality for the collapsed protocol directly.
    use flm_core::axioms;
    use flm_sim::Input;
    use std::collections::BTreeSet;

    let g = builders::complete(6);
    let collapsed = collapse_for_node_bound(Eig::new(2), &g, 2).unwrap();
    let tri = collapsed.quotient_graph().clone();
    for u_mask in 1u8..7 {
        let u: BTreeSet<NodeId> = tri.nodes().filter(|v| u_mask >> v.0 & 1 == 1).collect();
        if u.is_empty() || u.len() == 3 {
            continue;
        }
        axioms::check_locality(
            &collapsed,
            &tri,
            &|v| Input::Bool(v.0 == 0),
            &u,
            collapsed.horizon(&tri),
        )
        .unwrap_or_else(|e| panic!("collapsed locality (mask {u_mask}): {e}"));
    }
}
