//! The soundness contract of prefix-sharing incremental simulation at the
//! certificate level: resuming a refutation's runs from forked mid-run
//! snapshots is a *performance* layer and must be unobservable in the FLMC
//! bytes. Every theorem family must encode byte-identically whether its
//! runs are simulated cold, replayed warm from the whole-run cache, forked
//! from the prefix trie (whole-run cache cleared, trie kept), fully
//! bypassed, or bypassed under the inline-sequential scheduler.
//!
//! Complements `tests/runcache_determinism.rs`, which pins the same
//! property for the whole-run cache alone.

use flm_core::refute;
use flm_graph::builders;
use flm_protocols::{resolve, resolve_clock};
use flm_sim::clock::TimeFn;
use flm_sim::{prefixcache, runcache};

/// Both caches are process-global and every test below clears them;
/// serialize so one test's `clear()` cannot race another's assertions.
static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn cache_lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Encodes one refutation under five execution modes and demands the FLMC
/// bytes match exactly. The load-bearing mode is `prefix-forked`: the
/// whole-run cache is cleared but the trie keeps the cold run's snapshots,
/// so every run re-executes by forking a stored prefix instead of
/// simulating from tick 0.
fn assert_prefix_modes_agree(label: &str, run: impl Fn() -> Vec<u8>) {
    runcache::clear();
    prefixcache::clear();
    let cold = run();
    let warm = run();
    runcache::clear();
    let forked = run();
    runcache::clear();
    prefixcache::clear();
    let bypassed = runcache::bypass(&run);
    let sequential = flm_par::sequential(|| runcache::bypass(&run));
    for (mode, bytes) in [
        ("whole-run warm", &warm),
        ("prefix-forked", &forked),
        ("bypassed", &bypassed),
        ("sequential + bypassed", &sequential),
    ] {
        assert_eq!(
            &cold, bytes,
            "{label}: {mode} certificate differs from the cold one"
        );
    }
}

#[test]
fn discrete_theorem_families_encode_identically_with_prefix_forking() {
    let _guard = cache_lock();
    let tri = builders::triangle();
    let cyc4 = builders::cycle(4);

    let eig = resolve("EIG(f=1)").unwrap();
    assert_prefix_modes_agree("ba_nodes", || {
        refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes()
    });

    let maj = resolve("NaiveMajority").unwrap();
    assert_prefix_modes_agree("ba_connectivity", || {
        refute::ba_connectivity(&*maj, &cyc4, 1).unwrap().to_bytes()
    });

    let weak = resolve("WeakViaBA(EIG(f=1))").unwrap();
    assert_prefix_modes_agree("weak_agreement", || {
        refute::weak_agreement(&*weak, &tri, 1).unwrap().to_bytes()
    });

    let squad = resolve("FiringSquadViaBA(f=1)").unwrap();
    assert_prefix_modes_agree("firing_squad", || {
        refute::firing_squad(&*squad, &tri, 1).unwrap().to_bytes()
    });

    let dlpsw = resolve("DLPSW(f=1, R=4)").unwrap();
    assert_prefix_modes_agree("simple_approx", || {
        refute::simple_approx(&*dlpsw, &tri, 1).unwrap().to_bytes()
    });
    assert_prefix_modes_agree("eps_delta_gamma", || {
        refute::eps_delta_gamma(&*dlpsw, &tri, 1, 0.25, 1.0, 1.0)
            .unwrap()
            .to_bytes()
    });
}

#[test]
fn clock_sync_encodes_identically_with_prefix_forking() {
    // Clock refuters memoize through `memoize_clock` and never touch the
    // trie (dense real-time runs have no tick-aligned prefix structure);
    // the assertion pins that the trie's presence cannot perturb them.
    let _guard = cache_lock();
    let protocol = resolve_clock("TrivialClockSync").unwrap();
    let claim = flm_core::problems::ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    };
    let tri = builders::triangle();
    assert_prefix_modes_agree("clock_sync", || {
        refute::clock_sync(&*protocol, &tri, 1, &claim)
            .unwrap()
            .to_bytes()
    });
}

#[test]
fn prefix_forked_re_refutation_actually_resumes_from_the_trie() {
    let _guard = cache_lock();
    let eig = resolve("EIG(f=1)").unwrap();
    let tri = builders::triangle();
    runcache::clear();
    prefixcache::clear();
    prefixcache::reset_stats();

    let cold = refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes();
    let after_cold = prefixcache::stats();
    assert!(
        after_cold.entries > 0,
        "a cold refutation must stock the trie with snapshots, got {after_cold:?}"
    );

    // Clearing only the whole-run cache forces full re-execution — which
    // must now resume from stored prefixes rather than tick 0.
    runcache::clear();
    let forked = refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes();
    let after_forked = prefixcache::stats();
    assert_eq!(cold, forked, "prefix-forked bytes diverged");
    assert!(
        after_forked.hits > after_cold.hits && after_forked.ticks_saved > after_cold.ticks_saved,
        "re-refutation should fork trie snapshots, got {after_cold:?} then {after_forked:?}"
    );
}

#[test]
fn certificates_verify_after_prefix_forked_rebuilds() {
    let _guard = cache_lock();
    let maj = resolve("NaiveMajority").unwrap();
    let cyc4 = builders::cycle(4);
    runcache::clear();
    prefixcache::clear();
    let cert = refute::ba_connectivity(&*maj, &cyc4, 1).unwrap();
    // Verify with the whole-run cache emptied: the rebuild re-executes the
    // violating link by forking the refutation's stored prefixes.
    runcache::clear();
    cert.verify(&*maj).expect("prefix-forked verify");
    // And with both layers emptied: a genuinely cold verify still passes.
    runcache::clear();
    prefixcache::clear();
    cert.verify(&*maj).expect("cold verify");
}

#[test]
fn disabled_trie_changes_nothing_but_the_counters() {
    // `runcache::bypass` also bypasses the trie; certificates must come out
    // identical and the trie must stay unstocked.
    let _guard = cache_lock();
    let eig = resolve("EIG(f=1)").unwrap();
    let tri = builders::triangle();
    runcache::clear();
    prefixcache::clear();
    let with_trie = refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes();
    prefixcache::clear();
    prefixcache::reset_stats();
    let without = runcache::bypass(|| {
        runcache::clear();
        refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes()
    });
    assert_eq!(with_trie, without);
    let stats = prefixcache::stats();
    assert_eq!(
        (stats.entries, stats.hits),
        (0, 0),
        "bypassed runs must not touch the trie, got {stats:?}"
    );
}
