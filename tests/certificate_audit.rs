//! End-to-end audit-trail properties: every refuter's certificate survives
//! the portable `FLMC` byte format and re-verifies from the bytes alone,
//! with the protocol recovered through the registry — the exact path
//! `flm-audit` takes on a file it has never seen before.

use flm_core::codec::AnyCertificate;
use flm_core::problems::ClockSyncClaim;
use flm_core::{refute, Certificate};
use flm_graph::builders;
use flm_protocols::clock_sync::TrivialClockSync;
use flm_protocols::registry::NaiveMajority;
use flm_protocols::{resolve, resolve_clock, Dlpsw, Eig, FiringSquadViaBa, WeakViaBa};
use flm_sim::clock::TimeFn;
use flm_sim::RunPolicy;

/// Encode → decode → re-encode must be byte-identical, and the decoded
/// certificate must verify against the registry-resolved protocol.
fn audit_round_trip(cert: &Certificate) {
    let bytes = cert.to_bytes();
    let decoded = Certificate::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{}: decode failed: {e}", cert.protocol));
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "{}: re-encode is not byte-identical",
        cert.protocol
    );
    let protocol =
        resolve(&decoded.protocol).unwrap_or_else(|e| panic!("{}: registry: {e}", cert.protocol));
    decoded
        .verify(&*protocol)
        .unwrap_or_else(|e| panic!("{}: decoded cert failed verification: {e}", cert.protocol));
}

#[test]
fn ba_nodes_certificate_round_trips() {
    let cert = refute::ba_nodes(&Eig::new(1), &builders::triangle(), 1).unwrap();
    audit_round_trip(&cert);
}

#[test]
fn ba_connectivity_certificate_round_trips() {
    let cert = refute::ba_connectivity(&NaiveMajority, &builders::cycle(4), 1).unwrap();
    audit_round_trip(&cert);
}

#[test]
fn weak_agreement_certificate_round_trips() {
    let cert = refute::weak_agreement(&WeakViaBa::new(1), &builders::triangle(), 1).unwrap();
    audit_round_trip(&cert);
}

#[test]
fn firing_squad_certificate_round_trips() {
    let cert = refute::firing_squad(&FiringSquadViaBa::new(1), &builders::triangle(), 1).unwrap();
    audit_round_trip(&cert);
}

#[test]
fn simple_approx_certificate_round_trips() {
    let cert = refute::simple_approx(&Dlpsw::new(1, 4), &builders::triangle(), 1).unwrap();
    audit_round_trip(&cert);
}

#[test]
fn eps_delta_gamma_certificate_round_trips() {
    let cert = refute::eps_delta_gamma(&Dlpsw::new(1, 4), &builders::triangle(), 1, 0.25, 1.0, 1.0)
        .unwrap();
    audit_round_trip(&cert);
}

#[test]
fn clock_certificate_round_trips() {
    let proto = TrivialClockSync {
        l: TimeFn::identity(),
    };
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    };
    let cert = refute::clock_sync(&proto, &builders::triangle(), 1, &claim).unwrap();
    let bytes = cert.to_bytes();
    let decoded = match flm_core::codec::decode_any(&bytes).unwrap() {
        AnyCertificate::Clock(c) => c,
        other => panic!("clock cert decoded as a different kind: {other:?}"),
    };
    assert_eq!(decoded.to_bytes(), bytes);
    let resolved = resolve_clock(&decoded.protocol).unwrap();
    decoded.verify(&*resolved).unwrap();
}

/// A certificate built under a non-default run policy records it, replays
/// under it, and does *not* verify under the default policy: the tick cap
/// changes what the chain behaviors look like, so the policy is part of the
/// evidence.
#[test]
fn non_default_policy_is_recorded_and_required() {
    let tight = RunPolicy {
        max_ticks: 2,
        ..RunPolicy::default()
    };
    let protocol = Eig::new(1); // decides at tick 3, after the cap
    let cert = flm_core::with_policy(tight, || {
        refute::ba_nodes(&protocol, &builders::triangle(), 1)
    })
    .unwrap();
    assert_eq!(cert.policy, tight);
    audit_round_trip(&cert);

    // Forging the policy back to the default must break reproduction: with
    // the cap lifted the devices run to their real horizon and decide.
    let mut forged = cert.clone();
    forged.policy = RunPolicy::default();
    assert!(
        forged.verify(&protocol).is_err(),
        "forged policy still verified; the recorded policy is not load-bearing"
    );
}

/// The recorded policy travels with the bytes, not a thread-local: decoding
/// on a fresh thread with no `with_policy` scope still replays correctly.
#[test]
fn decoded_policy_survives_thread_boundaries() {
    let tight = RunPolicy {
        max_ticks: 2,
        ..RunPolicy::default()
    };
    let cert = flm_core::with_policy(tight, || {
        refute::ba_nodes(&Eig::new(1), &builders::triangle(), 1)
    })
    .unwrap();
    let bytes = cert.to_bytes();
    std::thread::spawn(move || {
        let decoded = Certificate::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.policy, tight);
        decoded.verify(&Eig::new(1)).unwrap();
    })
    .join()
    .unwrap();
}
