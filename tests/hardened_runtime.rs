//! Acceptance tests for the hardened execution substrate: a hostile device
//! — one that panics inside `step`, breaks the port discipline, or floods a
//! port — must never abort a refuter. When the fault budget `f` permits, the
//! degradation policy reclassifies the node as Byzantine-faulty and the
//! refuter still emits a machine-checkable certificate carrying the
//! [`flm_sim::DeviceMisbehavior`] evidence; when it cannot, the refuter
//! returns the structured [`RefuteError::Misbehavior`] diagnostic instead.

use flm_core::refute::{self, RefuteError};
use flm_graph::{builders, Graph, NodeId};
use flm_sim::device::{snapshot, NodeCtx, Payload};
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::{Device, Input, MisbehaviorKind, Protocol, RunPolicy, System, Tick};

/// Honest until tick `at`, then hostile in one of three ways.
struct HostileDevice {
    at: u32,
    mode: u8,
    input: bool,
}

impl Device for HostileDevice {
    fn name(&self) -> &'static str {
        "Hostile"
    }
    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input.as_bool().unwrap_or(false);
    }
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        if t.0 >= self.at {
            match self.mode {
                0 => panic!("hostile device detonated at tick {}", t.0),
                1 => return vec![None; inbox.len() + 1],
                _ => return vec![Some(vec![0xAB; 100_000].into()); inbox.len()],
            }
        }
        inbox
            .iter()
            .map(|_| Some(vec![u8::from(self.input)].into()))
            .collect()
    }
    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"hostile")
    }
}

/// Naive majority everywhere except one hostile node.
struct OneBadApple {
    victim: NodeId,
    mode: u8,
}

impl Protocol for OneBadApple {
    fn name(&self) -> String {
        format!("OneBadApple(victim={}, mode={})", self.victim, self.mode)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        if v == self.victim {
            Box::new(HostileDevice {
                at: 1,
                mode: self.mode,
                input: false,
            })
        } else {
            Box::new(NaiveMajorityDevice::new())
        }
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        4
    }
}

#[test]
fn hostile_device_never_aborts_run_contained() {
    for mode in 0..3 {
        let mut sys = System::new(builders::triangle());
        for v in sys.graph().nodes() {
            sys.assign(
                v,
                OneBadApple {
                    victim: NodeId(0),
                    mode,
                }
                .device(sys.graph(), v),
                Input::Bool(true),
            );
        }
        let b = sys
            .run_contained(4, &RunPolicy::default())
            .expect("contained runs absorb hostile devices");
        assert_eq!(
            b.misbehaving_nodes().into_iter().collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
        let m = &b.misbehavior()[0];
        assert_eq!(m.tick, Tick(1));
        match mode {
            0 => {
                assert!(matches!(&m.kind, MisbehaviorKind::Panic(msg) if msg.contains("detonated")))
            }
            1 => assert!(matches!(
                m.kind,
                MisbehaviorKind::PortMismatch {
                    expected: 2,
                    got: 3
                }
            )),
            _ => assert!(matches!(
                m.kind,
                MisbehaviorKind::OversizedPayload { len: 100_000, .. }
            )),
        }
    }
}

#[test]
fn degradation_yields_a_certificate_when_the_budget_permits() {
    // C4 with f = 2 is inadequate by connectivity (κ = 2 ≤ 2f); each chain
    // link masquerades one cut-half (1 node), leaving budget to degrade the
    // hostile node when it lands in the correct set.
    for mode in 0..3 {
        let proto = OneBadApple {
            victim: NodeId(0),
            mode,
        };
        let cert = refute::ba_connectivity(&proto, &builders::cycle(4), 2)
            .unwrap_or_else(|e| panic!("mode {mode}: expected a certificate, got {e}"));
        // The evidence rides in the chain: the victim was degraded to faulty
        // in at least one link, with the incident recorded.
        let degraded_links: Vec<_> = cert
            .chain
            .iter()
            .filter(|l| l.degraded.contains(&NodeId(0)))
            .collect();
        assert!(
            !degraded_links.is_empty(),
            "mode {mode}: no link degraded the hostile node"
        );
        for link in &degraded_links {
            assert!(link
                .misbehavior
                .iter()
                .any(|m| m.node == NodeId(0) && m.tick == Tick(1)));
        }
        // The certificate survives independent re-execution, misbehavior
        // evidence included.
        cert.verify(&proto)
            .unwrap_or_else(|e| panic!("mode {mode}: verify failed: {e}"));
        // And the rendered certificate shows the degradation.
        let shown = cert.to_string();
        assert!(shown.contains("degraded to faulty"), "{shown}");
    }
}

#[test]
fn degradation_over_budget_is_a_structured_diagnostic() {
    // On the triangle with f = 1 every chain link already masquerades one
    // class, so degrading the hostile node would need f = 2: the refuter
    // must return the Misbehavior diagnostic — never panic.
    for mode in 0..3 {
        let proto = OneBadApple {
            victim: NodeId(0),
            mode,
        };
        match refute::ba_nodes(&proto, &builders::triangle(), 1) {
            Err(RefuteError::Misbehavior { incidents, reason }) => {
                assert!(incidents.iter().any(|m| m.node == NodeId(0)));
                assert!(reason.contains("f = 1"), "{reason}");
            }
            Ok(cert) => panic!("mode {mode}: unexpectedly refuted: {cert}"),
            Err(e) => panic!("mode {mode}: expected Misbehavior, got {e}"),
        }
    }
}

#[test]
fn weak_and_firing_squad_refuters_survive_hostile_devices() {
    // The ring refuters route hostile devices into either a certificate or
    // the Misbehavior diagnostic; the point is they never panic or abort.
    for mode in 0..3 {
        let proto = OneBadApple {
            victim: NodeId(0),
            mode,
        };
        for result in [
            refute::weak_agreement(&proto, &builders::triangle(), 1),
            refute::firing_squad(&proto, &builders::triangle(), 1),
        ] {
            match result {
                Ok(cert) => cert
                    .verify(&proto)
                    .unwrap_or_else(|e| panic!("mode {mode}: verify failed: {e}")),
                Err(
                    RefuteError::Misbehavior { .. }
                    | RefuteError::Unrefuted { .. }
                    | RefuteError::ModelViolation { .. },
                ) => {}
                Err(e) => panic!("mode {mode}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn honest_protocols_never_record_misbehavior() {
    struct Honest;
    impl Protocol for Honest {
        fn name(&self) -> String {
            "Honest".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(NaiveMajorityDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }
    let cert = refute::ba_nodes(&Honest, &builders::triangle(), 1).unwrap();
    assert!(cert.chain.iter().all(|l| l.misbehavior.is_empty()));
    assert!(cert.chain.iter().all(|l| l.degraded.is_empty()));
    cert.verify(&Honest).unwrap();
}
