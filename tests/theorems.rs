//! Experiments E1–E8: one driver per theorem of the paper, each refuting
//! the *real* protocols of `flm-protocols` on inadequate graphs and
//! verifying every certificate by independent re-execution.

use flm_core::problems::ClockSyncClaim;
use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_protocols::clock_sync::{AveragingClockSync, TrivialClockSync};
use flm_protocols::{Dlpsw, Eig, FiringSquadViaBa, PhaseKing, WeakViaBa};
use flm_sim::clock::TimeFn;
use flm_sim::{Device, Protocol};

/// Wraps any protocol so its fault budget and the refuter's can differ —
/// the refuter always installs the devices as-is.
struct AsIs<P: Protocol>(P);

impl<P: Protocol> Protocol for AsIs<P> {
    fn name(&self) -> String {
        self.0.name()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        self.0.device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        self.0.horizon(g)
    }
}

#[test]
fn e1_theorem1_node_bound() {
    // The genuine EIG devices, installed on the triangle, fall.
    let proto = AsIs(Eig::new(1));
    let cert = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
    assert!(cert.chain.iter().all(|l| l.scenario_matched));
    cert.verify(&proto).unwrap();

    // And phase-king devices on K4 with f = 2 (4 ≤ 6 = 3f).
    let pk = AsIs(PhaseKing::new(2));
    let cert = refute::ba_nodes(&pk, &builders::complete(4), 2).unwrap();
    cert.verify(&pk).unwrap();
}

#[test]
fn e2_theorem1_connectivity_bound() {
    struct Flood;
    impl Protocol for Flood {
        fn name(&self) -> String {
            "Table".into()
        }
        fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::TableDevice::new(u64::from(v.0), 4))
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            6
        }
    }
    for g in [builders::cycle(4), builders::cycle(6), builders::path(5)] {
        let cert = refute::ba_connectivity(&Flood, &g, 1).unwrap();
        cert.verify(&Flood).unwrap();
    }
    // f = 2 on a 4-connected-but-not-5-connected graph: K3,4 has κ = 3 ≤ 4.
    let g = builders::complete_bipartite(3, 4);
    let cert = refute::ba_connectivity(&Flood, &g, 2).unwrap();
    cert.verify(&Flood).unwrap();
}

#[test]
fn e3_theorem2_weak_agreement() {
    let proto = AsIs(WeakViaBa::new(1));
    let cert = refute::weak_agreement(&proto, &builders::triangle(), 1).unwrap();
    cert.verify(&proto).unwrap();
    // The ring grows with the protocol's decision time: a slower protocol
    // still falls, with a longer ring.
    assert!(cert.covering.contains("ring"));
}

#[test]
fn e4_theorem4_firing_squad() {
    let proto = AsIs(FiringSquadViaBa::new(1));
    let cert = refute::firing_squad(&proto, &builders::triangle(), 1).unwrap();
    cert.verify(&proto).unwrap();
}

#[test]
fn e5_theorem5_simple_approx() {
    let proto = AsIs(Dlpsw::new(1, 3));
    let cert = refute::simple_approx(&proto, &builders::triangle(), 1).unwrap();
    cert.verify(&proto).unwrap();
}

#[test]
fn e6_theorem6_eps_delta_gamma() {
    let proto = AsIs(Dlpsw::new(1, 3));
    for (eps, delta, gamma) in [(0.25, 1.0, 1.0), (0.5, 1.0, 2.0), (0.01, 0.1, 0.5)] {
        let cert = refute::eps_delta_gamma(&proto, &builders::triangle(), 1, eps, delta, gamma)
            .unwrap_or_else(|e| panic!("ε={eps} δ={delta} γ={gamma}: {e}"));
        cert.verify(&proto).unwrap();
    }
}

#[test]
fn e7_theorem8_clock_sync() {
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 6.0),
        alpha: 1.5,
        t_prime: 1.0,
    };
    let trivial = TrivialClockSync {
        l: TimeFn::identity(),
    };
    let avg = AveragingClockSync {
        l: TimeFn::identity(),
        period: 2.0,
    };
    let c1 = refute::clock_sync(&trivial, &builders::triangle(), 1, &claim).unwrap();
    c1.verify(&trivial).unwrap();
    let c2 = refute::clock_sync(&avg, &builders::triangle(), 1, &claim).unwrap();
    c2.verify(&avg).unwrap();
    // The general n ≤ 3f case via the clock-device collapse.
    let (c3, collapsed) = flm_core::clock_reduction::clock_sync_general(
        TrivialClockSync {
            l: TimeFn::identity(),
        },
        &builders::complete(6),
        2,
        &claim,
    )
    .unwrap();
    c3.verify(&collapsed).unwrap();
}

#[test]
fn e8_corollaries_12_to_15() {
    // Corollary 12/13: linear envelopes, drift rate r.
    let dev = TrivialClockSync {
        l: TimeFn::identity(),
    };
    let c = refute::corollary_13(&dev, 1.5, 1.0, 0.0, TimeFn::affine(1.5, 6.0), 1.0, 1.0).unwrap();
    c.verify(&dev).unwrap();
    // Corollary 14: affine offset clocks.
    let half = TrivialClockSync {
        l: TimeFn::affine(0.5, 0.25),
    };
    let c =
        refute::corollary_14(&half, 2.0, 0.5, 0.25, TimeFn::affine(1.0, 5.0), 0.75, 1.0).unwrap();
    c.verify(&half).unwrap();
    // Corollary 15: logarithmic lower envelope.
    let logd = TrivialClockSync { l: TimeFn::Log2 };
    let c = refute::corollary_15(&logd, 2.0, TimeFn::affine(1.0, 3.0), 0.8, 1.0).unwrap();
    c.verify(&logd).unwrap();
}

#[test]
fn e10_authenticated_agreement_beats_the_bound() {
    use flm_protocols::{testkit, DolevStrong};
    // n = 3 = 3f and n = 5 < 3f+1 = 7: both fine with signatures.
    testkit::assert_byzantine_agreement(&DolevStrong::new(1, 1), &builders::triangle(), 1, 4);
    testkit::assert_byzantine_agreement(&DolevStrong::new(2, 2), &builders::complete(5), 2, 2);
}
