//! Property-based tests of the refuters: the theorems quantify over *all*
//! devices, so we approximate "for all" with families of deterministic
//! pseudo-random protocols ([`TableDevice`]) and check that every one is
//! refuted, with a certificate that survives independent re-execution.

use flm_core::refute::{self, RefuteError};
use flm_graph::{builders, Graph, NodeId};
use flm_sim::devices::TableDevice;
use flm_sim::{Device, Protocol};
use proptest::prelude::*;

/// A pseudo-random deterministic protocol: seed selects the device family,
/// `per_node` whether nodes run distinct tables.
#[derive(Debug, Clone)]
struct RandomProtocol {
    seed: u64,
    per_node: bool,
    decide_tick: u32,
}

impl Protocol for RandomProtocol {
    fn name(&self) -> String {
        format!("Random(seed={}, per_node={})", self.seed, self.per_node)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        let seed = if self.per_node {
            self.seed ^ (u64::from(v.0) << 32)
        } else {
            self.seed
        };
        Box::new(TableDevice::new(seed, self.decide_tick))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        self.decide_tick + 2
    }
}

fn arb_protocol() -> impl Strategy<Value = RandomProtocol> {
    (any::<u64>(), any::<bool>(), 1u32..5).prop_map(|(seed, per_node, decide_tick)| {
        RandomProtocol {
            seed,
            per_node,
            decide_tick,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_random_protocol_falls_on_the_triangle(proto in arb_protocol()) {
        let cert = refute::ba_nodes(&proto, &builders::triangle(), 1)
            .expect("inadequate graphs always yield a certificate");
        prop_assert!(cert.chain.iter().all(|l| l.scenario_matched));
        prop_assert!(cert.verify(&proto).is_ok());
    }

    #[test]
    fn every_random_protocol_falls_on_k5_with_f2(proto in arb_protocol()) {
        let cert = refute::ba_nodes(&proto, &builders::complete(5), 2)
            .expect("5 ≤ 3·2 is inadequate");
        prop_assert!(cert.verify(&proto).is_ok());
    }

    #[test]
    fn every_random_protocol_falls_on_thin_graphs(
        proto in arb_protocol(),
        n in 4usize..8,
    ) {
        let g = builders::cycle(n);
        let cert = refute::ba_connectivity(&proto, &g, 1)
            .expect("cycles have κ = 2 ≤ 2f");
        prop_assert!(cert.verify(&proto).is_ok());
    }

    #[test]
    fn simple_approx_falls_for_random_protocols(proto in arb_protocol()) {
        // TableDevice decides Booleans; treat as degenerate reals? No — the
        // simple-approx conditions demand real decisions, so the refuter
        // reports a termination violation at worst. Either way: refuted.
        let cert = refute::simple_approx(&proto, &builders::triangle(), 1)
            .expect("refuted");
        prop_assert!(cert.verify(&proto).is_ok());
    }

    #[test]
    fn refuters_never_fire_on_adequate_graphs(proto in arb_protocol(), f in 1usize..3) {
        let g = builders::complete(3 * f + 1);
        let declined = matches!(
            refute::ba_nodes(&proto, &g, f),
            Err(RefuteError::GraphIsAdequate { .. })
        );
        prop_assert!(declined);
    }

    #[test]
    fn certificates_are_deterministic(proto in arb_protocol()) {
        let a = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
        let b = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
        prop_assert_eq!(a.violation, b.violation);
        prop_assert_eq!(a.chain.len(), b.chain.len());
        for (la, lb) in a.chain.iter().zip(&b.chain) {
            prop_assert_eq!(&la.decisions, &lb.decisions);
        }
    }
}

/// A protocol whose devices differ between instantiations — breaking the
/// determinism the model demands. The refuter must detect it instead of
/// producing a bogus certificate.
struct FlipFlop {
    counter: std::cell::Cell<u64>,
}

impl Protocol for FlipFlop {
    fn name(&self) -> String {
        "FlipFlop".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        let c = self.counter.get();
        self.counter.set(c + 1);
        Box::new(TableDevice::new(c, 2))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        4
    }
}

#[test]
fn nondeterministic_protocols_are_detected() {
    let proto = FlipFlop {
        counter: std::cell::Cell::new(0),
    };
    match refute::ba_nodes(&proto, &builders::triangle(), 1) {
        Err(RefuteError::ModelViolation { reason }) => {
            assert!(reason.contains("diverged"), "{reason}");
        }
        other => panic!("expected a model violation, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn weak_refuters_fall_for_random_protocols(proto in arb_protocol()) {
        // Triangle core, direct general, and direct connectivity.
        let cert = refute::weak_agreement(&proto, &builders::triangle(), 1).unwrap();
        prop_assert!(cert.verify(&proto).is_ok());
        let cert = refute::weak_any(&proto, &builders::complete(5), 2).unwrap();
        prop_assert!(cert.verify(&proto).is_ok());
        let cert = refute::weak_any(&proto, &builders::cycle(5), 1).unwrap();
        prop_assert!(cert.verify(&proto).is_ok());
    }

    #[test]
    fn firing_squad_refuters_fall_for_random_protocols(proto in arb_protocol()) {
        // TableDevice never fires, so the stimulus validity pin catches it
        // immediately — still a certificate, still verifiable.
        let cert = refute::firing_squad_any(&proto, &builders::triangle(), 1).unwrap();
        prop_assert!(cert.verify(&proto).is_ok());
        let cert = refute::firing_squad_any(&proto, &builders::cycle(4), 1).unwrap();
        prop_assert!(cert.verify(&proto).is_ok());
    }
}
