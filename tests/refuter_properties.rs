//! Property-based tests of the refuters: the theorems quantify over *all*
//! devices, so we approximate "for all" with families of deterministic
//! pseudo-random protocols ([`TableDevice`]) and check that every one is
//! refuted, with a certificate that survives independent re-execution.

use flm_core::refute::{self, RefuteError};
use flm_graph::{builders, Graph, NodeId};
use flm_prop::Rng;
use flm_sim::devices::TableDevice;
use flm_sim::{Device, Protocol};

/// A pseudo-random deterministic protocol: seed selects the device family,
/// `per_node` whether nodes run distinct tables.
#[derive(Debug, Clone)]
struct RandomProtocol {
    seed: u64,
    per_node: bool,
    decide_tick: u32,
}

impl Protocol for RandomProtocol {
    fn name(&self) -> String {
        format!("Random(seed={}, per_node={})", self.seed, self.per_node)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        let seed = if self.per_node {
            self.seed ^ (u64::from(v.0) << 32)
        } else {
            self.seed
        };
        Box::new(TableDevice::new(seed, self.decide_tick))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        self.decide_tick + 2
    }
}

fn arb_protocol(rng: &mut Rng) -> RandomProtocol {
    RandomProtocol {
        seed: rng.u64(),
        per_node: rng.bool(),
        decide_tick: rng.range_u64(1..5) as u32,
    }
}

#[test]
fn every_random_protocol_falls_on_the_triangle() {
    flm_prop::cases_par(48, 0x2EF1, |rng| {
        let proto = arb_protocol(rng);
        let cert = refute::ba_nodes(&proto, &builders::triangle(), 1)
            .expect("inadequate graphs always yield a certificate");
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        assert!(cert.verify(&proto).is_ok());
    });
}

#[test]
fn every_random_protocol_falls_on_k5_with_f2() {
    flm_prop::cases_par(48, 0x2EF2, |rng| {
        let proto = arb_protocol(rng);
        let cert =
            refute::ba_nodes(&proto, &builders::complete(5), 2).expect("5 ≤ 3·2 is inadequate");
        assert!(cert.verify(&proto).is_ok());
    });
}

#[test]
fn every_random_protocol_falls_on_thin_graphs() {
    flm_prop::cases_par(48, 0x2EF3, |rng| {
        let proto = arb_protocol(rng);
        let n = rng.usize(4..8);
        let g = builders::cycle(n);
        let cert = refute::ba_connectivity(&proto, &g, 1).expect("cycles have κ = 2 ≤ 2f");
        assert!(cert.verify(&proto).is_ok());
    });
}

#[test]
fn simple_approx_falls_for_random_protocols() {
    flm_prop::cases_par(48, 0x2EF4, |rng| {
        // TableDevice decides Booleans; treat as degenerate reals? No — the
        // simple-approx conditions demand real decisions, so the refuter
        // reports a termination violation at worst. Either way: refuted.
        let proto = arb_protocol(rng);
        let cert = refute::simple_approx(&proto, &builders::triangle(), 1).expect("refuted");
        assert!(cert.verify(&proto).is_ok());
    });
}

#[test]
fn refuters_never_fire_on_adequate_graphs() {
    flm_prop::cases_par(48, 0x2EF5, |rng| {
        let proto = arb_protocol(rng);
        let f = rng.usize(1..3);
        let g = builders::complete(3 * f + 1);
        let declined = matches!(
            refute::ba_nodes(&proto, &g, f),
            Err(RefuteError::GraphIsAdequate { .. })
        );
        assert!(declined);
    });
}

#[test]
fn certificates_are_deterministic() {
    flm_prop::cases_par(48, 0x2EF6, |rng| {
        let proto = arb_protocol(rng);
        let a = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
        let b = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.chain.len(), b.chain.len());
        for (la, lb) in a.chain.iter().zip(&b.chain) {
            assert_eq!(&la.decisions, &lb.decisions);
        }
    });
}

/// A protocol whose devices differ between instantiations — breaking the
/// determinism the model demands. The refuter must detect it instead of
/// producing a bogus certificate.
struct FlipFlop {
    counter: std::sync::atomic::AtomicU64,
}

impl Protocol for FlipFlop {
    fn name(&self) -> String {
        "FlipFlop".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        let c = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Box::new(TableDevice::new(c, 2))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        4
    }
}

#[test]
fn nondeterministic_protocols_are_detected() {
    let proto = FlipFlop {
        counter: std::sync::atomic::AtomicU64::new(0),
    };
    match refute::ba_nodes(&proto, &builders::triangle(), 1) {
        Err(RefuteError::ModelViolation { reason }) => {
            assert!(reason.contains("diverged"), "{reason}");
        }
        other => panic!("expected a model violation, got {other:?}"),
    }
}

#[test]
fn weak_refuters_fall_for_random_protocols() {
    flm_prop::cases_par(24, 0x2EF7, |rng| {
        // Triangle core, direct general, and direct connectivity.
        let proto = arb_protocol(rng);
        let cert = refute::weak_agreement(&proto, &builders::triangle(), 1).unwrap();
        assert!(cert.verify(&proto).is_ok());
        let cert = refute::weak_any(&proto, &builders::complete(5), 2).unwrap();
        assert!(cert.verify(&proto).is_ok());
        let cert = refute::weak_any(&proto, &builders::cycle(5), 1).unwrap();
        assert!(cert.verify(&proto).is_ok());
    });
}

#[test]
fn firing_squad_refuters_fall_for_random_protocols() {
    flm_prop::cases_par(24, 0x2EF8, |rng| {
        // TableDevice never fires, so the stimulus validity pin catches it
        // immediately — still a certificate, still verifiable.
        let proto = arb_protocol(rng);
        let cert = refute::firing_squad_any(&proto, &builders::triangle(), 1).unwrap();
        assert!(cert.verify(&proto).is_ok());
        let cert = refute::firing_squad_any(&proto, &builders::cycle(4), 1).unwrap();
        assert!(cert.verify(&proto).is_ok());
    });
}
