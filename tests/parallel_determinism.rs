//! The byte-determinism guarantee of the parallel refutation engine: every
//! refuter must produce *identical* certificates — same chain, same
//! decisions, same violation, same rendering — whether its transplants and
//! validity pins run on the `flm-par` worker pool or inline under
//! [`flm_par::sequential`]. The theorems are about executions, not
//! schedules; parallelism must be unobservable in the output.

use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::devices::TableDevice;
use flm_sim::{Protocol, Tick};

/// A seed-indexed protocol family: deterministic table devices with the
/// same seed at every node, so covering-fiber copies agree.
struct Table {
    seed: u64,
}

impl Protocol for Table {
    fn name(&self) -> String {
        format!("table#{:x}", self.seed)
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(TableDevice::new(self.seed, 3))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        6
    }
}

/// Runs `refuter` once inline and once on the worker pool and demands the
/// rendered results match byte for byte.
fn assert_schedule_invariant<R: std::fmt::Debug>(label: &str, refuter: impl Fn() -> R) {
    let sequential = flm_par::sequential(&refuter);
    let parallel = refuter();
    assert!(
        !flm_par::is_sequential(),
        "sequential scope must not leak out of its closure"
    );
    assert_eq!(
        format!("{sequential:?}"),
        format!("{parallel:?}"),
        "{label}: parallel certificate differs from the sequential one"
    );
}

#[test]
fn certificates_are_schedule_invariant_across_seeds() {
    flm_prop::cases_par(12, 0x9A11E1, |rng| {
        let proto = Table { seed: rng.u64() };
        let tri = builders::triangle();
        assert_schedule_invariant("ba_nodes", || refute::ba_nodes(&proto, &tri, 1));
        assert_schedule_invariant("weak_agreement", || refute::weak_agreement(&proto, &tri, 1));
        assert_schedule_invariant("firing_squad", || refute::firing_squad(&proto, &tri, 1));
        let cyc = builders::cycle(4);
        assert_schedule_invariant("ba_connectivity", || {
            refute::ba_connectivity(&proto, &cyc, 1)
        });
    });
}

#[test]
fn parallel_certificates_still_verify() {
    let proto = Table { seed: 0x51DE_CA11 };
    let cert = refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap();
    cert.verify(&proto).unwrap();
    let seq = flm_par::sequential(|| refute::ba_nodes(&proto, &builders::triangle(), 1).unwrap());
    assert_eq!(format!("{cert:?}"), format!("{seq:?}"));
}

/// A weak-agreement candidate that stays silent and decides its own input
/// only at tick 8, forcing the ring refuter to unroll a cover with
/// `4·next_k(8) = 36 ≥ 32` nodes — a long-ring scaling smoke for the dense
/// message plane and the parallel pin runs.
struct LateDecider {
    input: bool,
    decided: Option<bool>,
}

impl Device for LateDecider {
    fn name(&self) -> &'static str {
        "LateDecider"
    }
    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input.as_bool().unwrap_or(false);
    }
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        if t.0 == 8 && self.decided.is_none() {
            self.decided = Some(self.input);
        }
        inbox.iter().map(|_| None).collect()
    }
    fn snapshot(&self) -> Vec<u8> {
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &[]),
            None => snapshot::undecided(&[]),
        }
    }
}

struct LateProtocol;

impl Protocol for LateProtocol {
    fn name(&self) -> String {
        "LateDecider".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(LateDecider {
            input: false,
            decided: None,
        })
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        10
    }
}

#[test]
fn long_ring_cover_is_schedule_invariant() {
    let tri = builders::triangle();
    let run = || refute::weak_agreement(&LateProtocol, &tri, 1);
    let cert = run().expect("late decider must be refuted");
    // Decision at tick 8 ⇒ k = 9 ⇒ a 36-node ring cover (≥ 32).
    assert!(
        cert.covering.contains("36-node ring"),
        "expected a 36-node ring cover, got: {}",
        cert.covering
    );
    cert.verify(&LateProtocol).unwrap();
    assert_schedule_invariant("weak_agreement long ring", run);
}
