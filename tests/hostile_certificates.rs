//! Hostile-certificate corpus: the audit path must turn every corrupted,
//! truncated, or tampered certificate into a structured error — never a
//! panic, never an unbounded allocation, and never a silent pass for
//! evidence that was forged.
//!
//! Two layers are exercised. Byte-level mutants (truncation at every cut
//! point, a flipped byte at every offset) stress the decoder; struct-level
//! mutants (tampered decisions, out-of-range nodes, forged misbehavior)
//! re-encode cleanly and stress `Certificate::verify`'s replay.

use flm_core::certificate::VerifyError;
use flm_core::codec::CertDecodeError;
use flm_core::{refute, Certificate};
use flm_graph::{builders, NodeId};
use flm_protocols::Eig;
use flm_sim::{Decision, Input};

fn sample() -> (Certificate, Eig) {
    let protocol = Eig::new(1);
    let cert = refute::ba_nodes(&protocol, &builders::triangle(), 1).unwrap();
    (cert, protocol)
}

/// Truncating the file at *every* prefix length yields a structured decode
/// error, not a panic.
#[test]
fn truncation_at_every_offset_is_structured() {
    let (cert, _) = sample();
    let bytes = cert.to_bytes();
    for cut in 0..bytes.len() {
        let err = Certificate::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes decoded successfully"));
        // Every failure is one of the structured variants; reaching here at
        // all means no panic escaped.
        let _ = err.to_string();
    }
    assert!(Certificate::from_bytes(&bytes).is_ok());
}

/// Flipping any single byte either fails to decode (structurally) or
/// decodes to a certificate that re-encodes canonically and verifies
/// without panicking. Corrupted evidence may still verify when the flipped
/// byte only touches prose (the covering description, the evidence string);
/// what matters is that no offset can crash the auditor.
#[test]
fn corruption_at_every_offset_never_panics() {
    let (cert, protocol) = sample();
    let bytes = cert.to_bytes();
    for offset in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[offset] ^= 0xFF;
        match Certificate::from_bytes(&mutant) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(decoded) => {
                // Canonicality must survive mutation: accepted bytes
                // re-encode to themselves.
                assert_eq!(
                    decoded.to_bytes(),
                    mutant,
                    "offset {offset}: accepted bytes do not re-encode identically"
                );
                // Verification must complete without panicking, whatever
                // the verdict.
                let _ = decoded.verify(&protocol);
            }
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (cert, _) = sample();
    let mut bytes = cert.to_bytes();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(
        Certificate::from_bytes(&bytes),
        Err(CertDecodeError::TrailingBytes { count: 5 })
    ));
}

#[test]
fn out_of_range_violation_link_is_rejected_at_decode() {
    let (mut cert, _) = sample();
    cert.violation.link = cert.chain.len() + 7;
    assert!(matches!(
        Certificate::from_bytes(&cert.to_bytes()),
        Err(CertDecodeError::Invalid {
            context: "violation.link",
            ..
        })
    ));
}

#[test]
fn tampered_decisions_do_not_reproduce() {
    let (cert, protocol) = sample();
    let link = cert.violation.link;

    // Flip a recorded boolean decision.
    let mut tampered = cert.clone();
    for (_, d) in &mut tampered.chain[link].decisions {
        if let Some(Decision::Bool(b)) = d {
            *b = !*b;
            break;
        }
    }
    let round_tripped = Certificate::from_bytes(&tampered.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::NotReproduced { .. })
    ));

    // Duplicate one node's decision entry: caught structurally.
    let mut duplicated = cert.clone();
    let first = duplicated.chain[link].decisions[0];
    duplicated.chain[link].decisions.push(first);
    let round_tripped = Certificate::from_bytes(&duplicated.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::Malformed { .. })
    ));

    // Drop a node's decision entry: the coverage check catches it.
    let mut dropped = cert.clone();
    dropped.chain[link].decisions.pop();
    let round_tripped = Certificate::from_bytes(&dropped.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::Malformed { .. })
    ));
}

#[test]
fn out_of_range_nodes_are_rejected_at_decode() {
    let (cert, _) = sample();
    let link = cert.violation.link;

    let mut bad_masq = cert.clone();
    if let Some((v, _)) = bad_masq.chain[link].masquerade.first_mut() {
        *v = NodeId(99);
    }
    assert!(matches!(
        Certificate::from_bytes(&bad_masq.to_bytes()),
        Err(CertDecodeError::Invalid { .. })
    ));

    let mut bad_correct = cert.clone();
    bad_correct.chain[link].correct.push(NodeId(40));
    assert!(matches!(
        Certificate::from_bytes(&bad_correct.to_bytes()),
        Err(CertDecodeError::Invalid { .. })
    ));

    let mut bad_decision = cert;
    bad_decision.chain[link].decisions.push((NodeId(77), None));
    assert!(matches!(
        Certificate::from_bytes(&bad_decision.to_bytes()),
        Err(CertDecodeError::Invalid { .. })
    ));
}

/// A node assigned both as correct and masquerading is caught by the
/// replay's assignment audit (it round-trips through the codec, which only
/// checks ranges).
#[test]
fn doubly_assigned_node_is_malformed_at_verify() {
    let (mut cert, protocol) = sample();
    let link = cert.violation.link;
    let faulty = cert.chain[link].masquerade[0].0;
    cert.chain[link].correct.push(faulty);
    let round_tripped = Certificate::from_bytes(&cert.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::Malformed { .. })
    ));
}

#[test]
fn wrong_input_arity_is_malformed_at_verify() {
    let (mut cert, protocol) = sample();
    let link = cert.violation.link;
    cert.chain[link].inputs.push(Input::Bool(true));
    let round_tripped = Certificate::from_bytes(&cert.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::Malformed { .. })
    ));
}

/// Rewriting the adversary's recorded traffic must never crash the replay,
/// and the traffic must be load-bearing: not every byte is decision-bearing
/// (a mangled message the receiver drops, or a single altered leaf absorbed
/// by majority voting, leaves the outcome intact — and such a mutant is just
/// a different valid adversary), but *some* flipped payload bit has to
/// change what the correct nodes decide.
#[test]
fn tampered_masquerade_traffic_does_not_reproduce() {
    let (cert, protocol) = sample();
    let link = cert.violation.link;
    let mut any_rejected = false;
    let trace_count = cert.chain[link].masquerade[0].1.len();
    for trace_idx in 0..trace_count {
        let tick_count = cert.chain[link].masquerade[0].1[trace_idx].len();
        for tick in 0..tick_count {
            let Some(payload) = cert.chain[link].masquerade[0].1[trace_idx][tick].clone() else {
                continue;
            };
            for byte in 0..payload.as_bytes().len() {
                let mut tampered = cert.clone();
                let mut bytes = payload.as_bytes().to_vec();
                bytes[byte] ^= 0x01;
                tampered.chain[link].masquerade[0].1[trace_idx][tick] = Some(bytes.into());
                let round_tripped = Certificate::from_bytes(&tampered.to_bytes()).unwrap();
                // Must return a verdict — structured error or pass — never
                // panic, whichever byte of the adversary's script changed.
                if round_tripped.verify(&protocol).is_err() {
                    any_rejected = true;
                }
            }
        }
    }
    assert!(
        any_rejected,
        "no payload bit of the recorded masquerade affects the replay; \
         the adversary's traffic is not load-bearing evidence"
    );
}

#[test]
fn forged_misbehavior_does_not_reproduce() {
    let (mut cert, protocol) = sample();
    let link = cert.violation.link;
    cert.chain[link]
        .misbehavior
        .push(flm_sim::DeviceMisbehavior {
            node: NodeId(0),
            tick: flm_sim::Tick(0),
            kind: flm_sim::MisbehaviorKind::Panic("forged".into()),
        });
    let round_tripped = Certificate::from_bytes(&cert.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::NotReproduced { .. })
    ));
}

#[test]
fn failed_scenario_match_is_malformed() {
    let (mut cert, protocol) = sample();
    let link = cert.violation.link;
    cert.chain[link].scenario_matched = false;
    let round_tripped = Certificate::from_bytes(&cert.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&protocol),
        Err(VerifyError::Malformed { .. })
    ));
}

/// A certificate naming a different protocol than the one that produced it
/// fails verification instead of panicking — even when the named protocol's
/// device constructor asserts graph invariants.
#[test]
fn protocol_mismatch_is_an_error_not_a_panic() {
    let (cert, _) = sample();
    // Same family, different budget: decisions diverge.
    let wrong = flm_protocols::resolve("EIG(f=2)").unwrap();
    assert!(cert.verify(&*wrong).is_err());
    // A protocol whose constructor panics off the complete graph: the
    // triangle IS complete, so swap in a cert over cycle(4) where DLPSW's
    // completeness assert fires — contained into a structured error.
    let naive = flm_core::refute::ba_connectivity(
        &flm_protocols::registry::NaiveMajority,
        &builders::cycle(4),
        1,
    )
    .unwrap();
    let asserting = flm_protocols::resolve("DLPSW(f=1, R=4)").unwrap();
    assert!(matches!(
        naive.verify(&*asserting),
        Err(VerifyError::Malformed { .. }) | Err(VerifyError::NotReproduced { .. })
    ));
}

/// Produces a genuine asynchronous starvation certificate to mutate: the
/// `WaitForAll` prey on the complete 4-graph, refuted by the scheduling
/// adversary.
fn async_sample() -> (
    flm_core::refute::AsyncCertificate,
    Box<dyn flm_sim::Protocol>,
) {
    let protocol = flm_protocols::resolve("WaitForAll").unwrap();
    let cert = refute::flp_async(&*protocol, &builders::complete(4)).unwrap();
    (cert, protocol)
}

/// Kind-2 (asynchronous) certificates: truncating at every prefix length is
/// a structured decode error, never a panic.
#[test]
fn async_truncation_at_every_offset_is_structured() {
    let (cert, _) = async_sample();
    let bytes = cert.to_bytes();
    for cut in 0..bytes.len() {
        let err = flm_core::refute::AsyncCertificate::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes decoded successfully"));
        let _ = err.to_string();
    }
    assert!(flm_core::refute::AsyncCertificate::from_bytes(&bytes).is_ok());
}

/// Kind-2: flipping any single byte either fails structurally or decodes to
/// bytes that re-encode canonically and verify without panicking.
#[test]
fn async_corruption_at_every_offset_never_panics() {
    let (cert, protocol) = async_sample();
    let bytes = cert.to_bytes();
    for offset in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[offset] ^= 0xFF;
        match flm_core::refute::AsyncCertificate::from_bytes(&mutant) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(decoded) => {
                assert_eq!(
                    decoded.to_bytes(),
                    mutant,
                    "offset {offset}: accepted bytes do not re-encode identically"
                );
                let _ = decoded.verify(&*protocol);
            }
        }
    }
}

#[test]
fn async_trailing_garbage_is_rejected() {
    let (cert, _) = async_sample();
    let mut bytes = cert.to_bytes();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(
        flm_core::refute::AsyncCertificate::from_bytes(&bytes),
        Err(CertDecodeError::TrailingBytes { count: 5 })
    ));
}

/// Forged schedules are caught in layers: an out-of-range edge index and a
/// schedule longer than its own fairness budget die at decode; an entry
/// that replays an already-delivered message decodes (the indices are in
/// range) but the replay finds the channel empty and reports Malformed.
#[test]
fn async_forged_schedules_are_structured() {
    let (cert, protocol) = async_sample();
    let edges = cert.base.directed_edges().len() as u32;

    // Out-of-range directed-edge index.
    let mut out_of_range = cert.clone();
    out_of_range.schedule[0] = edges;
    assert!(matches!(
        flm_core::refute::AsyncCertificate::from_bytes(&out_of_range.to_bytes()),
        Err(CertDecodeError::Invalid {
            context: "schedule",
            ..
        })
    ));

    // Schedule/horizon mismatch: more deliveries than the recorded budget.
    let mut over_budget = cert.clone();
    over_budget.policy.max_ticks = (over_budget.schedule.len() as u32).saturating_sub(1);
    assert!(matches!(
        flm_core::refute::AsyncCertificate::from_bytes(&over_budget.to_bytes()),
        Err(CertDecodeError::Invalid {
            context: "schedule",
            ..
        })
    ));

    // Replayed-after-delivered: WaitForAll broadcasts exactly once, so each
    // directed edge carries one message ever; delivering some edge a second
    // time asks an empty channel to perform.
    assert!(cert.schedule.len() >= 2, "need a schedule worth forging");
    let mut replayed = cert.clone();
    let last = replayed.schedule.len() - 1;
    replayed.schedule[last] = replayed.schedule[0];
    let round_tripped =
        flm_core::refute::AsyncCertificate::from_bytes(&replayed.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&*protocol),
        Err(VerifyError::Malformed { .. }) | Err(VerifyError::NotReproduced { .. })
    ));

    // The untouched original still passes end to end.
    cert.verify(&*protocol).unwrap();
}

/// Clock certificates get the same treatment: byte corruption is structural.
#[test]
fn clock_certificate_corruption_never_panics() {
    use flm_core::problems::ClockSyncClaim;
    use flm_protocols::clock_sync::TrivialClockSync;
    use flm_sim::clock::TimeFn;

    let proto = TrivialClockSync {
        l: TimeFn::identity(),
    };
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    };
    let cert = refute::clock_sync(&proto, &builders::triangle(), 1, &claim).unwrap();
    let bytes = cert.to_bytes();
    for cut in 0..bytes.len() {
        assert!(flm_core::refute::ClockCertificate::from_bytes(&bytes[..cut]).is_err());
    }
    for offset in 0..bytes.len() {
        let mut mutant = bytes.clone();
        mutant[offset] ^= 0xFF;
        if let Ok(decoded) = flm_core::refute::ClockCertificate::from_bytes(&mutant) {
            assert_eq!(decoded.to_bytes(), mutant);
            let _ = decoded.verify(&proto);
        }
    }
    // Tampered logical readings must not reproduce.
    let mut tampered = cert;
    tampered.logical[0] += 1.0;
    let round_tripped =
        flm_core::refute::ClockCertificate::from_bytes(&tampered.to_bytes()).unwrap();
    assert!(matches!(
        round_tripped.verify(&proto),
        Err(VerifyError::NotReproduced { .. })
    ));
}
