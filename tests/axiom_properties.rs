//! Property-based verification of the §2 model axioms against randomized
//! protocols, graphs, and clock assignments — the "demonstrate that the
//! Locality and Fault axioms hold under the interpretation" step of the
//! paper, run a few hundred times.

use std::collections::BTreeSet;

use flm_core::axioms;
use flm_graph::{builders, Graph, NodeId};
use flm_prop::Rng;
use flm_sim::clock::TimeFn;
use flm_sim::devices::TableDevice;
use flm_sim::{Device, Input, Protocol};

#[derive(Debug, Clone)]
struct Table {
    seed: u64,
}

impl Protocol for Table {
    fn name(&self) -> String {
        format!("Table({})", self.seed)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        Box::new(TableDevice::new(self.seed ^ u64::from(v.0), 4))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        6
    }
}

fn arb_graph(rng: &mut Rng) -> Graph {
    let n = rng.usize(4..9);
    let extra = rng.usize(0..6);
    let seed = rng.range_u64(0..500);
    builders::random_connected(n, extra, seed)
}

#[test]
fn locality_axiom_holds() {
    flm_prop::cases_par(40, 0xA71, |rng| {
        let g = arb_graph(rng);
        let seed = rng.u64();
        let mask = rng.u32() % 99 + 1;
        let proto = Table { seed };
        let u: BTreeSet<NodeId> = g
            .nodes()
            .filter(|v| (mask >> (v.0 % 16)) & 1 == 1)
            .collect();
        if u.is_empty() || u.len() == g.node_count() {
            return;
        }
        let inputs = |v: NodeId| Input::Bool((mask >> (v.0 % 7)) & 1 == 0);
        axioms::check_locality(&proto, &g, &inputs, &u, 6)
            .unwrap_or_else(|e| panic!("locality violated: {e}"));
    });
}

#[test]
fn fault_axiom_holds() {
    flm_prop::cases_par(40, 0xA72, |rng| {
        let g = arb_graph(rng);
        let seed = rng.u64();
        let node_pick = rng.usize(0..100);
        let n = g.node_count();
        let node = NodeId((node_pick % n) as u32);
        let degree = g.degree(node);
        // Arbitrary traces derived from the seed.
        let traces: Vec<Vec<Option<flm_sim::Payload>>> = (0..degree)
            .map(|p| {
                (0..4)
                    .map(|t| {
                        let h = flm_sim::auth::mix64(seed ^ (p as u64) << 8 ^ t);
                        if h.is_multiple_of(3) {
                            None
                        } else {
                            Some(vec![h as u8, (h >> 8) as u8].into())
                        }
                    })
                    .collect()
            })
            .collect();
        axioms::check_fault_axiom(&g, node, traces, &Table { seed }, 4)
            .unwrap_or_else(|e| panic!("fault axiom violated: {e}"));
    });
}

#[test]
fn bounded_delay_axiom_holds() {
    flm_prop::cases_par(40, 0xA73, |rng| {
        let g = arb_graph(rng);
        let seed = rng.u64();
        let flip = rng.usize(0..100);
        let n = g.node_count();
        let flip_node = NodeId((flip % n) as u32);
        let proto = Table { seed };
        axioms::check_bounded_delay(
            &proto,
            &g,
            &|_| Input::Bool(false),
            &move |v| Input::Bool(v == flip_node),
            7,
        )
        .unwrap_or_else(|e| panic!("bounded delay violated: {e}"));
    });
}

#[test]
fn scaling_axiom_holds() {
    flm_prop::cases_par(40, 0xA74, |rng| {
        // Power-of-two clock rates and scale factors keep every hardware
        // reading bit-exact across the scaled run — the axiom holds exactly
        // when the arithmetic does (and only approximately otherwise, since
        // f64 division by non-dyadic rates rounds).
        use flm_protocols::clock_sync::AveragingSync;
        let rate_exps: Vec<i32> = (0..3).map(|_| rng.i32(-1..3)).collect();
        let h_exp = rng.i32(1..3);
        let period_q = rng.range_u64(1..5) as u32;
        let g = builders::triangle();
        let period = f64::from(period_q) / 2.0;
        let rates: Vec<f64> = rate_exps.iter().map(|&e| f64::from(e).exp2()).collect();
        axioms::check_scaling(
            &g,
            &move |_| Box::new(AveragingSync::new(TimeFn::identity(), period)),
            &move |v| TimeFn::linear(rates[v.index()]),
            &TimeFn::linear(f64::from(h_exp).exp2()),
            9.0,
            8.0,
        )
        .unwrap_or_else(|e| panic!("scaling violated: {e}"));
    });
}
