//! Property-based verification of the §2 model axioms against randomized
//! protocols, graphs, and clock assignments — the "demonstrate that the
//! Locality and Fault axioms hold under the interpretation" step of the
//! paper, run a few hundred times.

use std::collections::BTreeSet;

use flm_core::axioms;
use flm_graph::{builders, Graph, NodeId};
use flm_sim::clock::TimeFn;
use flm_sim::devices::TableDevice;
use flm_sim::{Device, Input, Protocol};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Table {
    seed: u64,
}

impl Protocol for Table {
    fn name(&self) -> String {
        format!("Table({})", self.seed)
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        Box::new(TableDevice::new(self.seed ^ u64::from(v.0), 4))
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        6
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..9, 0usize..6, 0u64..500)
        .prop_map(|(n, extra, seed)| builders::random_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn locality_axiom_holds(g in arb_graph(), seed in any::<u64>(), mask in 1u32..100) {
        let proto = Table { seed };
        let u: BTreeSet<NodeId> = g
            .nodes()
            .filter(|v| (mask >> (v.0 % 16)) & 1 == 1)
            .collect();
        prop_assume!(!u.is_empty() && u.len() < g.node_count());
        let inputs = |v: NodeId| Input::Bool((mask >> (v.0 % 7)) & 1 == 0);
        axioms::check_locality(&proto, &g, &inputs, &u, 6).map_err(|e| {
            TestCaseError::fail(format!("locality violated: {e}"))
        })?;
    }

    #[test]
    fn fault_axiom_holds(g in arb_graph(), seed in any::<u64>(), node_pick in 0usize..100) {
        let n = g.node_count();
        let node = NodeId((node_pick % n) as u32);
        let degree = g.degree(node);
        // Arbitrary traces derived from the seed.
        let traces: Vec<Vec<Option<Vec<u8>>>> = (0..degree)
            .map(|p| {
                (0..4)
                    .map(|t| {
                        let h = flm_sim::auth::mix64(seed ^ (p as u64) << 8 ^ t);
                        if h.is_multiple_of(3) {
                            None
                        } else {
                            Some(vec![h as u8, (h >> 8) as u8])
                        }
                    })
                    .collect()
            })
            .collect();
        axioms::check_fault_axiom(&g, node, traces, &Table { seed }, 4).map_err(|e| {
            TestCaseError::fail(format!("fault axiom violated: {e}"))
        })?;
    }

    #[test]
    fn bounded_delay_axiom_holds(g in arb_graph(), seed in any::<u64>(), flip in 0usize..100) {
        let n = g.node_count();
        let flip_node = NodeId((flip % n) as u32);
        let proto = Table { seed };
        axioms::check_bounded_delay(
            &proto,
            &g,
            &|_| Input::Bool(false),
            &move |v| Input::Bool(v == flip_node),
            7,
        )
        .map_err(|e| TestCaseError::fail(format!("bounded delay violated: {e}")))?;
    }

    #[test]
    fn scaling_axiom_holds(
        // Power-of-two clock rates and scale factors keep every hardware
        // reading bit-exact across the scaled run — the axiom holds exactly
        // when the arithmetic does (and only approximately otherwise, since
        // f64 division by non-dyadic rates rounds).
        rate_exps in proptest::collection::vec(-1i32..3, 3),
        h_exp in 1i32..3,
        period_q in 1u32..5,
    ) {
        use flm_protocols::clock_sync::AveragingSync;
        let g = builders::triangle();
        let period = f64::from(period_q) / 2.0;
        let rates: Vec<f64> = rate_exps.iter().map(|&e| (e as f64).exp2()).collect();
        axioms::check_scaling(
            &g,
            &move |_| Box::new(AveragingSync::new(TimeFn::identity(), period)),
            &move |v| TimeFn::linear(rates[v.index()]),
            &TimeFn::linear((h_exp as f64).exp2()),
            9.0,
            8.0,
        )
        .map_err(|e| TestCaseError::fail(format!("scaling violated: {e}")))?;
    }
}
