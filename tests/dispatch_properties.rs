//! The closing property: over randomized connected graphs and fault
//! budgets, the adequacy classifier and the dispatching refuter must agree
//! *exactly* — a verified counterexample on every inadequate graph, a
//! decline on every adequate one. This is the paper's dichotomy, quantified.

use flm_core::refute::{self, RefuteError};
use flm_graph::{adequacy, builders, Graph, NodeId};
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::{Device, Protocol};
use proptest::prelude::*;

struct Naive;

impl Protocol for Naive {
    fn name(&self) -> String {
        "NaiveMajority".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        3
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..10, 0usize..10, 0u64..2000)
        .prop_map(|(n, extra, seed)| builders::random_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byzantine_dispatch_matches_adequacy(g in arb_graph(), f in 1usize..3) {
        let adequate = adequacy::is_adequate(&g, f);
        match refute::byzantine(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => prop_assert!(adequate),
            Ok(cert) => {
                prop_assert!(!adequate);
                prop_assert!(cert.verify(&Naive).is_ok());
                prop_assert!(cert.chain.iter().all(|l| l.scenario_matched));
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }

    #[test]
    fn weak_dispatch_matches_adequacy(g in arb_graph(), f in 1usize..3) {
        let adequate = adequacy::is_adequate(&g, f);
        match refute::weak_any(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => prop_assert!(adequate),
            Ok(cert) => {
                prop_assert!(!adequate);
                prop_assert!(cert.verify(&Naive).is_ok());
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }

    #[test]
    fn firing_squad_dispatch_matches_adequacy(g in arb_graph(), f in 1usize..3) {
        // NaiveMajority never fires, so inadequate graphs are refuted at the
        // stimulus validity pin — still the dichotomy.
        let adequate = adequacy::is_adequate(&g, f);
        match refute::firing_squad_any(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => prop_assert!(adequate),
            Ok(cert) => {
                prop_assert!(!adequate);
                prop_assert!(cert.verify(&Naive).is_ok());
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }
}
