//! The closing property: over randomized connected graphs and fault
//! budgets, the adequacy classifier and the dispatching refuter must agree
//! *exactly* — a verified counterexample on every inadequate graph, a
//! decline on every adequate one. This is the paper's dichotomy, quantified.

use flm_core::refute::{self, RefuteError};
use flm_graph::{adequacy, builders, Graph, NodeId};
use flm_prop::Rng;
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::{Device, Protocol};

struct Naive;

impl Protocol for Naive {
    fn name(&self) -> String {
        "NaiveMajority".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        3
    }
}

fn arb_graph(rng: &mut Rng) -> Graph {
    let n = rng.usize(4..10);
    let extra = rng.usize(0..10);
    let seed = rng.range_u64(0..2000);
    builders::random_connected(n, extra, seed)
}

#[test]
fn byzantine_dispatch_matches_adequacy() {
    flm_prop::cases(64, 0xD15A, |rng| {
        let g = arb_graph(rng);
        let f = rng.usize(1..3);
        let adequate = adequacy::is_adequate(&g, f);
        match refute::byzantine(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => assert!(adequate),
            Ok(cert) => {
                assert!(!adequate);
                assert!(cert.verify(&Naive).is_ok());
                assert!(cert.chain.iter().all(|l| l.scenario_matched));
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    });
}

#[test]
fn weak_dispatch_matches_adequacy() {
    flm_prop::cases(64, 0xD15B, |rng| {
        let g = arb_graph(rng);
        let f = rng.usize(1..3);
        let adequate = adequacy::is_adequate(&g, f);
        match refute::weak_any(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => assert!(adequate),
            Ok(cert) => {
                assert!(!adequate);
                assert!(cert.verify(&Naive).is_ok());
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    });
}

#[test]
fn firing_squad_dispatch_matches_adequacy() {
    flm_prop::cases(64, 0xD15C, |rng| {
        // NaiveMajority never fires, so inadequate graphs are refuted at the
        // stimulus validity pin — still the dichotomy.
        let g = arb_graph(rng);
        let f = rng.usize(1..3);
        let adequate = adequacy::is_adequate(&g, f);
        match refute::firing_squad_any(&Naive, &g, f) {
            Err(RefuteError::GraphIsAdequate { .. }) => assert!(adequate),
            Ok(cert) => {
                assert!(!adequate);
                assert!(cert.verify(&Naive).is_ok());
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    });
}
