//! Experiment E9 — the adequacy frontier.
//!
//! The paper's bounds are exactly tight. This test sweeps (n, f) across the
//! `3f+1` node boundary and (graph, f) across the `2f+1` connectivity
//! boundary and checks the dichotomy on both sides:
//!
//! * **inadequate** ⇒ the refuter produces a verified counterexample
//!   against the best protocol we have;
//! * **adequate** ⇒ that protocol survives the exhaustive zoo-adversary
//!   sweep, and the refuter declines.

use flm_core::refute::{self, RefuteError};
use flm_graph::{adequacy, builders, connectivity, Graph, NodeId};
use flm_protocols::{testkit, Eig, Relayed};
use flm_sim::{Device, Protocol};

/// EIG with the fault budget implied by `n` (so it is the best candidate on
/// every complete graph in the sweep).
struct BestEffortEig {
    f: usize,
}

impl Protocol for BestEffortEig {
    fn name(&self) -> String {
        format!("EIG(f={})", self.f)
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        Eig::new(self.f).device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        Eig::new(self.f).horizon(g)
    }
}

#[test]
fn node_bound_frontier_complete_graphs() {
    for f in 1..=2usize {
        for n in 3..=(3 * f + 2) {
            let g = builders::complete(n);
            let proto = BestEffortEig { f };
            if n <= 3 * f {
                assert!(!adequacy::is_adequate(&g, f), "K{n}, f={f}");
                let cert =
                    refute::ba_nodes(&proto, &g, f).unwrap_or_else(|e| panic!("K{n}, f={f}: {e}"));
                cert.verify(&proto)
                    .unwrap_or_else(|e| panic!("K{n}, f={f} verify: {e}"));
            } else {
                assert!(adequacy::is_adequate(&g, f), "K{n}, f={f}");
                assert!(matches!(
                    refute::ba_nodes(&proto, &g, f),
                    Err(RefuteError::GraphIsAdequate { .. })
                ));
                // The same devices genuinely solve the problem here.
                testkit::assert_byzantine_agreement(&Eig::new(f), &g, f, 2);
            }
        }
    }
}

#[test]
fn connectivity_frontier() {
    // Thin graphs: every cycle has κ = 2 ≤ 2f; wheels have κ = 3 = 2f+1.
    struct Naive;
    impl Protocol for Naive {
        fn name(&self) -> String {
            "NaiveMajority".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::NaiveMajorityDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }
    for n in [4usize, 5, 6, 8] {
        let g = builders::cycle(n);
        assert_eq!(connectivity::vertex_connectivity(&g), 2);
        let cert = refute::ba_connectivity(&Naive, &g, 1).unwrap_or_else(|e| panic!("C{n}: {e}"));
        cert.verify(&Naive).unwrap();
    }
    // K5 minus an edge: κ = 3 ≥ 2f+1 and n = 5 ≥ 3f+1 — adequate; the
    // relayed protocol succeeds and the refuters decline.
    let mut links = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            if (u, v) != (0, 4) {
                links.push((u, v));
            }
        }
    }
    let sparse = builders::from_links(5, &links).unwrap();
    assert!(adequacy::is_adequate(&sparse, 1));
    let relayed = Relayed::new(Eig::new(1), 1);
    assert!(matches!(
        refute::byzantine(&relayed, &sparse, 1),
        Err(RefuteError::GraphIsAdequate { .. })
    ));
    testkit::assert_byzantine_agreement(&relayed, &sparse, 1, 2);
}

#[test]
fn dispatcher_matches_classification() {
    struct Naive;
    impl Protocol for Naive {
        fn name(&self) -> String {
            "NaiveMajority".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::NaiveMajorityDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }
    let cases: Vec<(Graph, usize)> = vec![
        (builders::triangle(), 1),
        (builders::complete(4), 1),
        (builders::complete(6), 2),
        (builders::complete(7), 2),
        (builders::cycle(5), 1),
        (builders::wheel(6), 1),
        (builders::complete_bipartite(2, 4), 1),
        (builders::hypercube(3), 1),
    ];
    for (g, f) in cases {
        let adequate = adequacy::is_adequate(&g, f);
        let refuted = refute::byzantine(&Naive, &g, f);
        match (adequate, refuted) {
            (true, Err(RefuteError::GraphIsAdequate { .. })) => {}
            (false, Ok(cert)) => cert.verify(&Naive).unwrap(),
            (adequate, other) => panic!(
                "graph with {} nodes, f={f}: adequate={adequate} but refuter said {other:?}",
                g.node_count()
            ),
        }
    }
}

#[test]
fn all_problems_fall_on_both_bounds() {
    // Every problem's refuter fires on both kinds of inadequacy. Candidates
    // are graph-agnostic naive devices (the theorems quantify over all).
    struct Naive;
    impl Protocol for Naive {
        fn name(&self) -> String {
            "NaiveMajority".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::NaiveMajorityDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }
    let node_bound_cases: Vec<(Graph, usize)> =
        vec![(builders::triangle(), 1), (builders::complete(5), 2)];
    let connectivity_cases: Vec<(Graph, usize)> =
        vec![(builders::cycle(4), 1), (builders::cycle(6), 1)];

    for (g, f) in node_bound_cases.iter().chain(&connectivity_cases) {
        let cert = refute::byzantine(&Naive, g, *f).expect("BA refuted");
        cert.verify(&Naive).unwrap();
        let cert = refute::weak_any(&Naive, g, *f).expect("weak refuted");
        cert.verify(&Naive).unwrap();
        let cert = refute::firing_squad_any(&Naive, g, *f).expect("fs refuted");
        cert.verify(&Naive).unwrap();
    }
    // Simple approximate agreement: node bound on small graphs,
    // connectivity bound on thin ones (real-valued candidate required).
    struct EchoReal;
    impl Protocol for EchoReal {
        fn name(&self) -> String {
            "EchoReal".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::ConstantDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            2
        }
    }
    for (g, f) in &node_bound_cases {
        let cert = refute::simple_approx(&EchoReal, g, *f).expect("approx refuted");
        cert.verify(&EchoReal).unwrap();
    }
    for (g, f) in &connectivity_cases {
        let cert = refute::simple_approx_connectivity(&EchoReal, g, *f).expect("approx refuted");
        cert.verify(&EchoReal).unwrap();
    }
}
