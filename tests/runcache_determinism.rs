//! The soundness contract of the run-reuse engine: memoization, scratch
//! arenas, and adaptive dispatch are *performance* layers — none of them may
//! be observable in the output. Every theorem family must produce
//! byte-identical FLMC certificate encodings whether its runs are served
//! cold, warm from the cache, with the cache bypassed, or bypassed under
//! the inline-sequential scheduler; and the simulator must produce
//! byte-identical behaviors with fresh buffers, a reused scratch arena, or
//! the reference delivery loop.

use flm_core::refute;
use flm_graph::builders;
use flm_protocols::{resolve, resolve_clock};
use flm_sim::clock::TimeFn;
use flm_sim::devices::TableDevice;
use flm_sim::{runcache, Input, RunScratch, System};

/// The run cache is process-global and several tests below clear it;
/// serialize them so one test's `clear()` cannot race another's assertions.
static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn cache_lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Encodes one refutation run to FLMC bytes under each execution mode and
/// demands they match byte for byte.
fn assert_modes_agree(label: &str, run: impl Fn() -> Vec<u8>) {
    runcache::clear();
    let cold = run();
    let warm = run();
    let bypassed = runcache::bypass(&run);
    let sequential = flm_par::sequential(|| runcache::bypass(&run));
    for (mode, bytes) in [
        ("warm cache", &warm),
        ("cache bypassed", &bypassed),
        ("sequential + bypassed", &sequential),
    ] {
        assert_eq!(
            &cold, bytes,
            "{label}: {mode} certificate differs from the cold-cache one"
        );
    }
}

#[test]
fn discrete_theorem_families_encode_identically_across_modes() {
    let _guard = cache_lock();
    let tri = builders::triangle();
    let cyc4 = builders::cycle(4);

    let eig = resolve("EIG(f=1)").unwrap();
    assert_modes_agree("ba_nodes", || {
        refute::ba_nodes(&*eig, &tri, 1).unwrap().to_bytes()
    });

    let maj = resolve("NaiveMajority").unwrap();
    assert_modes_agree("ba_connectivity", || {
        refute::ba_connectivity(&*maj, &cyc4, 1).unwrap().to_bytes()
    });

    let weak = resolve("WeakViaBA(EIG(f=1))").unwrap();
    assert_modes_agree("weak_agreement", || {
        refute::weak_agreement(&*weak, &tri, 1).unwrap().to_bytes()
    });

    let squad = resolve("FiringSquadViaBA(f=1)").unwrap();
    assert_modes_agree("firing_squad", || {
        refute::firing_squad(&*squad, &tri, 1).unwrap().to_bytes()
    });

    let dlpsw = resolve("DLPSW(f=1, R=4)").unwrap();
    assert_modes_agree("simple_approx", || {
        refute::simple_approx(&*dlpsw, &tri, 1).unwrap().to_bytes()
    });
    assert_modes_agree("eps_delta_gamma", || {
        refute::eps_delta_gamma(&*dlpsw, &tri, 1, 0.25, 1.0, 1.0)
            .unwrap()
            .to_bytes()
    });
}

#[test]
fn clock_sync_encodes_identically_across_modes() {
    let _guard = cache_lock();
    let protocol = resolve_clock("TrivialClockSync").unwrap();
    let claim = flm_core::problems::ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    };
    let tri = builders::triangle();
    assert_modes_agree("clock_sync", || {
        refute::clock_sync(&*protocol, &tri, 1, &claim)
            .unwrap()
            .to_bytes()
    });
}

#[test]
fn fresh_certificates_verify_in_every_mode() {
    let _guard = cache_lock();
    // Verification replays through the same cache; a warm hit must verify
    // exactly like a cold re-execution.
    let eig = resolve("EIG(f=1)").unwrap();
    let tri = builders::triangle();
    runcache::clear();
    let cert = refute::ba_nodes(&*eig, &tri, 1).unwrap();
    cert.verify(&*eig).expect("warm verify");
    runcache::clear();
    cert.verify(&*eig).expect("cold verify");
    runcache::bypass(|| cert.verify(&*eig)).expect("bypassed verify");
}

#[test]
fn scratch_reuse_matches_fresh_and_reference_runs() {
    let g = builders::complete(8);
    let build = |seed: u64| {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(
                v,
                Box::new(TableDevice::new(seed ^ u64::from(v.0), 40)),
                Input::Bool(v.0.is_multiple_of(2)),
            );
        }
        sys
    };
    // One scratch across many systems: no run may see a predecessor's state.
    let mut scratch = RunScratch::new();
    for seed in 0..12u64 {
        let with_scratch = build(seed).try_run_with_scratch(15, &mut scratch).unwrap();
        let fresh = build(seed).try_run(15).unwrap();
        let reference = build(seed).run_reference(15).unwrap();
        assert_eq!(
            format!("{with_scratch:?}"),
            format!("{fresh:?}"),
            "seed {seed}: scratch-reuse run diverged from the fresh-buffer run"
        );
        assert_eq!(
            format!("{fresh:?}"),
            format!("{reference:?}"),
            "seed {seed}: dense run diverged from the reference loop"
        );
    }
}

#[test]
fn cache_stats_observe_the_expected_hits() {
    let _guard = cache_lock();
    let eig = resolve("EIG(f=1)").unwrap();
    let tri = builders::triangle();
    runcache::clear();
    runcache::reset_stats();
    let cert = refute::ba_nodes(&*eig, &tri, 1).unwrap();
    let after_refute = runcache::stats();
    assert!(
        after_refute.misses >= 4,
        "cold refutation must miss for the cover and each chain link, got {after_refute:?}"
    );
    cert.verify(&*eig).unwrap();
    let after_verify = runcache::stats();
    assert!(
        after_verify.hits > after_refute.hits,
        "in-process verify must replay the violating link from the cache, got {after_verify:?}"
    );
}
