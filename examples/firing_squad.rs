//! Theorems 2 & 4: weak agreement and the Byzantine firing squad.
//!
//! Both proofs ride the same vehicle: a ring of 4k nodes, half stimulated
//! and half not, where every adjacent pair is — by the Fault axiom — a pair
//! of correct nodes in some triangle behavior, yet bounded-delay forces the
//! two deep regions to behave like the all-0 and all-1 runs. This example
//! runs both refuters against honest reduction-based protocols and also
//! shows the positive side on K4.
//!
//! Run with: `cargo run --example firing_squad`

use flm_core::refute;
use flm_graph::builders;
use flm_protocols::{testkit, FiringSquadViaBa, WeakViaBa};
use flm_sim::{Input, Tick};

fn main() {
    let triangle = builders::triangle();
    let k4 = builders::complete(4);

    // ── Weak agreement (Theorem 2) ─────────────────────────────────────
    println!("=== Theorem 2: weak agreement ===\n");
    let weak = WeakViaBa::new(1);
    let cert = refute::weak_agreement(&weak, &triangle, 1).unwrap();
    println!("{cert}\n");
    cert.verify(&weak).unwrap();
    println!(
        "Note the covering: {} — the ring length comes from the protocol's own \
         decision time t′ and the δ = 1 tick minimum delay.\n",
        cert.covering
    );

    // On K4 the same protocol passes the full adversary sweep.
    testkit::assert_byzantine_agreement(&weak, &k4, 1, 4);
    println!("WeakViaBA(EIG) withstands every zoo adversary on K4 ✓\n");

    // General case via the footnote-3 collapse: K5 with f = 2.
    let (cert, collapsed) =
        refute::weak_agreement_general(WeakViaBa::new(2), &builders::complete(5), 2).unwrap();
    println!(
        "K5, f = 2 (collapsed to the triangle): violation — {}\n",
        cert.violation
    );
    cert.verify(&collapsed).unwrap();

    // ── Byzantine firing squad (Theorem 4) ─────────────────────────────
    println!("=== Theorem 4: Byzantine firing squad ===\n");
    let fs = FiringSquadViaBa::new(1);
    let cert = refute::firing_squad(&fs, &triangle, 1).unwrap();
    println!("{cert}\n");
    cert.verify(&fs).unwrap();

    // The positive side: on K4 a single stimulated node fires everyone,
    // simultaneously, at the protocol's fixed tick.
    let b = testkit::run_honest(&fs, &k4, &|v| Input::Bool(v.0 == 2));
    let ticks: Vec<Option<Tick>> = k4.nodes().map(|v| b.node(v).fire_tick()).collect();
    println!("K4, stimulus only at node 2 → fire ticks {ticks:?}");
    assert!(ticks.iter().all(|&t| t == Some(Tick(fs.fire_tick()))));
    println!("  → simultaneous firing on the adequate graph ✓");

    let b = testkit::run_honest(&fs, &k4, &|_| Input::Bool(false));
    assert!(k4.nodes().all(|v| b.node(v).fire_tick().is_none()));
    println!("  → and silence without a stimulus ✓");
}
