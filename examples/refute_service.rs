//! Refutation as a service, end to end, inside one process.
//!
//! 1. Start an embedded `flm-serve` server on an ephemeral loopback port.
//! 2. Request a refutation over FLMC-RPC and check the wire bytes are
//!    *identical* to what the library produces locally for the same query —
//!    the service adds transport, never meaning.
//! 3. Round-trip the certificate through the server's Verify and Audit
//!    RPCs, then through the local audit path.
//! 4. Fire a small mixed load burst with the load generator and read the
//!    server's counters back over the Stats RPC.
//!
//! Run with: `cargo run --example refute_service`

use flm_serve::audit;
use flm_serve::client::Client;
use flm_serve::loadgen::{self, Mix};
use flm_serve::query::{self, Theorem};
use flm_serve::rpc::Verdict;
use flm_serve::server::{ServeConfig, Server};
use flm_sim::RunPolicy;

fn main() {
    // ── Start the service ──────────────────────────────────────────────
    // `addr: 127.0.0.1:0` asks the OS for an ephemeral port; the real
    // address comes back from `local_addr`. The same config runs the
    // standalone `flm-serve` binary.
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!("flm-serve listening on {addr}\n");

    let mut client = Client::connect(&addr).expect("connect");
    let pong = client.ping(b"hello", 0).expect("ping");
    assert_eq!(pong, b"hello");
    println!("ping → pong ✓");

    // ── Refute over the wire, compare against the library ──────────────
    let wire = client
        .refute(Theorem::BaNodes.name(), None, None, 1, None)
        .expect("refute RPC");
    let local = query::refute_to_bytes(Theorem::BaNodes, None, None, 1, RunPolicy::default())
        .expect("library refutation");
    assert_eq!(wire, local, "served bytes must equal library bytes");
    println!(
        "refute {} → {} certificate bytes, identical to the library path ✓",
        Theorem::BaNodes.name(),
        wire.len()
    );

    // ── Verify and audit, server-side and locally ──────────────────────
    let (verdict, detail) = client.verify(&wire).expect("verify RPC");
    assert_eq!(verdict, Verdict::Verified);
    println!("server verify → {verdict:?}: {detail}");

    let (exit_code, _report, _diag) = client.audit(&wire).expect("audit RPC");
    assert_eq!(exit_code, audit::EXIT_VERIFIED);
    let local_audit = audit::audit_bytes(&wire, false);
    assert_eq!(local_audit.exit_code, audit::EXIT_VERIFIED);
    println!(
        "server audit exit {exit_code}, local audit exit {} ✓",
        local_audit.exit_code
    );

    // Damaged bytes draw the malformed exit code, not a panic or a hang.
    let (exit_code, _report, diag) = client.audit(&wire[..40]).expect("audit RPC on damage");
    assert_eq!(exit_code, audit::EXIT_MALFORMED);
    println!(
        "truncated bytes → audit exit {exit_code} ({})\n",
        diag.lines().next().unwrap_or("")
    );

    // ── A mixed load burst through the load generator ──────────────────
    // 4 connections × 8 requests, refute:verify:audit = 2:1:1. Every
    // refute after the first is a warm run-cache hit — the workers share
    // the process-global cache.
    let report = loadgen::run(
        &addr,
        4,
        8,
        Mix::parse("2:1:1").expect("mix"),
        Theorem::BaNodes,
    )
    .expect("load burst");
    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.abandoned, 0);
    println!("load burst: {report}");

    let stats = client.stats().expect("stats RPC");
    println!("\nserver counters:\n{stats}");

    server.shutdown();
    println!("server drained and shut down ✓");
}
