//! Theorem 1 end to end: both halves of the bound, both sides of each.
//!
//! * `3f+1` nodes: every protocol falls on the triangle (f = 1) and on K6
//!   (f = 2); EIG succeeds on K4 and K7.
//! * `2f+1` connectivity: every protocol falls on the 4-cycle; EIG lifted
//!   through the disjoint-path relay succeeds on K5-minus-an-edge
//!   (3-connected) — Dolev's construction [D].
//!
//! Run with: `cargo run --example byzantine_generals`

use flm_core::refute;
use flm_graph::{adequacy, builders, connectivity, Graph, NodeId};
use flm_protocols::{testkit, Eig, PhaseKing, Relayed};
use flm_sim::{Device, Protocol};

/// EIG exposed to the refuters: on inadequate graphs the refuter installs
/// these very devices in the covering graph — the point is that *nothing*
/// about EIG is wrong; the graph just cannot support agreement.
struct EigForTriangle;

impl Protocol for EigForTriangle {
    fn name(&self) -> String {
        "EIG(f=1) itself".into()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        Eig::new(1).device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        Eig::new(1).horizon(g)
    }
}

fn main() {
    // ── Node bound, core case: even EIG falls on the triangle ─────────
    println!("=== 3f+1 node bound ===\n");
    let triangle = builders::triangle();
    let cert = refute::ba_nodes(&EigForTriangle, &triangle, 1).unwrap();
    println!("{cert}\n");
    cert.verify(&EigForTriangle).unwrap();

    // General case: K6 with f = 2 (classes of two nodes each).
    struct Eig2;
    impl Protocol for Eig2 {
        fn name(&self) -> String {
            "EIG(f=2)".into()
        }
        fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
            Eig::new(2).device(g, v)
        }
        fn horizon(&self, g: &Graph) -> u32 {
            Eig::new(2).horizon(g)
        }
    }
    let k6 = builders::complete(6);
    let cert = refute::ba_nodes(&Eig2, &k6, 2).unwrap();
    println!(
        "K6, f = 2: refuted via {} — violation: {}\n",
        cert.covering, cert.violation
    );

    // ── Connectivity bound ─────────────────────────────────────────────
    println!("=== 2f+1 connectivity bound ===\n");
    let c4 = builders::cycle(4);
    println!(
        "C4 has κ = {} < 2f+1 = 3 for f = 1",
        connectivity::vertex_connectivity(&c4)
    );
    // EIG is written for complete graphs, so the candidate on C4 is a
    // protocol that at least runs there: naive majority voting.
    struct NaiveOnC4;
    impl Protocol for NaiveOnC4 {
        fn name(&self) -> String {
            "NaiveMajority".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(flm_sim::devices::NaiveMajorityDevice::new())
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }
    let cert = refute::ba_connectivity(&NaiveOnC4, &c4, 1).unwrap();
    println!("{cert}\n");
    cert.verify(&NaiveOnC4).unwrap();

    // ── The matching upper bounds ──────────────────────────────────────
    println!("=== Tightness: one node / one unit of connectivity more ===\n");
    for (name, g, f) in [
        ("K4", builders::complete(4), 1usize),
        ("K7", builders::complete(7), 2),
    ] {
        assert!(adequacy::is_adequate(&g, f));
        testkit::assert_byzantine_agreement(&Eig::new(f), &g, f, 2);
        println!("EIG(f={f}) withstands every zoo adversary on {name} ✓");
    }
    // Phase King as a baseline (needs n > 4f).
    testkit::assert_byzantine_agreement(&PhaseKing::new(1), &builders::complete(5), 1, 2);
    println!("PhaseKing(f=1) withstands every zoo adversary on K5 ✓");

    // Sparse but 3-connected: relay EIG over 2f+1 vertex-disjoint paths.
    let mut links = Vec::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            if (u, v) != (0, 4) {
                links.push((u, v));
            }
        }
    }
    let sparse = builders::from_links(5, &links).unwrap();
    println!(
        "\nK5 minus one edge: κ = {} ≥ 3, not complete — EIG alone cannot run, \
         relayed EIG can:",
        connectivity::vertex_connectivity(&sparse)
    );
    testkit::assert_byzantine_agreement(&Relayed::new(Eig::new(1), 1), &sparse, 1, 2);
    println!("Relayed(EIG) withstands every zoo adversary on K5−e ✓");

    // ── The frontier in one line per graph ─────────────────────────────
    println!("\n=== Adequacy frontier ===");
    for n in 3..=9usize {
        let g = builders::complete(n);
        let fmax = adequacy::max_tolerable_faults(&g);
        println!(
            "  K{n}: tolerates f ≤ {fmax} (3f+1 bound: ⌊(n−1)/3⌋ = {})",
            (n - 1) / 3
        );
    }
}
