//! Regenerates the paper's figures as Graphviz DOT.
//!
//! The figures in FLM are all small labeled graphs; this binary emits each
//! one from the live constructions (so the figures are *checked*: every
//! covering map is validated by `flm_graph::covering::Covering::new`).
//! Pipe any block through `dot -Tsvg` to render.
//!
//! Run with: `cargo run --example figures`

use std::collections::BTreeSet;

use flm_graph::covering::Covering;
use flm_graph::{builders, dot, NodeId};

fn device_letter(v: NodeId) -> Option<String> {
    dot::triangle_device_label(v)
}

fn main() {
    // §3.1 — the triangle G with devices A, B, C.
    let triangle = builders::triangle();
    println!("// Figure §3.1a: the triangle graph G");
    println!(
        "{}",
        dot::graph_to_dot(&triangle, "G_triangle", device_letter)
    );

    // §3.1 — the hexagon cover S with devices and inputs.
    let a: BTreeSet<NodeId> = [NodeId(0)].into();
    let c: BTreeSet<NodeId> = [NodeId(2)].into();
    let hexagon = Covering::double_cover_crossing(&triangle, &a, &c).unwrap();
    println!("// Figure §3.1b: the hexagon cover S (labels: device·input)");
    println!(
        "{}",
        dot::graph_to_dot(hexagon.cover(), "S_hexagon", |s| {
            let dev = ["A", "B", "C"][hexagon.project(s).index()];
            let input = u8::from(s.index() >= 3);
            Some(format!("{dev}·{input}"))
        })
    );

    // §3.2 — the 4-cycle G with devices A, B, C, D.
    let c4 = builders::cycle(4);
    let letter4 = |v: NodeId| Some(["A", "B", "C", "D"][v.index()].to_string());
    println!("// Figure §3.2a: the 4-cycle (κ = 2; cut {{b, d}})");
    println!("{}", dot::graph_to_dot(&c4, "G_cycle4", letter4));

    // §3.2 — the 8-ring cover.
    let a4: BTreeSet<NodeId> = [NodeId(0)].into();
    let b4: BTreeSet<NodeId> = [NodeId(1)].into();
    let ring8 = Covering::double_cover_crossing(&c4, &a4, &b4).unwrap();
    println!("// Figure §3.2b: the 8-node cover (labels: device·copy)");
    println!("{}", dot::covering_to_dot(&ring8, "S_ring8"));

    // §4/§5 — the 4k-node ring (k = 3 shown: 12 nodes, half inputs 1).
    let k = 3;
    let ring = Covering::cyclic_cover(3, 4 * k / 3).unwrap();
    println!("// Figure §4: the 4k-ring for weak agreement / firing squad (k = {k})");
    println!(
        "{}",
        dot::graph_to_dot(ring.cover(), "S_ring4k", |s| {
            let dev = ["A", "B", "C"][ring.project(s).index()];
            let input = u8::from(s.index() < 2 * k);
            Some(format!("{dev}·{input}"))
        })
    );

    // §6.2/§7 — the (k+2)-node ring (k = 4: 6 nodes, inputs i·δ).
    let k62: usize = 4;
    let ring2 = Covering::cyclic_cover(3, (k62 + 2).div_ceil(3)).unwrap();
    println!("// Figure §6.2: the (k+2)-ring for (ε,δ,γ)-agreement (k = {k62}, inputs i·δ)");
    println!(
        "{}",
        dot::graph_to_dot(ring2.cover(), "S_ring_k2", |s| {
            let dev = ["A", "B", "C"][ring2.project(s).index()];
            Some(format!("{dev}·{}δ", s.index()))
        })
    );
    println!("// Figure §7 uses the same ring with hardware clocks q·h^-j at node j.");
}
