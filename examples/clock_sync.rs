//! Theorem 8 and Corollaries 12–15: clock synchronization.
//!
//! The best synchronization achievable in an inadequate graph needs no
//! communication: run the logical clock at the lower envelope, for skew
//! `l(q(t)) − l(p(t))`. This example shows:
//!
//! 1. an earnest averaging synchronizer genuinely beating the trivial skew
//!    when everyone is honest (why one might *believe* a claim);
//! 2. the Theorem 8 refuter defeating every claimed constant improvement
//!    α > 0, for both the trivial and the averaging device;
//! 3. the corollary parameterizations (linear drift, affine offset,
//!    logarithmic envelope).
//!
//! Run with: `cargo run --example clock_sync`

use flm_core::problems::ClockSyncClaim;
use flm_core::refute;
use flm_graph::builders;
use flm_protocols::clock_sync::{AveragingClockSync, TrivialClockSync};
use flm_sim::clock::{ClockSystem, TimeFn};
use flm_sim::ClockProtocol;

fn main() {
    let triangle = builders::triangle();

    // ── Why someone might claim nontrivial sync ───────────────────────
    let run_skew = |proto: &dyn ClockProtocol| {
        let mut sys = ClockSystem::new(triangle.clone());
        let clocks = [1.0, 1.5, 2.0];
        for v in triangle.nodes() {
            sys.assign(
                v,
                proto.device(&triangle, v),
                TimeFn::linear(clocks[v.index()]),
            );
        }
        let b = sys.run(12.0, &[10.0]);
        let vals: Vec<f64> = triangle.nodes().map(|v| b.logical_at(0, v)).collect();
        vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min)
    };
    let trivial = TrivialClockSync {
        l: TimeFn::identity(),
    };
    let averaging = AveragingClockSync {
        l: TimeFn::identity(),
        period: 1.0,
    };
    println!("All-honest triangle, clocks at rates 1 / 1.5 / 2, probed at t = 10:");
    println!(
        "  trivial lower-envelope device skew : {:.3}",
        run_skew(&trivial)
    );
    println!(
        "  averaging device skew              : {:.3}",
        run_skew(&averaging)
    );
    println!("  → averaging really is tighter when nobody lies.\n");

    // ── Theorem 8: but no device can *guarantee* any constant α ───────
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    };
    for (name, proto) in [
        ("trivial", &trivial as &dyn ClockProtocol),
        ("averaging", &averaging as &dyn ClockProtocol),
    ] {
        let cert = refute::clock_sync(proto, &triangle, 1, &claim)
            .expect("every α > 0 claim is refutable");
        println!("{cert}\n");
        cert.verify(proto).expect("certificate verifies");
        println!("  ({name} device: certificate re-executed, Lemma 9 scaling check ✓)\n");
    }

    // ── Corollaries ────────────────────────────────────────────────────
    println!("=== Corollaries 13–15 (α > 0 always refuted) ===");
    let c13 =
        refute::corollary_13(&trivial, 2.0, 1.0, 0.0, TimeFn::affine(2.0, 8.0), 2.0, 1.0).unwrap();
    println!(
        "Cor 13 (p=t, q=2t, l=t): claimed α=2 refuted in scenario S_{} ({})",
        c13.scenario, c13.condition
    );
    let half = TrivialClockSync {
        l: TimeFn::affine(0.5, 0.0),
    };
    let c14 =
        refute::corollary_14(&half, 3.0, 0.5, 0.0, TimeFn::affine(1.0, 6.0), 1.0, 1.0).unwrap();
    println!(
        "Cor 14 (p=t, q=t+3, l=t/2): claimed α=1 refuted in scenario S_{} ({})",
        c14.scenario, c14.condition
    );
    let logd = TrivialClockSync { l: TimeFn::Log2 };
    let c15 = refute::corollary_15(&logd, 2.0, TimeFn::affine(1.0, 4.0), 0.9, 1.0).unwrap();
    println!(
        "Cor 15 (p=t, q=2t, l=log2): claimed α=0.9 ~ log2(2) refuted in scenario S_{} ({})",
        c15.scenario, c15.condition
    );
    println!("\nConclusion: in inadequate graphs, run C(t) = l(D(t)) and save the bandwidth.");
}
