//! The hardened runtime: scheduled fault injection, panic containment, and
//! misbehavior-as-Byzantine degradation.
//!
//! 1. A [`FaultPlan`] mangles chosen edges at chosen ticks — drop, corrupt,
//!    equivocate, delay — deterministically from a seed. An adequate-graph
//!    protocol shrugs it off: that is what `f`-resilience *means*.
//! 2. A hostile device that panics mid-run is contained by
//!    [`System::run_contained`]: quarantined, not fatal, and recorded as a
//!    structured [`DeviceMisbehavior`] incident.
//! 3. The refuters degrade a misbehaving node to Byzantine-faulty when the
//!    budget `f` allows, and the resulting certificate carries the evidence.
//!
//! Run with: `cargo run --example fault_injection`

use std::collections::BTreeSet;

use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_protocols::{testkit, Eig};
use flm_sim::device::{snapshot, NodeCtx, Payload};
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::{Device, FaultPlan, Input, Protocol, RunPolicy, System, Tick};

/// Broadcasts its input once, then panics — a stand-in for any buggy device.
struct Detonator {
    input: bool,
}

impl Device for Detonator {
    fn name(&self) -> &'static str {
        "Detonator"
    }
    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input.as_bool().unwrap_or(false);
    }
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        assert!(t.0 < 1, "detonated at tick {}", t.0);
        inbox
            .iter()
            .map(|_| Some(vec![u8::from(self.input)].into()))
            .collect()
    }
    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"armed")
    }
}

/// NaiveMajority everywhere except a detonating node 0.
struct OneBadApple;

impl Protocol for OneBadApple {
    fn name(&self) -> String {
        "OneBadApple".into()
    }
    fn device(&self, _g: &Graph, v: NodeId) -> Box<dyn Device> {
        if v == NodeId(0) {
            Box::new(Detonator { input: false })
        } else {
            Box::new(NaiveMajorityDevice::new())
        }
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        4
    }
}

fn main() {
    // ── 1. Scheduled faults vs a resilient protocol ────────────────────
    let g = builders::complete(4);
    let proto = Eig::new(1);
    let horizon = proto.horizon(&g);
    let victim = NodeId(0);
    let mut plan = FaultPlan::new(42).equivocate(victim, 0, 1);
    for w in g.neighbors(victim) {
        plan = plan
            .corrupt_edge(victim, w, 1, 2)
            .delay_edge(victim, w, 2, horizon, 1);
    }
    println!(
        "FaultPlan against node {victim} of K4 running {}:",
        proto.name()
    );
    for rule in plan.rules() {
        println!("  {rule:?}");
    }
    let faulty = vec![(victim, plan.wrap(victim, proto.device(&g, victim)))];
    let b = testkit::run_with_faults(&proto, &g, &|v| Input::Bool(v.0.is_multiple_of(2)), faulty);
    let correct: BTreeSet<NodeId> = g.nodes().filter(|&v| v != victim).collect();
    testkit::check_byzantine_agreement(&b, &correct).expect("EIG tolerates f = 1");
    println!("  → the 3 unfaulted nodes still agree: EIG is f = 1 resilient.\n");

    // ── 2. Panic containment ───────────────────────────────────────────
    let mut sys = System::new(builders::triangle());
    for v in sys.graph().nodes() {
        sys.assign(v, OneBadApple.device(sys.graph(), v), Input::Bool(true));
    }
    let b = sys
        .run_contained(4, &RunPolicy::default())
        .expect("contained runs never abort on device panics");
    println!("run_contained absorbed a panicking device:");
    for m in b.misbehavior() {
        println!("  incident: {m}");
    }
    println!("  → node 0 quarantined; the run completed all 4 ticks.\n");

    // ── 3. Degradation inside a refuter ────────────────────────────────
    // C4 with f = 2 is inadequate (κ = 2 ≤ 2f). The refuter meets the
    // detonator, reclassifies node 0 as one of its budgeted faults, and
    // still delivers a verified counterexample — evidence attached.
    let cert = refute::ba_connectivity(&OneBadApple, &builders::cycle(4), 2)
        .expect("refutation proceeds despite the hostile device");
    println!("{cert}\n");
    cert.verify(&OneBadApple).expect("certificate verifies");
    println!("Certificate verified: misbehavior evidence reproduced exactly.");
}
