//! Quickstart: the FLM impossibility machine in five minutes.
//!
//! 1. Define (or import) a consensus protocol — any deterministic device
//!    family.
//! 2. Hand it to a refuter together with an *inadequate* graph.
//! 3. Get back a machine-checkable counterexample: a correct behavior of
//!    the graph that the protocol mishandles, built from a single run of a
//!    covering graph.
//!
//! Run with: `cargo run --example quickstart`

use flm_core::refute;
use flm_graph::{adequacy, builders, Graph, NodeId};
use flm_protocols::Eig;
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::{Decision, Device, Input, Protocol};

/// A protocol someone might naively believe solves Byzantine agreement on
/// three nodes: exchange inputs once, take the majority.
struct NaiveMajority;

impl Protocol for NaiveMajority {
    fn name(&self) -> String {
        "NaiveMajority".into()
    }
    fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
        Box::new(NaiveMajorityDevice::new())
    }
    fn horizon(&self, _g: &Graph) -> u32 {
        3
    }
}

fn main() {
    // ── The impossible side ────────────────────────────────────────────
    let triangle = builders::triangle();
    println!(
        "The triangle is {} for f = 1 (needs 3f+1 = 4 nodes).\n",
        if adequacy::is_adequate(&triangle, 1) {
            "adequate"
        } else {
            "INADEQUATE"
        }
    );

    let cert = refute::ba_nodes(&NaiveMajority, &triangle, 1)
        .expect("every protocol is refutable on an inadequate graph");
    println!("{cert}\n");

    // The certificate is not just a claim: re-execute it.
    cert.verify(&NaiveMajority).expect("certificate verifies");
    println!("certificate independently re-executed and verified ✓\n");

    // ── The possible side ──────────────────────────────────────────────
    // One more node makes the graph adequate, and EIG succeeds — even
    // against Byzantine faults (see flm-protocols' test suite for the
    // exhaustive adversary sweep).
    let k4 = builders::complete(4);
    assert!(adequacy::is_adequate(&k4, 1));
    let eig = Eig::new(1);
    let behavior = flm_protocols::testkit::run_honest(&eig, &k4, &|v: NodeId| {
        Input::Bool(v.0.is_multiple_of(2))
    });
    println!("EIG on K4 (adequate, f = 1), mixed inputs:");
    for v in k4.nodes() {
        println!(
            "  node {v}: input {}, decided {:?}",
            behavior.node(v).input,
            behavior.node(v).decision()
        );
    }
    let first = behavior.node(NodeId(0)).decision();
    assert!(matches!(first, Some(Decision::Bool(_))));
    assert!(k4.nodes().all(|v| behavior.node(v).decision() == first));
    println!("  → agreement holds on the adequate graph ✓");
}
