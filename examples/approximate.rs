//! Theorems 5 & 6: approximate agreement, impossible and possible.
//!
//! * Simple approximate agreement (outputs strictly closer than inputs)
//!   falls on the triangle via the hexagon walk.
//! * (ε,δ,γ)-agreement with ε < δ falls via the (k+2)-ring and Lemma 7's
//!   creeping induction — watch the per-scenario values climb by at most ε
//!   until validity snaps.
//! * On adequate graphs, DLPSW trimmed-midpoint iteration halves the spread
//!   every round against live Byzantine adversaries.
//!
//! Run with: `cargo run --example approximate`

use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_protocols::{testkit, Dlpsw};
use flm_sim::adversary::RandomAdversary;
use flm_sim::{Decision, Device, Input, Protocol};

fn main() {
    let triangle = builders::triangle();

    // A one-round averaging protocol for the triangle: the natural attempt.
    struct AverageProto;
    impl Protocol for AverageProto {
        fn name(&self) -> String {
            "DLPSW(f=0-style single average)".into()
        }
        fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
            // f = 0 ⇒ no trimming: plain averaging, one round.
            let _ = v;
            Dlpsw::new(0, 1).device(g, v)
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            4
        }
    }

    println!("=== Theorem 5: simple approximate agreement on the triangle ===\n");
    let cert = refute::simple_approx(&AverageProto, &triangle, 1).unwrap();
    println!("{cert}\n");
    cert.verify(&AverageProto).unwrap();

    println!("=== Theorem 6: (ε,δ,γ)-agreement, ε < δ ===\n");
    let (eps, delta, gamma) = (0.2, 1.0, 1.0);
    let cert = refute::eps_delta_gamma(&AverageProto, &triangle, 1, eps, delta, gamma).unwrap();
    println!("{cert}\n");
    println!(
        "Lemma 7 in action: ring inputs are 0, δ, 2δ, …; each two-node scenario is a \
         correct triangle behavior, so outputs may climb by at most ε = {eps} per \
         step — but validity at the far end demands ≈ kδ. The chain snapped at \
         behavior E{} ({}).\n",
        cert.violation.link + 1,
        cert.violation.condition
    );

    println!("=== The possible side: DLPSW on K4 (n = 3f+1) under attack ===\n");
    let k4 = builders::complete(4);
    let rounds = 5;
    let proto = Dlpsw::new(1, rounds);
    let inputs = |v: NodeId| Input::Real(f64::from(v.0)); // spread 3.0 (if all correct)
    for seed in [1u64, 2, 3] {
        let adv: Box<dyn Device> = Box::new(RandomAdversary::new(seed));
        let b = testkit::run_with_faults(&proto, &k4, &inputs, vec![(NodeId(3), adv)]);
        let decisions: Vec<f64> = (0..3)
            .map(|i| match b.node(NodeId(i)).decision() {
                Some(Decision::Real(r)) => r,
                other => panic!("expected real decision, got {other:?}"),
            })
            .collect();
        let spread = decisions.iter().cloned().fold(f64::MIN, f64::max)
            - decisions.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "  seed {seed}: correct decisions {decisions:?}  spread {spread:.5} \
             (≤ 2/2^{rounds} = {:.5})",
            2.0 / f64::from(1 << rounds)
        );
        assert!(spread <= 2.0 / f64::from(1 << rounds) + 1e-9);
    }
    println!("\n  → every round halves the spread, exactly as [DLPSW] promises for n ≥ 3f+1.");
}
