//! Anatomy of a counterexample certificate.
//!
//! This walks through everything a refuter hands back: the covering that
//! was run, each chain behavior of the inadequate graph (who was correct,
//! who masqueraded, what everyone decided), the checked scenario matches,
//! the violated condition — and finally a tick-by-tick replay of the
//! violating behavior, so you can watch the masquerading node split the
//! correct nodes with your own eyes.
//!
//! Run with: `cargo run --example certificate_anatomy`

use flm_core::refute;
use flm_graph::{builders, Graph, NodeId};
use flm_protocols::Eig;
use flm_sim::{Device, Protocol};

/// EIG, the *correct* protocol for n ≥ 3f+1 — installed on the triangle it
/// must fall, and the certificate shows precisely how.
struct EigOnTriangle;

impl Protocol for EigOnTriangle {
    fn name(&self) -> String {
        "EIG(f=1)".into()
    }
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        Eig::new(1).device(g, v)
    }
    fn horizon(&self, g: &Graph) -> u32 {
        Eig::new(1).horizon(g)
    }
}

fn main() {
    let triangle = builders::triangle();
    let cert = refute::ba_nodes(&EigOnTriangle, &triangle, 1).expect("refutable");

    println!("════════ the certificate ════════\n");
    println!("{cert}\n");

    println!("════════ the chain, link by link ════════\n");
    for (i, link) in cert.chain.iter().enumerate() {
        println!("E{} — a correct behavior of the triangle:", i + 1);
        println!("  correct nodes : {:?}", link.correct);
        for (v, traces) in &link.masquerade {
            let sent: usize = traces
                .iter()
                .flat_map(|t| t.iter().flatten())
                .map(|m| m.len())
                .sum();
            println!(
                "  faulty {v}     : replays {} recorded edge traces ({sent} bytes) \
                 harvested from the hexagon run",
                traces.len()
            );
        }
        println!(
            "  inputs        : {:?}",
            link.inputs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
        println!(
            "  Locality check: scenario transplanted from the cover matched {}",
            if link.scenario_matched {
                "byte-for-byte ✓"
            } else {
                "✗"
            }
        );
        println!();
    }

    println!("════════ replaying the violating behavior ════════\n");
    let behavior = cert
        .replay_violating_behavior(&EigOnTriangle)
        .expect("certificate replays");
    print!("{}", behavior.render_timeline());

    println!("\n════════ and the independent check ════════\n");
    cert.verify(&EigOnTriangle).expect("verifies");
    println!("Certificate::verify: re-execution reproduces the recorded decisions ✓");
    println!(
        "\nThe contradiction in words: E1's validity forces the 0-side to decide 0, \
         E3's forces the 1-side to decide 1, and E2's agreement glues them together — \
         all three are correct behaviors of the same triangle, so the protocol cannot \
         satisfy all of them. That is Theorem 1."
    );
}
