//! The §2 remark made runnable: weaken the Fault axiom with unforgeable
//! signatures and the impossibility evaporates.
//!
//! Dolev–Strong authenticated agreement reaches consensus on the triangle
//! with one Byzantine fault — squarely inside the region Theorem 1 rules
//! out for unauthenticated protocols. The demonstration has two halves:
//!
//! 1. **No real adversary defeats it.** Every adversary in the zoo (and
//!    every fault placement) holds only its *own* signing key, and the
//!    exhaustive sweep passes.
//! 2. **The refuter's masquerade is out of bounds.** Aim the covering
//!    refuter at Dolev–Strong and it still mechanically produces a
//!    "counterexample" — but inspect it: the masquerading node replays
//!    chains carrying signatures the correct nodes *never issued in that
//!    behavior* (they were harvested from the other copy of the cover,
//!    where the same node id signed the opposite input). Under the
//!    unforgeable-signature assumption such a fault is inadmissible, so
//!    the behavior lies outside the problem's quantifier. That gap —
//!    replayable in the unrestricted model, unobtainable in the
//!    authenticated one — is exactly what "weakening the Fault axiom"
//!    means, and why [LSP, PSL] could beat `3f+1` with authentication.
//!
//! Run with: `cargo run --example authenticated`

use flm_core::refute;
use flm_graph::builders;
use flm_graph::NodeId;
use flm_protocols::{testkit, DolevStrong};
use flm_sim::Input;

fn main() {
    let triangle = builders::triangle();
    let proto = DolevStrong::new(1, 0xD01E7);

    println!("=== Dolev–Strong on the triangle, f = 1 ===\n");

    // Honest run with mixed inputs.
    let b = testkit::run_honest(&proto, &triangle, &|v: NodeId| Input::Bool(v.0 == 0));
    for v in triangle.nodes() {
        println!(
            "  node {v}: input {}, decided {:?}",
            b.node(v).input,
            b.node(v).decision()
        );
    }

    // Full adversary sweep: every fault placement, every zoo strategy —
    // each faulty node holding only its own signer, as the model dictates.
    testkit::assert_byzantine_agreement(&proto, &triangle, 1, 8);
    println!("\nDolev–Strong withstands every zoo adversary on the *triangle* ✓");
    println!("(n = 3 = 3f: impossible without signatures — Theorem 1.)\n");

    // And with two faults among five nodes (n = 5 < 3f+1 = 7):
    let k5 = builders::complete(5);
    let proto2 = DolevStrong::new(2, 0xD01E8);
    testkit::assert_byzantine_agreement(&proto2, &k5, 2, 3);
    println!("DolevStrong(f=2) withstands every zoo adversary on K5 ✓ (5 < 3·2+1)\n");

    // Aim the covering refuter at it anyway. The unrestricted Fault axiom
    // lets the masquerade replay *validly signed* chains from the other
    // copy of the cover — an equivocation no real signature-bound adversary
    // could perform. The refuter therefore still "succeeds":
    println!("=== The refuter vs. authentication ===\n");
    match refute::ba_nodes(&proto, &triangle, 1) {
        Ok(cert) => {
            println!("{cert}\n");
            println!(
                "Read the masquerade: the faulty node presents chains signed with the \
                 correct nodes' keys over the *opposite* input — harvested from the other \
                 copy of the covering graph, where the same node id really did sign that \
                 value. A real authenticated adversary can never obtain those signatures, \
                 so this behavior is NOT a correct behavior of the authenticated model: \
                 the \"violation\" above lives outside the problem's quantifier."
            );
            println!(
                "\nThat is the paper's §2 remark, executed: the impossibility needs the \
                 full masquerading power of the Fault axiom; unforgeable signatures \
                 withdraw it, and the sweep in part 1 shows agreement is then achievable \
                 with n = 3f."
            );
        }
        Err(e) => println!("refuter declined: {e}"),
    }
}
