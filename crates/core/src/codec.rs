//! Canonical binary certificate format (`FLMC`).
//!
//! Certificates are the artifact the refuters hand out, and auditing one
//! should not require the Rust process that produced it: a cert written to
//! disk by `regen --emit-cert` is re-verified later by `flm-audit`, possibly
//! on another machine. This module defines the portable byte format:
//!
//! ```text
//! "FLMC" | version: u8 (= 1) | kind: u8 | body
//! ```
//!
//! Kind 0 is a discrete [`Certificate`] (Theorems 1–6), kind 1 a
//! [`ClockCertificate`] (Theorem 8), kind 2 an [`AsyncCertificate`]
//! (the FLP-style asynchronous family, where the body's heart is the full
//! adversarial delivery schedule). The encoding is *canonical* — one byte
//! string per logical value — built on [`flm_sim::wire`]: big-endian
//! integers, length-prefixed collections, `f64`s by IEEE-754 bit pattern.
//! Canonicality gives the audit trail a useful property for free:
//! `encode(decode(bytes)) == bytes` for every accepted input, so a cert file
//! can be fingerprinted by its hash.
//!
//! Decoding is hardened against hostile bytes: every collection count is
//! checked against the remaining input before allocation, every tag and
//! node id is validated, floats must be finite, and the embedded base graph
//! is re-validated by [`flm_graph::Graph::from_bytes`]. A corrupted file
//! yields a structured [`CertDecodeError`], never a panic or an oversized
//! allocation.

use std::fmt;

use flm_graph::{Graph, NodeId};
use flm_sim::behavior::{decode_edge_behavior, encode_edge_behavior, EdgeBehavior};
use flm_sim::clock::TimeFn;
use flm_sim::wire::{DecodeError, Reader, Writer};
use flm_sim::{Decision, DeviceMisbehavior, Input, RunPolicy};

use crate::certificate::{Certificate, ChainLink, Condition, Theorem, Violation};
use crate::problems::ClockSyncClaim;
use crate::refute::{AsyncCertificate, ClockCertificate};

/// File magic, first four bytes of every certificate file.
pub const MAGIC: &[u8; 4] = b"FLMC";
/// Current schema version.
pub const VERSION: u8 = 1;

const KIND_CERTIFICATE: u8 = 0;
const KIND_CLOCK_CERTIFICATE: u8 = 1;
const KIND_ASYNC_CERTIFICATE: u8 = 2;

/// Structured decode failure for certificate files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertDecodeError {
    /// The input does not start with the `FLMC` magic.
    BadMagic,
    /// The schema version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// The kind byte names no known certificate type.
    UnsupportedKind(u8),
    /// The input ran out of bytes or had an invalid tag while decoding the
    /// named field.
    Corrupt {
        /// Which field was being decoded.
        context: &'static str,
    },
    /// The bytes decoded but describe an impossible value.
    Invalid {
        /// Which field was being decoded.
        context: &'static str,
        /// Why the value is impossible.
        reason: String,
    },
    /// Well-formed certificate followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for CertDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertDecodeError::BadMagic => write!(f, "not a certificate file (bad magic)"),
            CertDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported certificate schema version {v}")
            }
            CertDecodeError::UnsupportedKind(k) => write!(f, "unknown certificate kind {k}"),
            CertDecodeError::Corrupt { context } => {
                write!(f, "corrupt certificate: truncated or bad tag in {context}")
            }
            CertDecodeError::Invalid { context, reason } => {
                write!(f, "invalid certificate: {context}: {reason}")
            }
            CertDecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after certificate")
            }
        }
    }
}

impl std::error::Error for CertDecodeError {}

/// Adds field context to bare wire-level failures.
trait Ctx<T> {
    fn ctx(self, context: &'static str) -> Result<T, CertDecodeError>;
}

impl<T> Ctx<T> for Result<T, DecodeError> {
    fn ctx(self, context: &'static str) -> Result<T, CertDecodeError> {
        self.map_err(|DecodeError| CertDecodeError::Corrupt { context })
    }
}

fn invalid(context: &'static str, reason: impl Into<String>) -> CertDecodeError {
    CertDecodeError::Invalid {
        context,
        reason: reason.into(),
    }
}

/// Reads a collection count, refusing counts that could not possibly fit in
/// the remaining input (each element needs ≥ `min_element_bytes`).
fn checked_count(
    r: &mut Reader<'_>,
    context: &'static str,
    min_element_bytes: usize,
) -> Result<usize, CertDecodeError> {
    let n = r.u32().ctx(context)? as usize;
    if n.saturating_mul(min_element_bytes.max(1)) > r.remaining() {
        return Err(invalid(
            context,
            format!(
                "claims {n} elements but only {} bytes remain",
                r.remaining()
            ),
        ));
    }
    Ok(n)
}

fn usize_field(r: &mut Reader<'_>, context: &'static str) -> Result<usize, CertDecodeError> {
    let v = r.u64().ctx(context)?;
    usize::try_from(v).map_err(|_| invalid(context, format!("{v} does not fit in usize")))
}

/// Magnitude bound on every decoded float. Clock replay walks an event loop
/// out to horizons derived from these values, so a bit-flipped exponent that
/// is still finite (~1e300) must be rejected here, not discovered as an
/// effectively unbounded run inside `verify`.
const MAX_F64_MAGNITUDE: f64 = 1e12;

fn finite_f64(r: &mut Reader<'_>, context: &'static str) -> Result<f64, CertDecodeError> {
    let v = f64::from_bits(r.u64().ctx(context)?);
    if !v.is_finite() {
        return Err(invalid(context, format!("{v} is not finite")));
    }
    if v.abs() > MAX_F64_MAGNITUDE {
        return Err(invalid(
            context,
            format!("|{v}| exceeds the decode cap of {MAX_F64_MAGNITUDE:e}"),
        ));
    }
    Ok(v)
}

fn node_in(r: &mut Reader<'_>, n: usize, context: &'static str) -> Result<NodeId, CertDecodeError> {
    let id = r.u32().ctx(context)?;
    if (id as usize) >= n {
        return Err(invalid(
            context,
            format!("node {id} out of range for a {n}-node base graph"),
        ));
    }
    Ok(NodeId(id))
}

fn theorem_tag(t: Theorem) -> u8 {
    match t {
        Theorem::BaNodes => 0,
        Theorem::BaConnectivity => 1,
        Theorem::WeakAgreement => 2,
        Theorem::FiringSquad => 3,
        Theorem::SimpleApprox => 4,
        Theorem::EpsDeltaGamma => 5,
        Theorem::ClockSync => 6,
    }
}

fn theorem_from_tag(tag: u8) -> Option<Theorem> {
    Some(match tag {
        0 => Theorem::BaNodes,
        1 => Theorem::BaConnectivity,
        2 => Theorem::WeakAgreement,
        3 => Theorem::FiringSquad,
        4 => Theorem::SimpleApprox,
        5 => Theorem::EpsDeltaGamma,
        6 => Theorem::ClockSync,
        _ => return None,
    })
}

fn condition_tag(c: Condition) -> u8 {
    match c {
        Condition::Termination => 0,
        Condition::Agreement => 1,
        Condition::Validity => 2,
    }
}

fn condition_from_tag(tag: u8) -> Option<Condition> {
    Some(match tag {
        0 => Condition::Termination,
        1 => Condition::Agreement,
        2 => Condition::Validity,
        _ => return None,
    })
}

fn encode_violation(v: &Violation, w: &mut Writer) {
    w.u8(condition_tag(v.condition));
    w.u64(v.link as u64);
    w.str(&v.evidence);
}

fn decode_violation(r: &mut Reader<'_>) -> Result<Violation, CertDecodeError> {
    let tag = r.u8().ctx("violation.condition")?;
    let condition = condition_from_tag(tag)
        .ok_or_else(|| invalid("violation.condition", format!("tag {tag}")))?;
    let link = usize_field(r, "violation.link")?;
    let evidence = r.str().ctx("violation.evidence")?.to_owned();
    Ok(Violation {
        condition,
        link,
        evidence,
    })
}

fn encode_chain_link(link: &ChainLink, w: &mut Writer) {
    w.u32(link.correct.len() as u32);
    for v in &link.correct {
        w.u32(v.0);
    }
    w.u32(link.masquerade.len() as u32);
    for (v, traces) in &link.masquerade {
        w.u32(v.0);
        w.u32(traces.len() as u32);
        for trace in traces {
            encode_edge_behavior(trace, w);
        }
    }
    w.u32(link.inputs.len() as u32);
    for input in &link.inputs {
        input.encode(w);
    }
    w.bool(link.scenario_matched);
    w.u32(link.decisions.len() as u32);
    for (v, d) in &link.decisions {
        w.u32(v.0);
        match d {
            None => {
                w.u8(0);
            }
            Some(d) => {
                w.u8(1);
                d.encode(w);
            }
        }
    }
    w.u32(link.horizon);
    w.u32(link.misbehavior.len() as u32);
    for m in &link.misbehavior {
        m.encode(w);
    }
    w.u32(link.degraded.len() as u32);
    for v in &link.degraded {
        w.u32(v.0);
    }
}

fn decode_chain_link(r: &mut Reader<'_>, n: usize) -> Result<ChainLink, CertDecodeError> {
    let correct_len = checked_count(r, "link.correct", 4)?;
    let mut correct = Vec::with_capacity(correct_len);
    for _ in 0..correct_len {
        correct.push(node_in(r, n, "link.correct")?);
    }

    let masq_len = checked_count(r, "link.masquerade", 8)?;
    let mut masquerade = Vec::with_capacity(masq_len);
    for _ in 0..masq_len {
        let v = node_in(r, n, "link.masquerade")?;
        let trace_len = checked_count(r, "link.masquerade.traces", 4)?;
        let mut traces: Vec<EdgeBehavior> = Vec::with_capacity(trace_len);
        for _ in 0..trace_len {
            traces.push(decode_edge_behavior(r).ctx("link.masquerade.traces")?);
        }
        masquerade.push((v, traces));
    }

    let inputs_len = checked_count(r, "link.inputs", 1)?;
    let mut inputs = Vec::with_capacity(inputs_len);
    for _ in 0..inputs_len {
        inputs.push(Input::decode(r).ctx("link.inputs")?);
    }

    let scenario_matched = r.bool().ctx("link.scenario_matched")?;

    let decisions_len = checked_count(r, "link.decisions", 5)?;
    let mut decisions = Vec::with_capacity(decisions_len);
    for _ in 0..decisions_len {
        let v = node_in(r, n, "link.decisions")?;
        let d = match r.u8().ctx("link.decisions")? {
            0 => None,
            1 => Some(Decision::decode(r).ctx("link.decisions")?),
            tag => return Err(invalid("link.decisions", format!("option tag {tag}"))),
        };
        decisions.push((v, d));
    }

    let horizon = r.u32().ctx("link.horizon")?;

    let misbehavior_len = checked_count(r, "link.misbehavior", 9)?;
    let mut misbehavior = Vec::with_capacity(misbehavior_len);
    for _ in 0..misbehavior_len {
        misbehavior.push(DeviceMisbehavior::decode(r).ctx("link.misbehavior")?);
    }

    let degraded_len = checked_count(r, "link.degraded", 4)?;
    let mut degraded = Vec::with_capacity(degraded_len);
    for _ in 0..degraded_len {
        degraded.push(node_in(r, n, "link.degraded")?);
    }

    Ok(ChainLink {
        correct,
        masquerade,
        inputs,
        scenario_matched,
        decisions,
        horizon,
        misbehavior,
        degraded,
    })
}

fn encode_claim(claim: &ClockSyncClaim, w: &mut Writer) {
    claim.p.encode(w);
    claim.q.encode(w);
    claim.l.encode(w);
    claim.u.encode(w);
    w.u64(claim.alpha.to_bits());
    w.u64(claim.t_prime.to_bits());
}

fn decode_claim(r: &mut Reader<'_>) -> Result<ClockSyncClaim, CertDecodeError> {
    let p = TimeFn::decode(r).ctx("claim.p")?;
    let q = TimeFn::decode(r).ctx("claim.q")?;
    let l = TimeFn::decode(r).ctx("claim.l")?;
    let u = TimeFn::decode(r).ctx("claim.u")?;
    let alpha = finite_f64(r, "claim.alpha")?;
    let t_prime = finite_f64(r, "claim.t_prime")?;
    Ok(ClockSyncClaim {
        p,
        q,
        l,
        u,
        alpha,
        t_prime,
    })
}

fn header(kind: u8) -> Writer {
    let mut w = Writer::new();
    for &b in MAGIC {
        w.u8(b);
    }
    w.u8(VERSION).u8(kind);
    w
}

/// Reads the magic/version header, returning the kind byte.
fn read_header(r: &mut Reader<'_>) -> Result<u8, CertDecodeError> {
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8().map_err(|DecodeError| CertDecodeError::BadMagic)?;
    }
    if &magic != MAGIC {
        return Err(CertDecodeError::BadMagic);
    }
    let version = r.u8().ctx("version")?;
    if version != VERSION {
        return Err(CertDecodeError::UnsupportedVersion(version));
    }
    r.u8().ctx("kind")
}

fn finish(r: &Reader<'_>) -> Result<(), CertDecodeError> {
    if r.remaining() != 0 {
        return Err(CertDecodeError::TrailingBytes {
            count: r.remaining(),
        });
    }
    Ok(())
}

/// Either certificate type, as read back from a file.
#[derive(Debug, Clone)]
pub enum AnyCertificate {
    /// A discrete-theorem certificate (kind 0).
    Discrete(Certificate),
    /// A clock-synchronization certificate (kind 1).
    Clock(ClockCertificate),
    /// An asynchronous-scheduling certificate (kind 2).
    Async(AsyncCertificate),
}

impl AnyCertificate {
    /// The refuted protocol's recorded name.
    pub fn protocol(&self) -> &str {
        match self {
            AnyCertificate::Discrete(c) => &c.protocol,
            AnyCertificate::Clock(c) => &c.protocol,
            AnyCertificate::Async(c) => &c.protocol,
        }
    }

    /// Re-encodes to the canonical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            AnyCertificate::Discrete(c) => c.to_bytes(),
            AnyCertificate::Clock(c) => c.to_bytes(),
            AnyCertificate::Async(c) => c.to_bytes(),
        }
    }
}

/// Decodes either certificate kind from file bytes.
///
/// # Errors
///
/// Returns [`CertDecodeError`] on any malformed input; never panics.
pub fn decode_any(bytes: &[u8]) -> Result<AnyCertificate, CertDecodeError> {
    let mut r = Reader::new(bytes);
    match read_header(&mut r)? {
        KIND_CERTIFICATE => {
            let cert = decode_certificate_body(&mut r)?;
            finish(&r)?;
            Ok(AnyCertificate::Discrete(cert))
        }
        KIND_CLOCK_CERTIFICATE => {
            let cert = decode_clock_certificate_body(&mut r)?;
            finish(&r)?;
            Ok(AnyCertificate::Clock(cert))
        }
        KIND_ASYNC_CERTIFICATE => {
            let cert = decode_async_certificate_body(&mut r)?;
            finish(&r)?;
            Ok(AnyCertificate::Async(cert))
        }
        kind => Err(CertDecodeError::UnsupportedKind(kind)),
    }
}

fn decode_certificate_body(r: &mut Reader<'_>) -> Result<Certificate, CertDecodeError> {
    let tag = r.u8().ctx("theorem")?;
    let theorem = theorem_from_tag(tag).ok_or_else(|| invalid("theorem", format!("tag {tag}")))?;
    let protocol = r.str().ctx("protocol")?.to_owned();
    let base_bytes = r.bytes().ctx("base graph")?;
    let base = Graph::from_bytes(base_bytes).map_err(|e| invalid("base graph", e.to_string()))?;
    let n = base.node_count();
    let f = usize_field(r, "f")?;
    let covering = r.str().ctx("covering")?.to_owned();
    let policy = RunPolicy::decode(r).ctx("policy")?;
    let chain_len = checked_count(r, "chain", 4)?;
    let mut chain = Vec::with_capacity(chain_len);
    for _ in 0..chain_len {
        chain.push(decode_chain_link(r, n)?);
    }
    let violation = decode_violation(r)?;
    if violation.link >= chain.len() {
        return Err(invalid(
            "violation.link",
            format!(
                "points at link {} of a {}-link chain",
                violation.link,
                chain.len()
            ),
        ));
    }
    Ok(Certificate {
        theorem,
        protocol,
        base,
        f,
        covering,
        chain,
        policy,
        violation,
    })
}

fn decode_clock_certificate_body(r: &mut Reader<'_>) -> Result<ClockCertificate, CertDecodeError> {
    let protocol = r.str().ctx("protocol")?.to_owned();
    let claim = decode_claim(r)?;
    let k = usize_field(r, "k")?;
    // `verify` re-runs a (k+2)-node ring; an absurd k is a corrupt cert, not
    // a simulation request. The refuter itself gives up at k = 3000.
    if k > 16_384 {
        return Err(invalid(
            "k",
            format!("{k} exceeds the 16384 ring-length cap"),
        ));
    }
    let t_eval = finite_f64(r, "t_eval")?;
    let logical_len = checked_count(r, "logical", 8)?;
    let mut logical = Vec::with_capacity(logical_len);
    for _ in 0..logical_len {
        logical.push(finite_f64(r, "logical")?);
    }
    if logical.len() != k + 2 {
        return Err(invalid(
            "logical",
            format!("{} readings for a {}-node ring", logical.len(), k + 2),
        ));
    }
    let scenario = usize_field(r, "scenario")?;
    if scenario > k {
        return Err(invalid(
            "scenario",
            format!("scenario {scenario} out of range for k = {k}"),
        ));
    }
    let tag = r.u8().ctx("condition")?;
    let condition =
        condition_from_tag(tag).ok_or_else(|| invalid("condition", format!("tag {tag}")))?;
    let evidence = r.str().ctx("evidence")?.to_owned();
    Ok(ClockCertificate {
        protocol,
        claim,
        k,
        t_eval,
        logical,
        scenario,
        condition,
        evidence,
    })
}

fn decode_async_certificate_body(r: &mut Reader<'_>) -> Result<AsyncCertificate, CertDecodeError> {
    let protocol = r.str().ctx("protocol")?.to_owned();
    let base_bytes = r.bytes().ctx("base graph")?;
    let base = Graph::from_bytes(base_bytes).map_err(|e| invalid("base graph", e.to_string()))?;
    let n = base.node_count();
    let edges = base.directed_edges().len() as u32;
    let policy = RunPolicy::decode(r).ctx("policy")?;

    let inputs_len = checked_count(r, "inputs", 1)?;
    if inputs_len != n {
        return Err(invalid(
            "inputs",
            format!("{inputs_len} inputs for a {n}-node base graph"),
        ));
    }
    let mut inputs = Vec::with_capacity(inputs_len);
    for _ in 0..inputs_len {
        inputs.push(Input::decode(r).ctx("inputs")?);
    }

    let strategy = r.str().ctx("strategy")?.to_owned();

    // The schedule is the certificate's heart, and the favorite forgery
    // target. Three guards: every entry must name a real directed edge, the
    // length must fit the policy's delivery budget (a schedule/horizon
    // mismatch is a forgery, not a replay problem), and the count itself is
    // checked against the remaining bytes like every collection.
    let sched_len = checked_count(r, "schedule", 4)?;
    if sched_len as u64 > u64::from(policy.max_ticks) {
        return Err(invalid(
            "schedule",
            format!(
                "{sched_len} deliveries exceed the policy budget of {}",
                policy.max_ticks
            ),
        ));
    }
    let mut schedule = Vec::with_capacity(sched_len);
    for i in 0..sched_len {
        let e = r.u32().ctx("schedule")?;
        if e >= edges {
            return Err(invalid(
                "schedule",
                format!("entry {i} names edge {e}, graph has {edges} directed edges"),
            ));
        }
        schedule.push(e);
    }

    let decisions_len = checked_count(r, "decisions", 1)?;
    if decisions_len != n {
        return Err(invalid(
            "decisions",
            format!("{decisions_len} decisions for a {n}-node base graph"),
        ));
    }
    let mut decisions = Vec::with_capacity(decisions_len);
    for _ in 0..decisions_len {
        let d = match r.u8().ctx("decisions")? {
            0 => None,
            1 => Some(Decision::decode(r).ctx("decisions")?),
            tag => return Err(invalid("decisions", format!("option tag {tag}"))),
        };
        decisions.push(d);
    }

    let pending_len = checked_count(r, "pending", 8)?;
    let mut pending: Vec<(u32, u32)> = Vec::with_capacity(pending_len);
    for _ in 0..pending_len {
        let e = r.u32().ctx("pending")?;
        let k = r.u32().ctx("pending")?;
        if e >= edges {
            return Err(invalid(
                "pending",
                format!("edge {e} out of range for {edges} directed edges"),
            ));
        }
        if k == 0 {
            return Err(invalid(
                "pending",
                format!("edge {e} listed with zero pending"),
            ));
        }
        if let Some(&(prev, _)) = pending.last() {
            if e <= prev {
                return Err(invalid(
                    "pending",
                    format!("edges not strictly ascending ({prev} then {e})"),
                ));
            }
        }
        pending.push((e, k));
    }

    let budget_exhausted = r.bool().ctx("budget_exhausted")?;

    let misbehavior_len = checked_count(r, "misbehavior", 9)?;
    let mut misbehavior = Vec::with_capacity(misbehavior_len);
    for _ in 0..misbehavior_len {
        misbehavior.push(DeviceMisbehavior::decode(r).ctx("misbehavior")?);
    }

    let tag = r.u8().ctx("condition")?;
    let condition =
        condition_from_tag(tag).ok_or_else(|| invalid("condition", format!("tag {tag}")))?;
    let evidence = r.str().ctx("evidence")?.to_owned();

    Ok(AsyncCertificate {
        protocol,
        base,
        inputs,
        strategy,
        schedule,
        decisions,
        pending,
        budget_exhausted,
        misbehavior,
        policy,
        condition,
        evidence,
    })
}

impl AsyncCertificate {
    /// Encodes to the canonical `FLMC` byte format (kind 2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = header(KIND_ASYNC_CERTIFICATE);
        w.str(&self.protocol);
        w.bytes(&self.base.to_bytes());
        self.policy.encode(&mut w);
        w.u32(self.inputs.len() as u32);
        for &input in &self.inputs {
            input.encode(&mut w);
        }
        w.str(&self.strategy);
        w.u32(self.schedule.len() as u32);
        for &e in &self.schedule {
            w.u32(e);
        }
        w.u32(self.decisions.len() as u32);
        for d in &self.decisions {
            match d {
                None => {
                    w.u8(0);
                }
                Some(d) => {
                    w.u8(1);
                    d.encode(&mut w);
                }
            }
        }
        w.u32(self.pending.len() as u32);
        for &(e, k) in &self.pending {
            w.u32(e).u32(k);
        }
        w.bool(self.budget_exhausted);
        w.u32(self.misbehavior.len() as u32);
        for m in &self.misbehavior {
            m.encode(&mut w);
        }
        w.u8(condition_tag(self.condition));
        w.str(&self.evidence);
        w.finish()
    }

    /// Decodes from `FLMC` bytes, expecting kind 2.
    ///
    /// # Errors
    ///
    /// Returns [`CertDecodeError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<AsyncCertificate, CertDecodeError> {
        match decode_any(bytes)? {
            AnyCertificate::Async(c) => Ok(c),
            AnyCertificate::Discrete(_) => Err(CertDecodeError::UnsupportedKind(KIND_CERTIFICATE)),
            AnyCertificate::Clock(_) => {
                Err(CertDecodeError::UnsupportedKind(KIND_CLOCK_CERTIFICATE))
            }
        }
    }
}

impl Certificate {
    /// Encodes to the canonical `FLMC` byte format (kind 0).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = header(KIND_CERTIFICATE);
        w.u8(theorem_tag(self.theorem));
        w.str(&self.protocol);
        w.bytes(&self.base.to_bytes());
        w.u64(self.f as u64);
        w.str(&self.covering);
        self.policy.encode(&mut w);
        w.u32(self.chain.len() as u32);
        for link in &self.chain {
            encode_chain_link(link, &mut w);
        }
        encode_violation(&self.violation, &mut w);
        w.finish()
    }

    /// Decodes from `FLMC` bytes, expecting kind 0.
    ///
    /// # Errors
    ///
    /// Returns [`CertDecodeError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Certificate, CertDecodeError> {
        match decode_any(bytes)? {
            AnyCertificate::Discrete(c) => Ok(c),
            AnyCertificate::Clock(_) => {
                Err(CertDecodeError::UnsupportedKind(KIND_CLOCK_CERTIFICATE))
            }
            AnyCertificate::Async(_) => {
                Err(CertDecodeError::UnsupportedKind(KIND_ASYNC_CERTIFICATE))
            }
        }
    }
}

impl ClockCertificate {
    /// Encodes to the canonical `FLMC` byte format (kind 1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = header(KIND_CLOCK_CERTIFICATE);
        w.str(&self.protocol);
        encode_claim(&self.claim, &mut w);
        w.u64(self.k as u64);
        w.u64(self.t_eval.to_bits());
        w.u32(self.logical.len() as u32);
        for &c in &self.logical {
            w.u64(c.to_bits());
        }
        w.u64(self.scenario as u64);
        w.u8(condition_tag(self.condition));
        w.str(&self.evidence);
        w.finish()
    }

    /// Decodes from `FLMC` bytes, expecting kind 1.
    ///
    /// # Errors
    ///
    /// Returns [`CertDecodeError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<ClockCertificate, CertDecodeError> {
        match decode_any(bytes)? {
            AnyCertificate::Clock(c) => Ok(c),
            AnyCertificate::Discrete(_) => Err(CertDecodeError::UnsupportedKind(KIND_CERTIFICATE)),
            AnyCertificate::Async(_) => {
                Err(CertDecodeError::UnsupportedKind(KIND_ASYNC_CERTIFICATE))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    fn sample() -> Certificate {
        Certificate {
            theorem: Theorem::WeakAgreement,
            protocol: "Sample(f=1)".into(),
            base: builders::triangle(),
            f: 1,
            covering: "hexagon (k = 1)".into(),
            chain: vec![ChainLink {
                correct: vec![NodeId(0), NodeId(1)],
                masquerade: vec![(NodeId(2), vec![vec![Some(vec![1, 2].into())], vec![None]])],
                inputs: vec![Input::Bool(false), Input::Bool(true), Input::None],
                scenario_matched: true,
                decisions: vec![
                    (NodeId(0), Some(Decision::Bool(false))),
                    (NodeId(1), Some(Decision::Real(0.5))),
                    (NodeId(2), None),
                ],
                horizon: 3,
                misbehavior: Vec::new(),
                degraded: Vec::new(),
            }],
            policy: RunPolicy::default(),
            violation: Violation {
                condition: Condition::Agreement,
                link: 0,
                evidence: "n0 chose 0, n1 chose 0.5".into(),
            },
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let cert = sample();
        let bytes = cert.to_bytes();
        let again = Certificate::from_bytes(&bytes).unwrap();
        assert_eq!(again.to_bytes(), bytes);
        assert_eq!(again.protocol, cert.protocol);
        assert_eq!(again.chain.len(), 1);
    }

    #[test]
    fn header_is_validated() {
        let mut bytes = sample().to_bytes();
        assert!(matches!(
            Certificate::from_bytes(&bytes[..3]),
            Err(CertDecodeError::BadMagic)
        ));
        bytes[0] = b'X';
        assert!(matches!(
            Certificate::from_bytes(&bytes),
            Err(CertDecodeError::BadMagic)
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            Certificate::from_bytes(&bytes),
            Err(CertDecodeError::UnsupportedVersion(9))
        ));
        let mut bytes = sample().to_bytes();
        bytes[5] = 7;
        assert!(matches!(
            Certificate::from_bytes(&bytes),
            Err(CertDecodeError::UnsupportedKind(7))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Certificate::from_bytes(&bytes),
            Err(CertDecodeError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn hostile_counts_cannot_force_allocation() {
        // A chain count of u32::MAX must be rejected by the remaining-bytes
        // guard, not attempted.
        let mut cert = sample();
        cert.chain.clear();
        cert.violation.link = 0;
        let bytes = cert.to_bytes();
        // Find the (now zero) chain count and blast it. It sits right after
        // the policy; rather than compute the offset, scan for the violation
        // tail and patch the 4 bytes before it — simpler: re-encode by hand.
        let mut w = header(KIND_CERTIFICATE);
        w.u8(theorem_tag(cert.theorem));
        w.str(&cert.protocol);
        w.bytes(&cert.base.to_bytes());
        w.u64(cert.f as u64);
        w.str(&cert.covering);
        cert.policy.encode(&mut w);
        w.u32(u32::MAX);
        let hostile = w.finish();
        assert!(matches!(
            Certificate::from_bytes(&hostile),
            Err(CertDecodeError::Invalid {
                context: "chain",
                ..
            })
        ));
        // And the original empty-chain cert fails on the dangling violation
        // index instead of panicking at verify time.
        assert!(matches!(
            Certificate::from_bytes(&bytes),
            Err(CertDecodeError::Invalid {
                context: "violation.link",
                ..
            })
        ));
    }

    #[test]
    fn clock_round_trip_is_byte_identical() {
        let cert = ClockCertificate {
            protocol: "TrivialClockSync".into(),
            claim: ClockSyncClaim {
                p: TimeFn::identity(),
                q: TimeFn::linear(2.0),
                l: TimeFn::identity(),
                u: TimeFn::affine(2.0, 8.0),
                alpha: 2.0,
                t_prime: 1.0,
            },
            k: 4,
            t_eval: 16.0,
            logical: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            scenario: 2,
            condition: Condition::Validity,
            evidence: "outside the envelope".into(),
        };
        let bytes = cert.to_bytes();
        let again = ClockCertificate::from_bytes(&bytes).unwrap();
        assert_eq!(again.to_bytes(), bytes);
        assert_eq!(again.k, 4);
        // Kind confusion is an error, not a panic.
        assert!(Certificate::from_bytes(&bytes).is_err());
    }

    fn async_sample() -> AsyncCertificate {
        // A triangle has 6 directed edges (indices 0..6).
        AsyncCertificate {
            protocol: "prey".into(),
            base: builders::triangle(),
            inputs: vec![Input::Bool(true), Input::Bool(false), Input::Bool(true)],
            strategy: "starve(node=2, seed=0x1)".into(),
            schedule: vec![0, 3, 1, 2],
            decisions: vec![Some(Decision::Bool(true)), Some(Decision::Bool(true)), None],
            pending: vec![(4, 1), (5, 1)],
            budget_exhausted: false,
            misbehavior: Vec::new(),
            policy: RunPolicy::default(),
            condition: Condition::Termination,
            evidence: "n2 never decided; 2 deliveries were withheld".into(),
        }
    }

    #[test]
    fn async_round_trip_is_byte_identical() {
        let cert = async_sample();
        let bytes = cert.to_bytes();
        let again = AsyncCertificate::from_bytes(&bytes).unwrap();
        assert_eq!(again.to_bytes(), bytes);
        assert_eq!(again.schedule, cert.schedule);
        assert_eq!(again.strategy, cert.strategy);
        // Kind confusion is an error, not a panic.
        assert!(Certificate::from_bytes(&bytes).is_err());
        assert!(ClockCertificate::from_bytes(&bytes).is_err());
    }

    #[test]
    fn async_decoder_rejects_forged_schedules() {
        // Out-of-range edge index.
        let mut cert = async_sample();
        cert.schedule[1] = 6;
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "schedule",
                ..
            })
        ));
        // Schedule longer than the fairness budget it claims.
        let mut cert = async_sample();
        cert.policy.max_ticks = 3;
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "schedule",
                ..
            })
        ));
    }

    #[test]
    fn async_decoder_validates_shape() {
        let mut cert = async_sample();
        cert.inputs.pop();
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "inputs",
                ..
            })
        ));
        let mut cert = async_sample();
        cert.decisions.push(None);
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "decisions",
                ..
            })
        ));
        // Pending list must be strictly ascending with positive counts.
        let mut cert = async_sample();
        cert.pending = vec![(5, 1), (4, 1)];
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "pending",
                ..
            })
        ));
        let mut cert = async_sample();
        cert.pending = vec![(4, 0)];
        assert!(matches!(
            AsyncCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "pending",
                ..
            })
        ));
    }

    #[test]
    fn clock_decoder_validates_shape() {
        let mut cert = ClockCertificate {
            protocol: "t".into(),
            claim: ClockSyncClaim {
                p: TimeFn::identity(),
                q: TimeFn::linear(2.0),
                l: TimeFn::identity(),
                u: TimeFn::affine(2.0, 8.0),
                alpha: 1.0,
                t_prime: 1.0,
            },
            k: 4,
            t_eval: 16.0,
            logical: vec![0.0; 6],
            scenario: 0,
            condition: Condition::Agreement,
            evidence: String::new(),
        };
        cert.logical.pop(); // 5 readings for a 6-node ring
        assert!(matches!(
            ClockCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "logical",
                ..
            })
        ));
        cert.logical = vec![0.0; 6];
        cert.scenario = 5; // > k
        assert!(matches!(
            ClockCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "scenario",
                ..
            })
        ));
        cert.scenario = 0;
        cert.t_eval = f64::NAN;
        assert!(matches!(
            ClockCertificate::from_bytes(&cert.to_bytes()),
            Err(CertDecodeError::Invalid {
                context: "t_eval",
                ..
            })
        ));
    }
}
