//! Opt-in per-phase timing for the refutation pipeline.
//!
//! Set `FLM_PROFILE=1` and the refuters accumulate wall-clock time per phase
//! (build the covering, run `S`, transplant, verify, …) into a global table;
//! [`report`] renders it together with the run-cache counters from
//! [`flm_sim::runcache::stats`]. `flm-bench regen --refute` prints the
//! report to stderr after each refutation when the variable is set.
//!
//! When `FLM_PROFILE` is unset (or `0`) the [`span`] wrapper is a direct
//! call — no clock reads, no lock traffic — so the profiler costs nothing
//! in the common case.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether profiling is enabled for this process (`FLM_PROFILE` set to
/// anything but `0` or the empty string). Read once and cached.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("FLM_PROFILE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// phase name → (calls, total nanoseconds).
fn table() -> &'static Mutex<BTreeMap<&'static str, (u64, u128)>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, (u64, u128)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Times `f` under `phase` when profiling is enabled; otherwise just calls
/// it. Phases nest (an outer span includes its inner spans' time) and
/// accumulate across threads.
pub fn span<R>(phase: &'static str, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    record(phase, start.elapsed().as_nanos());
    out
}

/// Adds one call of `ns` nanoseconds to `phase`'s totals.
pub fn record(phase: &'static str, ns: u128) {
    let mut t = table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entry = t.entry(phase).or_insert((0, 0));
    entry.0 += 1;
    entry.1 += ns;
}

/// Clears the phase table (the run-cache counters are reset separately via
/// [`flm_sim::runcache::reset_stats`]).
pub fn reset() {
    table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Renders the phase table plus the run-cache summary. Stable ordering
/// (alphabetical by phase) so output diffs cleanly across runs.
pub fn report() -> String {
    use std::fmt::Write as _;
    let t = table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::from("FLM_PROFILE phase summary\n");
    let width = t.keys().map(|k| k.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(
        out,
        "  {:width$}  {:>8}  {:>12}  {:>12}",
        "phase", "calls", "total ms", "mean us"
    );
    for (phase, &(calls, total_ns)) in t.iter() {
        let total_ms = total_ns as f64 / 1e6;
        let mean_us = if calls == 0 {
            0.0
        } else {
            total_ns as f64 / calls as f64 / 1e3
        };
        let _ = writeln!(
            out,
            "  {phase:width$}  {calls:>8}  {total_ms:>12.3}  {mean_us:>12.1}"
        );
    }
    let s = flm_sim::runcache::stats();
    let _ = writeln!(
        out,
        "  run cache: {} hits / {} misses ({:.1}% hit rate), ~{} KiB of behaviors reused, {} evictions, {} entries",
        s.hits,
        s.misses,
        s.hit_rate() * 100.0,
        s.bytes_saved / 1024,
        s.evictions,
        s.entries,
    );
    let p = flm_sim::prefixcache::stats();
    let _ = writeln!(
        out,
        "  prefix trie: {} hits / {} misses, {} ticks skipped by resuming, {} evictions, {} snapshots",
        p.hits, p.misses, p.ticks_saved, p.evictions, p.entries,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report_accumulate() {
        reset();
        record("test-phase", 1_500_000);
        record("test-phase", 500_000);
        let r = report();
        assert!(r.contains("test-phase"), "missing phase in {r}");
        assert!(r.contains("run cache:"), "missing cache line in {r}");
        let t = table().lock().unwrap();
        assert_eq!(t.get("test-phase"), Some(&(2, 2_000_000)));
    }

    #[test]
    fn span_passes_value_through() {
        assert_eq!(span("passthrough", || 41 + 1), 42);
    }
}
