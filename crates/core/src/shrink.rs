//! Greedy delta-debugging for campaign violations.
//!
//! A sprawling counterexample schedule is weak evidence; a minimal one is a
//! proof artifact. This module shrinks a violating scenario along three
//! axes — graph nodes, fault-plan rules, run horizon — by repeatedly
//! probing strictly smaller candidate scenarios and keeping the first that
//! *still refutes*. The probe re-runs the candidate through the full
//! certificate-verification path, so every accepted step is as trustworthy
//! as the original finding; the shrinker never trades soundness for size.
//!
//! The loop is deterministic: candidates are probed in the order the
//! generator yields them, the first success is taken (greedy descent), and
//! the attempt budget bounds total work. Same inputs, same minimum.

use flm_sim::campaign::ScenarioDims;
use flm_sim::Protocol;

use crate::certificate::{Certificate, Condition};

/// True when `a` is no larger than `b` in every dimension and strictly
/// smaller in at least one — the shrinker's acceptance partial order.
pub fn strictly_smaller(a: &ScenarioDims, b: &ScenarioDims) -> bool {
    a.nodes <= b.nodes
        && a.rules <= b.rules
        && a.horizon <= b.horizon
        && (a.nodes < b.nodes || a.rules < b.rules || a.horizon < b.horizon)
}

/// The re-verification hook the shrinker's probes funnel through: the
/// candidate certificate must pass [`Certificate::verify`] *and* refute
/// the same condition kind as the original. Without the second check,
/// shrinking a horizon would degenerate every violation into a trivial
/// termination failure ("nobody decided in 1 tick") — smaller, but a
/// different and far weaker counterexample.
///
/// # Errors
///
/// Returns the rejection reason: a verify failure or a condition drift.
pub fn reverify_same_condition(
    cert: &Certificate,
    protocol: &dyn Protocol,
    original: Condition,
) -> Result<(), String> {
    if cert.violation.condition != original {
        return Err(format!(
            "condition drifted: {} became {}",
            original, cert.violation.condition
        ));
    }
    cert.verify(protocol).map_err(|e| e.to_string())
}

/// The result of a shrink run: the smallest scenario that still refutes,
/// its certificate, and how hard the search worked. Generic over the
/// certificate type so the asynchronous campaign axis shrinks
/// [`crate::refute::AsyncCertificate`]s (schedule length included) through
/// the same greedy loop; `C` defaults to the discrete [`Certificate`].
#[derive(Debug, Clone)]
pub struct ShrinkOutcome<S, C = Certificate> {
    /// The minimized scenario.
    pub scenario: S,
    /// The verified certificate of the minimized scenario.
    pub certificate: C,
    /// Final scenario size.
    pub dims: ScenarioDims,
    /// Probes attempted (including rejected candidates).
    pub attempts: usize,
    /// Shrink steps accepted.
    pub accepted: usize,
}

/// Greedy descent: repeatedly ask `candidates` for strictly smaller
/// variants of the current scenario, probe them in order, and move to the
/// first one `probe` accepts; stop when a full pass yields no improvement
/// or `max_attempts` probes have run.
///
/// `probe`'s contract: return `Some(certificate)` only when the candidate
/// still refutes — verified end to end and for the same condition (see
/// [`reverify_same_condition`]). Candidates not strictly smaller than the
/// current best (per [`strictly_smaller`]) are skipped without spending an
/// attempt, so generators may over-produce.
pub fn greedy<S: Clone, C>(
    scenario: S,
    certificate: C,
    dims: ScenarioDims,
    candidates: impl Fn(&S) -> Vec<(S, ScenarioDims)>,
    probe: impl Fn(&S) -> Option<C>,
    max_attempts: usize,
) -> ShrinkOutcome<S, C> {
    let mut out = ShrinkOutcome {
        scenario,
        certificate,
        dims,
        attempts: 0,
        accepted: 0,
    };
    'descent: loop {
        for (cand, cand_dims) in candidates(&out.scenario) {
            if out.attempts >= max_attempts {
                break 'descent;
            }
            if !strictly_smaller(&cand_dims, &out.dims) {
                continue;
            }
            out.attempts += 1;
            if let Some(cert) = probe(&cand) {
                out.scenario = cand;
                out.certificate = cert;
                out.dims = cand_dims;
                out.accepted += 1;
                continue 'descent;
            }
        }
        break;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{Theorem, Violation};
    use flm_graph::builders;
    use flm_sim::RunPolicy;

    fn dummy_cert() -> Certificate {
        Certificate {
            theorem: Theorem::BaNodes,
            protocol: "Dummy".into(),
            base: builders::triangle(),
            f: 1,
            covering: "test".into(),
            chain: Vec::new(),
            policy: RunPolicy::default(),
            violation: Violation {
                condition: Condition::Agreement,
                link: 0,
                evidence: String::new(),
            },
        }
    }

    #[test]
    fn partial_order_requires_componentwise_and_strict() {
        let d = |nodes, rules, horizon| ScenarioDims {
            nodes,
            rules,
            horizon,
        };
        assert!(strictly_smaller(&d(3, 2, 8), &d(4, 2, 8)));
        assert!(strictly_smaller(&d(4, 1, 8), &d(4, 2, 8)));
        assert!(!strictly_smaller(&d(4, 2, 8), &d(4, 2, 8)), "not strict");
        assert!(
            !strictly_smaller(&d(3, 3, 8), &d(4, 2, 8)),
            "trade-offs are not shrinks"
        );
    }

    #[test]
    fn greedy_descends_to_the_probe_floor() {
        // Scenario = a number; candidates halve or decrement it; the probe
        // accepts anything >= 3. Greedy must land exactly on 3.
        let dims = |n: usize| ScenarioDims {
            nodes: n,
            rules: 0,
            horizon: 1,
        };
        let outcome = greedy(
            40usize,
            dummy_cert(),
            dims(40),
            |&n| vec![(n / 2, dims(n / 2)), (n.saturating_sub(1), dims(n - 1))],
            |&n| if n >= 3 { Some(dummy_cert()) } else { None },
            1000,
        );
        assert_eq!(outcome.scenario, 3);
        assert_eq!(outcome.dims.nodes, 3);
        assert!(outcome.accepted >= 4, "40→20→10→5→4→3");
        assert!(outcome.attempts >= outcome.accepted);
    }

    #[test]
    fn greedy_respects_the_attempt_budget() {
        let dims = |n: usize| ScenarioDims {
            nodes: n,
            rules: 0,
            horizon: 1,
        };
        let outcome = greedy(
            1000usize,
            dummy_cert(),
            dims(1000),
            |&n| vec![(n - 1, dims(n - 1))],
            |&n| if n > 0 { Some(dummy_cert()) } else { None },
            5,
        );
        assert_eq!(outcome.attempts, 5);
        assert_eq!(outcome.scenario, 995);
    }

    #[test]
    fn reverify_rejects_condition_drift() {
        // A certificate whose condition differs from the original must be
        // rejected before any replay happens.
        let cert = dummy_cert();
        struct Dummy;
        impl Protocol for Dummy {
            fn name(&self) -> String {
                "Dummy".into()
            }
            fn device(
                &self,
                _g: &flm_graph::Graph,
                _v: flm_graph::NodeId,
            ) -> Box<dyn flm_sim::Device> {
                Box::new(flm_sim::devices::NaiveMajorityDevice::new())
            }
            fn horizon(&self, _g: &flm_graph::Graph) -> u32 {
                3
            }
        }
        let err = reverify_same_condition(&cert, &Dummy, Condition::Validity).unwrap_err();
        assert!(err.contains("drifted"), "{err}");
    }
}
