//! The paper's consensus problems as executable correctness conditions.
//!
//! Each function checks one problem's conditions over the correct nodes of
//! a recorded behavior and reports the first violation. These checkers are
//! the "required to do so" half of every proof: the refuters in
//! [`crate::refute`] construct correct behaviors of the inadequate graph
//! and feed them here; at least one must fail.

use std::collections::BTreeSet;

use flm_graph::NodeId;
use flm_sim::{Decision, Input, SystemBehavior, Tick};

use crate::certificate::{Condition, Violation};

/// Extracts the Boolean decision of a correct node, reporting
/// [`Condition::Termination`] when absent or mistyped.
fn bool_decision(behavior: &SystemBehavior, v: NodeId, link: usize) -> Result<bool, Violation> {
    match behavior.node(v).decision() {
        Some(Decision::Bool(b)) => Ok(b),
        other => Err(Violation {
            condition: Condition::Termination,
            link,
            evidence: format!("correct node {v} decided {other:?} instead of a Boolean"),
        }),
    }
}

/// Extracts the real decision of a correct node.
fn real_decision(behavior: &SystemBehavior, v: NodeId, link: usize) -> Result<f64, Violation> {
    match behavior.node(v).decision() {
        Some(Decision::Real(r)) => Ok(r),
        other => Err(Violation {
            condition: Condition::Termination,
            link,
            evidence: format!("correct node {v} decided {other:?} instead of a real"),
        }),
    }
}

/// Byzantine agreement (§3): every correct node chooses the same Boolean,
/// and if all correct nodes share an input, that input is chosen.
///
/// # Errors
///
/// Returns the first violated condition with evidence; `link` tags the
/// violation with the chain-behavior index it belongs to.
pub fn byzantine_agreement(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
    link: usize,
) -> Result<(), Violation> {
    let mut first: Option<(NodeId, bool)> = None;
    for &v in correct {
        let d = bool_decision(behavior, v, link)?;
        match first {
            None => first = Some((v, d)),
            Some((w, e)) if e != d => {
                return Err(Violation {
                    condition: Condition::Agreement,
                    link,
                    evidence: format!("{w} chose {} but {v} chose {}", u8::from(e), u8::from(d)),
                })
            }
            _ => {}
        }
    }
    let inputs: BTreeSet<Option<bool>> = correct
        .iter()
        .map(|&v| behavior.node(v).input.as_bool())
        .collect();
    if inputs.len() == 1 {
        if let (Some(common), Some((v, d))) = (inputs.into_iter().next().flatten(), first) {
            if d != common {
                return Err(Violation {
                    condition: Condition::Validity,
                    link,
                    evidence: format!(
                        "all correct inputs are {} but {v} chose {}",
                        u8::from(common),
                        u8::from(d)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Weak agreement (§4): same agreement condition; validity applies only
/// when **all** nodes are correct (`all_correct`), and the *Choice*
/// condition demands a decision in finite time (here: by the horizon).
///
/// # Errors
///
/// Returns the first violated condition with evidence.
pub fn weak_agreement(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
    all_correct: bool,
    link: usize,
) -> Result<(), Violation> {
    let mut first: Option<(NodeId, bool)> = None;
    for &v in correct {
        let d = bool_decision(behavior, v, link)?;
        match first {
            None => first = Some((v, d)),
            Some((w, e)) if e != d => {
                return Err(Violation {
                    condition: Condition::Agreement,
                    link,
                    evidence: format!("{w} chose {} but {v} chose {}", u8::from(e), u8::from(d)),
                })
            }
            _ => {}
        }
    }
    if all_correct {
        let inputs: BTreeSet<Option<bool>> = correct
            .iter()
            .map(|&v| behavior.node(v).input.as_bool())
            .collect();
        if inputs.len() == 1 {
            if let (Some(Some(common)), Some((v, d))) = (inputs.into_iter().next(), first) {
                if d != common {
                    return Err(Violation {
                        condition: Condition::Validity,
                        link,
                        evidence: format!(
                            "all nodes correct with input {} but {v} chose {}",
                            u8::from(common),
                            u8::from(d)
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Byzantine firing squad (§5): correct nodes fire simultaneously or not at
/// all; with all nodes correct, a stimulus means everyone fires and no
/// stimulus means nobody does.
///
/// # Errors
///
/// Returns the first violated condition with evidence.
pub fn firing_squad(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
    all_correct: bool,
    link: usize,
) -> Result<(), Violation> {
    let ticks: Vec<(NodeId, Option<Tick>)> = correct
        .iter()
        .map(|&v| (v, behavior.node(v).fire_tick()))
        .collect();
    for w in ticks.windows(2) {
        let ((v1, t1), (v2, t2)) = (&w[0], &w[1]);
        if t1 != t2 {
            return Err(Violation {
                condition: Condition::Agreement,
                link,
                evidence: format!("{v1} fires at {t1:?} but {v2} fires at {t2:?}"),
            });
        }
    }
    if all_correct {
        let stimulated = correct
            .iter()
            .any(|&v| behavior.node(v).input == Input::Bool(true));
        let fired = ticks.first().map(|(_, t)| t.is_some()).unwrap_or(false);
        if stimulated && !fired {
            return Err(Violation {
                condition: Condition::Validity,
                link,
                evidence: "stimulus occurred at a correct node but nobody fired".into(),
            });
        }
        if !stimulated && fired {
            return Err(Violation {
                condition: Condition::Validity,
                link,
                evidence: "no stimulus occurred yet nodes fired".into(),
            });
        }
    }
    Ok(())
}

/// Simple approximate agreement (§6.1): correct outputs lie within the range
/// of **all** assigned inputs, and their spread is strictly smaller than the
/// input spread (or zero when the inputs coincide).
///
/// # Errors
///
/// Returns the first violated condition with evidence.
pub fn simple_approx(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
    link: usize,
) -> Result<(), Violation> {
    let mut in_lo = f64::MAX;
    let mut in_hi = f64::MIN;
    for v in behavior.graph().nodes() {
        if let Input::Real(r) = behavior.node(v).input {
            in_lo = in_lo.min(r);
            in_hi = in_hi.max(r);
        }
    }
    let mut out_lo = f64::MAX;
    let mut out_hi = f64::MIN;
    for &v in correct {
        let r = real_decision(behavior, v, link)?;
        if r < in_lo || r > in_hi {
            return Err(Violation {
                condition: Condition::Validity,
                link,
                evidence: format!("{v} chose {r} outside the input range [{in_lo}, {in_hi}]"),
            });
        }
        out_lo = out_lo.min(r);
        out_hi = out_hi.max(r);
    }
    let in_spread = in_hi - in_lo;
    let out_spread = out_hi - out_lo;
    let ok = if in_spread == 0.0 {
        out_spread == 0.0
    } else {
        out_spread < in_spread
    };
    if !ok {
        return Err(Violation {
            condition: Condition::Agreement,
            link,
            evidence: format!(
                "output spread {out_spread} is not smaller than input spread {in_spread}"
            ),
        });
    }
    Ok(())
}

/// (ε,δ,γ)-agreement (§6.2): correct inputs span at most δ; correct outputs
/// must be within ε of each other and inside `[r_min − γ, r_max + γ]`.
///
/// # Errors
///
/// Returns the first violated condition with evidence.
///
/// # Panics
///
/// Panics if `correct` is empty or some correct node lacks a real input —
/// the refuters always supply both.
pub fn eps_delta_gamma(
    behavior: &SystemBehavior,
    correct: &BTreeSet<NodeId>,
    eps: f64,
    gamma: f64,
    link: usize,
) -> Result<(), Violation> {
    let inputs: Vec<f64> = correct
        .iter()
        .map(|&v| {
            behavior
                .node(v)
                .input
                .as_real()
                .unwrap_or_else(|| panic!("correct node {v} has no real input"))
        })
        .collect();
    let r_min = inputs.iter().cloned().fold(f64::MAX, f64::min);
    let r_max = inputs.iter().cloned().fold(f64::MIN, f64::max);
    let mut outputs = Vec::with_capacity(correct.len());
    for &v in correct {
        let r = real_decision(behavior, v, link)?;
        if r < r_min - gamma || r > r_max + gamma {
            return Err(Violation {
                condition: Condition::Validity,
                link,
                evidence: format!(
                    "{v} chose {r} outside [{} , {}]",
                    r_min - gamma,
                    r_max + gamma
                ),
            });
        }
        outputs.push((v, r));
    }
    for &(v1, r1) in &outputs {
        for &(v2, r2) in &outputs {
            if (r1 - r2).abs() > eps {
                return Err(Violation {
                    condition: Condition::Agreement,
                    link,
                    evidence: format!(
                        "{v1} chose {r1} and {v2} chose {r2}: {} > ε = {eps}",
                        (r1 - r2).abs()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// A nontrivial clock-synchronization claim (§7): devices assert that with
/// correct hardware clocks drifting between `p` and `q`, logical clocks stay
/// within envelopes `[l, u]` (validity) and, from time `t_prime` on, within
/// `l(q(t)) − l(p(t)) − alpha` of each other (agreement), for some constant
/// `alpha > 0`.
#[derive(Debug, Clone)]
pub struct ClockSyncClaim {
    /// Slow correct hardware clock bound `p` (increasing, invertible).
    pub p: flm_sim::clock::TimeFn,
    /// Fast correct hardware clock bound `q`, with `p(t) ≤ q(t)`.
    pub q: flm_sim::clock::TimeFn,
    /// Non-decreasing lower envelope `l`.
    pub l: flm_sim::clock::TimeFn,
    /// Non-decreasing upper envelope `u`, with `l(t) ≤ u(t)`.
    pub u: flm_sim::clock::TimeFn,
    /// The claimed improvement over trivial synchronization; must be > 0.
    pub alpha: f64,
    /// The claimed stabilization time.
    pub t_prime: f64,
}

impl ClockSyncClaim {
    /// The agreement bound `l(q(t)) − l(p(t)) − α` at time `t`.
    pub fn agreement_bound(&self, t: f64) -> f64 {
        self.l.eval(self.q.eval(t)) - self.l.eval(self.p.eval(t)) - self.alpha
    }

    /// The scaling map `h = p⁻¹ ∘ q` (satisfies `h(t) ≥ t`).
    pub fn h(&self) -> flm_sim::clock::TimeFn {
        self.p.inverse().compose(&self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::devices::ConstantDevice;
    use flm_sim::System;

    fn run_constants(inputs: &[Input]) -> SystemBehavior {
        let g = builders::complete(inputs.len());
        let mut sys = System::new(g);
        for v in sys.graph().nodes() {
            sys.assign(v, Box::new(ConstantDevice::new()), inputs[v.index()]);
        }
        sys.run(2)
    }

    fn all(n: usize) -> BTreeSet<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    #[test]
    fn byzantine_agreement_catches_disagreement_and_validity() {
        let b = run_constants(&[Input::Bool(true), Input::Bool(false), Input::Bool(true)]);
        let viol = byzantine_agreement(&b, &all(3), 0).unwrap_err();
        assert_eq!(viol.condition, Condition::Agreement);
        let b = run_constants(&[Input::Bool(true), Input::Bool(true)]);
        assert!(byzantine_agreement(&b, &all(2), 0).is_ok());
    }

    #[test]
    fn byzantine_agreement_catches_no_decision() {
        let b = run_constants(&[Input::None, Input::None]);
        let viol = byzantine_agreement(&b, &all(2), 3).unwrap_err();
        assert_eq!(viol.condition, Condition::Termination);
        assert_eq!(viol.link, 3);
    }

    #[test]
    fn weak_agreement_validity_only_when_all_correct() {
        let b = run_constants(&[Input::Bool(true), Input::Bool(true)]);
        // Pretend node 1 is faulty: agreement over {0} alone passes even
        // if the value differs from the input.
        let only0: BTreeSet<NodeId> = [NodeId(0)].into();
        assert!(weak_agreement(&b, &only0, false, 0).is_ok());
        // All correct with common input true deciding true: fine.
        assert!(weak_agreement(&b, &all(2), true, 0).is_ok());
    }

    #[test]
    fn simple_approx_checks_range_and_contraction() {
        let b = run_constants(&[Input::Real(0.0), Input::Real(1.0)]);
        // Constant devices echo inputs: spread 1.0 == input spread → violation.
        let viol = simple_approx(&b, &all(2), 0).unwrap_err();
        assert_eq!(viol.condition, Condition::Agreement);
        // Identical inputs: spread 0 → ok.
        let b = run_constants(&[Input::Real(0.5), Input::Real(0.5)]);
        assert!(simple_approx(&b, &all(2), 0).is_ok());
    }

    #[test]
    fn eps_delta_gamma_checks_eps_and_gamma() {
        let b = run_constants(&[Input::Real(0.0), Input::Real(1.0)]);
        // ε = 2 ≥ spread: ok with γ ≥ 0.
        assert!(eps_delta_gamma(&b, &all(2), 2.0, 0.0, 0).is_ok());
        // ε = 0.5 < spread 1.0: agreement violation.
        let viol = eps_delta_gamma(&b, &all(2), 0.5, 0.0, 0).unwrap_err();
        assert_eq!(viol.condition, Condition::Agreement);
    }

    #[test]
    fn firing_squad_checker_covers_all_conditions() {
        use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
        use flm_sim::Tick;

        /// Fires at a fixed tick when stimulated.
        struct FireAt(u32, bool, bool);
        impl Device for FireAt {
            fn name(&self) -> &'static str {
                "FireAt"
            }
            fn init(&mut self, ctx: &NodeCtx) {
                self.1 = ctx.input.as_bool().unwrap_or(false);
            }
            fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
                if self.1 && t.0 >= self.0 {
                    self.2 = true;
                }
                inbox.iter().map(|_| None).collect()
            }
            fn snapshot(&self) -> Vec<u8> {
                if self.2 {
                    snapshot::fire(&[])
                } else {
                    snapshot::undecided(&[])
                }
            }
        }
        let run = |ticks: [Option<u32>; 2], stim: [bool; 2]| {
            let g = builders::path(2);
            let mut sys = System::new(g.clone());
            for v in g.nodes() {
                let at = ticks[v.index()];
                sys.assign(
                    v,
                    Box::new(FireAt(at.unwrap_or(99), false, false)),
                    Input::Bool(stim[v.index()]),
                );
            }
            sys.run(4)
        };
        // Simultaneous firing: ok.
        let b = run([Some(2), Some(2)], [true, true]);
        assert!(firing_squad(&b, &all(2), true, 0).is_ok());
        // Different fire ticks: agreement violation.
        let b = run([Some(1), Some(3)], [true, true]);
        assert_eq!(
            firing_squad(&b, &all(2), true, 0).unwrap_err().condition,
            Condition::Agreement
        );
        // Stimulus but nobody fires: validity (all correct).
        let b = run([None, None], [true, false]);
        assert_eq!(
            firing_squad(&b, &all(2), true, 0).unwrap_err().condition,
            Condition::Validity
        );
        // No stimulus, no fire: ok; and not all correct ⇒ validity waived.
        let b = run([None, None], [false, false]);
        assert!(firing_squad(&b, &all(2), true, 0).is_ok());
        let b = run([Some(1), Some(3)], [true, true]);
        let only0: BTreeSet<NodeId> = [NodeId(0)].into();
        assert!(firing_squad(&b, &only0, false, 0).is_ok());
    }

    #[test]
    fn eps_delta_gamma_gamma_bound_is_checked() {
        let b = run_constants(&[Input::Real(0.0), Input::Real(5.0)]);
        // Outputs echo inputs: 5.0 is outside [0-γ, 0+γ] for the set where
        // only node 0 is correct... both correct: r_max = 5 so validity ok,
        // but ε = 10 passes and ε = 1 fails on agreement.
        assert!(eps_delta_gamma(&b, &all(2), 10.0, 0.5, 0).is_ok());
        assert_eq!(
            eps_delta_gamma(&b, &all(2), 1.0, 0.5, 0)
                .unwrap_err()
                .condition,
            Condition::Agreement
        );
        // Validity: force a γ violation by marking only node 0 correct —
        // then r_min = r_max = 0 and its own echo is fine, so instead mark
        // only node 1 correct with γ tiny and a decision far from its input?
        // Echo devices always satisfy γ ≥ 0 for their own input; the γ check
        // is exercised against real protocols by the refuters.
        let only1: BTreeSet<NodeId> = [NodeId(1)].into();
        assert!(eps_delta_gamma(&b, &only1, 1.0, 0.0, 0).is_ok());
    }

    #[test]
    fn clock_claim_bounds() {
        use flm_sim::clock::TimeFn;
        let claim = ClockSyncClaim {
            p: TimeFn::identity(),
            q: TimeFn::linear(2.0),
            l: TimeFn::identity(),
            u: TimeFn::linear(4.0),
            alpha: 0.5,
            t_prime: 1.0,
        };
        // l(q(t)) - l(p(t)) - α = 2t - t - 0.5
        assert_eq!(claim.agreement_bound(3.0), 2.5);
        assert_eq!(claim.h().eval(3.0), 6.0);
    }
}
