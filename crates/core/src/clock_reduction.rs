//! The footnote-3 collapse for clock synchronization: Theorem 8's general
//! `n ≤ 3f` case.
//!
//! The paper calls the general case "a simple extension": partition the
//! nodes into classes `a`, `b`, `c` of size at most `f` and run the ring
//! argument with classes in place of nodes. In the §7 construction **all
//! nodes of a class share the same hardware clock** (`q·h^{−j}` depends
//! only on the ring position `j`), which is precisely what makes a clock
//! collapse well-defined: a [`CollapsedClockDevice`] owns one hardware
//! clock and simulates its whole class against it — fanning events out to
//! the members, carrying intra-class messages via timers (one hardware unit
//! of delay, exactly the simulator's link semantics), and bundling
//! cross-class messages.
//!
//! [`clock_sync_general`] then reduces the `n ≤ 3f` claim to the triangle
//! and lets [`crate::refute::clock_sync`] finish the job.

use std::collections::BTreeSet;

use flm_graph::covering::quotient;
use flm_graph::{Graph, NodeId};
use flm_sim::clock::{ClockAction, ClockDevice, ClockEvent};
use flm_sim::device::Payload;
use flm_sim::wire::{Reader, Writer};
use flm_sim::ClockProtocol;

use crate::problems::ClockSyncClaim;
use crate::refute::{clock_sync, ClockCertificate, RefuteError};

/// A clock protocol on the quotient graph whose devices simulate whole
/// classes of an inner clock protocol's devices.
pub struct CollapsedClock<P> {
    inner: P,
    base: Graph,
    classes: Vec<BTreeSet<NodeId>>,
    quotient_graph: Graph,
}

impl<P: ClockProtocol> CollapsedClock<P> {
    /// Collapses `inner` (written for `base`) along `classes`.
    ///
    /// # Errors
    ///
    /// Returns the quotient construction's error when `classes` is not a
    /// partition of `base`'s nodes.
    pub fn new(
        inner: P,
        base: &Graph,
        classes: Vec<BTreeSet<NodeId>>,
    ) -> Result<Self, flm_graph::GraphError> {
        let (quotient_graph, _) = quotient(base, &classes)?;
        Ok(CollapsedClock {
            inner,
            base: base.clone(),
            classes,
            quotient_graph,
        })
    }

    /// The quotient graph the collapsed protocol is written for.
    pub fn quotient_graph(&self) -> &Graph {
        &self.quotient_graph
    }
}

impl<P: ClockProtocol> ClockProtocol for CollapsedClock<P> {
    fn name(&self) -> String {
        format!(
            "CollapsedClock({}, {} classes)",
            self.inner.name(),
            self.classes.len()
        )
    }

    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn ClockDevice> {
        assert_eq!(
            g, &self.quotient_graph,
            "collapsed clock devices are written for the quotient graph"
        );
        let members: Vec<NodeId> = self.classes[v.index()].iter().copied().collect();
        let devices: Vec<Box<dyn ClockDevice>> = members
            .iter()
            .map(|&m| self.inner.device(&self.base, m))
            .collect();
        Box::new(CollapsedClockDevice::new(
            self.base.clone(),
            self.classes.clone(),
            v,
            members,
            devices,
        ))
    }
}

/// Reserved timer-id space: ids at or above this belong to the collapse
/// machinery (intra-class deliveries and forwarded member timers).
const TIMER_BASE: u32 = 1 << 16;

/// What a collapse-machinery timer stands for.
enum PendingTimer {
    /// Deliver `payload` to member `mi` on its base port `port`.
    Internal {
        mi: usize,
        port: usize,
        payload: Payload,
    },
    /// Fire member `mi`'s own timer `id`.
    Member { mi: usize, id: u32 },
}

/// One collapsed clock node: a whole class simulated against one clock.
struct CollapsedClockDevice {
    base: Graph,
    class_of: Vec<usize>,
    me: usize,
    members: Vec<NodeId>,
    devices: Vec<Box<dyn ClockDevice>>,
    /// Collapse-machinery timers by id offset from [`TIMER_BASE`].
    pending: Vec<Option<PendingTimer>>,
    /// Outer port → neighbor class.
    port_class: Vec<usize>,
}

impl CollapsedClockDevice {
    fn new(
        base: Graph,
        classes: Vec<BTreeSet<NodeId>>,
        me: NodeId,
        members: Vec<NodeId>,
        devices: Vec<Box<dyn ClockDevice>>,
    ) -> Self {
        let mut class_of = vec![0usize; base.node_count()];
        for (i, class) in classes.iter().enumerate() {
            for &v in class {
                class_of[v.index()] = i;
            }
        }
        CollapsedClockDevice {
            base,
            class_of,
            me: me.index(),
            members,
            devices,
            pending: Vec::new(),
            port_class: Vec::new(),
        }
    }

    fn encode_cross(src: NodeId, dst: NodeId, payload: &[u8]) -> Payload {
        let mut w = Writer::new();
        w.u32(src.0).u32(dst.0).bytes(payload);
        w.finish().into()
    }

    fn decode_cross(payload: &[u8]) -> Option<(NodeId, NodeId, Payload)> {
        let mut r = Reader::new(payload);
        let src = r.u32().ok()?;
        let dst = r.u32().ok()?;
        let body = r.bytes().ok()?;
        Some((NodeId(src), NodeId(dst), body.into()))
    }

    /// Routes one member's actions: intra-class sends become delayed
    /// internal timers, member timers are remapped, cross-class sends are
    /// wrapped and forwarded on the right outer port.
    fn route(&mut self, mi: usize, actions: Vec<ClockAction>) -> Vec<ClockAction> {
        let member = self.members[mi];
        let ports: Vec<NodeId> = self.base.neighbors(member).collect();
        let mut out = Vec::new();
        for action in actions {
            match action {
                ClockAction::Send { port, payload } => {
                    out.extend(self.route_send(mi, ports[port], payload, 1.0));
                }
                ClockAction::SendWithDelay {
                    port,
                    payload,
                    hw_delay,
                } => {
                    out.extend(self.route_send(mi, ports[port], payload, hw_delay));
                }
                ClockAction::SetTimer { id, hw_delay } => {
                    let slot = self.stash(PendingTimer::Member { mi, id });
                    out.push(ClockAction::SetTimer { id: slot, hw_delay });
                }
            }
        }
        out
    }

    fn route_send(
        &mut self,
        mi: usize,
        dst: NodeId,
        payload: Payload,
        hw_delay: f64,
    ) -> Vec<ClockAction> {
        let dst_class = self.class_of[dst.index()];
        if dst_class == self.me {
            // Intra-class: deliver after the link delay via a timer. The
            // destination member's port index for the sender:
            let sender = self.members[mi];
            let dst_mi = self
                .members
                .iter()
                .position(|&m| m == dst)
                .expect("dst_class == me, so dst appears in this class's member list");
            let port =
                self.base.neighbors(dst).position(|w| w == sender).expect(
                    "sender addressed dst over a base edge, so dst lists sender as a neighbor",
                );
            let slot = self.stash(PendingTimer::Internal {
                mi: dst_mi,
                port,
                payload,
            });
            vec![ClockAction::SetTimer { id: slot, hw_delay }]
        } else {
            // Cross-class: wrap with base endpoints and forward. Delay is
            // carried by the outer link (one hw unit) — member-chosen
            // delays shorter than a unit are rounded up to it, which only
            // *strengthens* the bounded-delay side of the argument.
            let outer_port = self
                .port_class
                .iter()
                .position(|&c| c == dst_class)
                .expect("cross-class base edges project to quotient edges by construction");
            let sender = self.members[mi];
            vec![ClockAction::Send {
                port: outer_port,
                payload: Self::encode_cross(sender, dst, &payload),
            }]
        }
    }

    fn stash(&mut self, t: PendingTimer) -> u32 {
        if let Some(free) = self.pending.iter().position(Option::is_none) {
            self.pending[free] = Some(t);
            TIMER_BASE + free as u32
        } else {
            self.pending.push(Some(t));
            TIMER_BASE + (self.pending.len() - 1) as u32
        }
    }
}

impl ClockDevice for CollapsedClockDevice {
    fn name(&self) -> &'static str {
        "CollapsedClock"
    }

    fn init(&mut self, ports: usize) {
        // Outer ports are the quotient node's sorted neighbor classes;
        // reconstruct them from the class ids adjacent to ours.
        let mut neighbor_classes: BTreeSet<usize> = BTreeSet::new();
        for &member in &self.members {
            for w in self.base.neighbors(member) {
                let c = self.class_of[w.index()];
                if c != self.me {
                    neighbor_classes.insert(c);
                }
            }
        }
        self.port_class = neighbor_classes.into_iter().collect();
        assert_eq!(
            self.port_class.len(),
            ports,
            "outer port count must match the quotient degree"
        );
        for (mi, device) in self.devices.iter_mut().enumerate() {
            device.init(self.base.degree(self.members[mi]));
        }
    }

    fn on_event(&mut self, hw: f64, event: ClockEvent) -> Vec<ClockAction> {
        match event {
            ClockEvent::Start => {
                let mut out = Vec::new();
                for mi in 0..self.devices.len() {
                    let actions = self.devices[mi].on_event(hw, ClockEvent::Start);
                    out.extend(self.route(mi, actions));
                }
                out
            }
            ClockEvent::Message { port: _, payload } => {
                let Some((src, dst, body)) = Self::decode_cross(&payload) else {
                    return Vec::new(); // Byzantine garbage from outside
                };
                if src.index() >= self.base.node_count()
                    || dst.index() >= self.base.node_count()
                    || self.class_of[dst.index()] != self.me
                    || !self.base.has_link(src, dst)
                {
                    return Vec::new();
                }
                let Some(mi) = self.members.iter().position(|&m| m == dst) else {
                    return Vec::new();
                };
                let Some(member_port) = self.base.neighbors(dst).position(|w| w == src) else {
                    return Vec::new();
                };
                let actions = self.devices[mi].on_event(
                    hw,
                    ClockEvent::Message {
                        port: member_port,
                        payload: body,
                    },
                );
                self.route(mi, actions)
            }
            ClockEvent::Timer { id } if id >= TIMER_BASE => {
                let slot = (id - TIMER_BASE) as usize;
                let Some(pending) = self.pending.get_mut(slot).and_then(Option::take) else {
                    return Vec::new();
                };
                match pending {
                    PendingTimer::Internal { mi, port, payload } => {
                        let actions =
                            self.devices[mi].on_event(hw, ClockEvent::Message { port, payload });
                        self.route(mi, actions)
                    }
                    PendingTimer::Member { mi, id } => {
                        let actions = self.devices[mi].on_event(hw, ClockEvent::Timer { id });
                        self.route(mi, actions)
                    }
                }
            }
            ClockEvent::Timer { .. } => Vec::new(),
        }
    }

    fn logical(&self, hw: f64) -> f64 {
        // The class's logical clock: its first member's. The agreement and
        // validity conditions quantify over all correct nodes; for the
        // reduction it suffices that each class exposes *a* member's clock
        // (if members within a class diverge, the inner protocol already
        // violates agreement on the base graph).
        self.devices
            .first()
            .map(|d| d.logical(hw))
            .unwrap_or_default()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for d in &self.devices {
            let s = d.snapshot();
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(&s);
        }
        out
    }
}

/// Theorem 8 for general `n ≤ 3f`: collapse the classes (which share
/// hardware clocks in the §7 construction) and refute on the triangle.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `n ≥ 3f + 1`;
/// [`RefuteError::BadGraph`] when the partition does not quotient to the
/// triangle; otherwise see [`clock_sync`].
pub fn clock_sync_general<P: ClockProtocol>(
    protocol: P,
    g: &Graph,
    f: usize,
    claim: &ClockSyncClaim,
) -> Result<(ClockCertificate, CollapsedClock<P>), RefuteError> {
    let classes =
        flm_graph::covering::node_bound_partition(g.node_count(), f).map_err(|e| match e {
            flm_graph::GraphError::BadParameter { reason } => {
                RefuteError::GraphIsAdequate { reason }
            }
            other => RefuteError::Graph(other),
        })?;
    let collapsed = CollapsedClock::new(protocol, g, classes.to_vec())?;
    if collapsed.quotient_graph() != &flm_graph::builders::triangle() {
        return Err(RefuteError::BadGraph {
            reason: "the node-bound partition does not quotient to the triangle".into(),
        });
    }
    let tri = flm_graph::builders::triangle();
    let cert = clock_sync(&collapsed, &tri, 1, claim)?;
    Ok((cert, collapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_protocols::clock_sync::{AveragingClockSync, TrivialClockSync};
    use flm_sim::clock::TimeFn;

    fn claim() -> ClockSyncClaim {
        ClockSyncClaim {
            p: TimeFn::identity(),
            q: TimeFn::linear(2.0),
            l: TimeFn::identity(),
            u: TimeFn::affine(2.0, 8.0),
            alpha: 2.0,
            t_prime: 1.0,
        }
    }

    #[test]
    fn collapsed_trivial_sync_falls_on_k6_f2() {
        let proto = TrivialClockSync {
            l: TimeFn::identity(),
        };
        let (cert, collapsed) =
            clock_sync_general(proto, &builders::complete(6), 2, &claim()).unwrap();
        assert!(cert.k >= 4);
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn collapsed_averaging_sync_falls_on_k5_f2() {
        let proto = AveragingClockSync {
            l: TimeFn::identity(),
            period: 2.0,
        };
        let (cert, collapsed) =
            clock_sync_general(proto, &builders::complete(5), 2, &claim()).unwrap();
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn clock_collapse_declines_adequate_graphs() {
        let proto = TrivialClockSync {
            l: TimeFn::identity(),
        };
        assert!(matches!(
            clock_sync_general(proto, &builders::complete(7), 2, &claim()),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }
}
