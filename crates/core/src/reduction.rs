//! Footnote 3: the collapse reduction from general `n ≤ 3f` to `n = 3`.
//!
//! Given a system and a partition of its communication graph into
//! subgraphs, there is a natural *collapsed* system: each class becomes one
//! node whose device is the (indexed) set of devices of the class, whose
//! node behavior is the class's subsystem behavior, and whose edge behavior
//! bundles all the cross-class edge behaviors. The collapsed devices and
//! behaviors satisfy the Locality and Fault axioms whenever the underlying
//! ones do — so if Byzantine agreement were possible on a graph with
//! `n ≤ 3f`, collapsing a 3-partition with classes of size at most `f`
//! would make it possible on (a subgraph of) the triangle with one fault,
//! contradicting the three-node case of Theorem 1.
//!
//! [`Collapsed`] builds that reduction executably: it wraps a protocol for
//! `G` into a protocol for the quotient graph whose devices each simulate
//! an entire class — including the class's internal links, with the same
//! one-tick delay — and bundle cross-class messages. The refuters can then
//! be pointed at the collapsed protocol on the triangle, giving an
//! *alternative* proof path for every general-case theorem (exercised by
//! the ablation tests and benches).

use std::collections::BTreeSet;

use flm_graph::covering::quotient;
use flm_graph::{Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::wire::{Reader, Writer};
use flm_sim::{Protocol, Tick};

/// A protocol on the quotient graph whose devices simulate whole classes of
/// an inner protocol's devices.
pub struct Collapsed<P> {
    inner: P,
    base: Graph,
    classes: Vec<BTreeSet<NodeId>>,
    quotient_graph: Graph,
}

impl<P: Protocol> Collapsed<P> {
    /// Collapses `inner` (written for `base`) along `classes`.
    ///
    /// # Errors
    ///
    /// Returns the quotient construction's error when `classes` is not a
    /// partition of `base`'s nodes.
    pub fn new(
        inner: P,
        base: &Graph,
        classes: Vec<BTreeSet<NodeId>>,
    ) -> Result<Self, flm_graph::GraphError> {
        let (quotient_graph, _) = quotient(base, &classes)?;
        Ok(Collapsed {
            inner,
            base: base.clone(),
            classes,
            quotient_graph,
        })
    }

    /// The quotient graph the collapsed protocol is written for.
    pub fn quotient_graph(&self) -> &Graph {
        &self.quotient_graph
    }
}

impl<P: Protocol> Protocol for Collapsed<P> {
    fn name(&self) -> String {
        format!(
            "Collapsed({}, {} classes)",
            self.inner.name(),
            self.classes.len()
        )
    }

    /// # Panics
    ///
    /// Panics if `g` differs from the quotient graph.
    fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
        assert_eq!(
            g, &self.quotient_graph,
            "collapsed devices are written for the quotient graph"
        );
        let members: Vec<NodeId> = self.classes[v.index()].iter().copied().collect();
        let inner_devices: Vec<Box<dyn Device>> = members
            .iter()
            .map(|&m| self.inner.device(&self.base, m))
            .collect();
        Box::new(CollapsedDevice::new(
            self.base.clone(),
            self.classes.clone(),
            v,
            members,
            inner_devices,
        ))
    }

    fn horizon(&self, _g: &Graph) -> u32 {
        self.inner.horizon(&self.base)
    }
}

/// One collapsed node: the full subsystem of a class, simulated in place.
struct CollapsedDevice {
    base: Graph,
    class_of: Vec<usize>,
    /// This device's class id.
    me: usize,
    /// This class's member nodes, sorted.
    members: Vec<NodeId>,
    devices: Vec<Box<dyn Device>>,
    /// Internal class messages in flight: (src, dst, payload) sent last tick.
    internal: Vec<(NodeId, NodeId, Option<Payload>)>,
    /// Quotient ports: the neighbor class of each outer port.
    port_class: Vec<usize>,
}

impl CollapsedDevice {
    fn new(
        base: Graph,
        classes: Vec<BTreeSet<NodeId>>,
        me: NodeId,
        members: Vec<NodeId>,
        devices: Vec<Box<dyn Device>>,
    ) -> Self {
        let mut class_of = vec![0usize; base.node_count()];
        for (i, class) in classes.iter().enumerate() {
            for &v in class {
                class_of[v.index()] = i;
            }
        }
        CollapsedDevice {
            base,
            class_of,
            me: me.index(),
            members,
            devices,
            internal: Vec::new(),
            port_class: Vec::new(),
        }
    }

    /// Encodes all cross-class payloads for one neighbor class, keyed by
    /// the base edge they travel on.
    fn bundle(msgs: &[(NodeId, NodeId, Option<Payload>)]) -> Payload {
        let mut w = Writer::new();
        w.u32(msgs.len() as u32);
        for (src, dst, m) in msgs {
            w.u32(src.0).u32(dst.0);
            match m {
                Some(m) => {
                    w.u8(1).bytes(m);
                }
                None => {
                    w.u8(0);
                }
            }
        }
        w.finish().into()
    }

    fn unbundle(payload: &[u8]) -> Vec<(NodeId, NodeId, Option<Payload>)> {
        let mut out = Vec::new();
        let mut r = Reader::new(payload);
        let Ok(count) = r.u32() else { return out };
        for _ in 0..count.min(1 << 16) {
            let (Ok(src), Ok(dst), Ok(tag)) = (r.u32(), r.u32(), r.u8()) else {
                return out;
            };
            let body = match tag {
                1 => match r.bytes() {
                    Ok(b) => Some(b.into()),
                    Err(_) => return out,
                },
                _ => None,
            };
            out.push((NodeId(src), NodeId(dst), body));
        }
        out
    }
}

impl Device for CollapsedDevice {
    fn name(&self) -> &'static str {
        "Collapsed"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.port_class = ctx.ports.iter().map(|p| p.index()).collect();
        for (member, device) in self.members.iter().zip(self.devices.iter_mut()) {
            let inner_ctx = NodeCtx {
                node: *member,
                ports: self.base.neighbors(*member).collect(),
                input: ctx.input,
            };
            device.init(&inner_ctx);
        }
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        // Decode cross-class deliveries addressed to our members.
        let mut deliveries: Vec<(NodeId, NodeId, Option<Payload>)> =
            std::mem::take(&mut self.internal);
        for (port, m) in inbox.iter().enumerate() {
            let Some(m) = m else { continue };
            let from_class = self.port_class[port];
            for (src, dst, body) in Self::unbundle(m) {
                // Validate: src in the claimed class, dst one of ours, and a
                // real base edge. Anything else is Byzantine garbage.
                let valid = src.index() < self.base.node_count()
                    && dst.index() < self.base.node_count()
                    && self.class_of[src.index()] == from_class
                    && self.class_of[dst.index()] == self.me
                    && self.base.has_link(src, dst);
                if valid {
                    deliveries.push((src, dst, body));
                }
            }
        }
        // Step each member with its assembled inbox.
        let mut out_per_class: std::collections::BTreeMap<
            usize,
            Vec<(NodeId, NodeId, Option<Payload>)>,
        > = std::collections::BTreeMap::new();
        let mut next_internal = Vec::new();
        let members = self.members.clone();
        for (mi, member) in members.iter().enumerate() {
            let ports: Vec<NodeId> = self.base.neighbors(*member).collect();
            let inner_inbox: Vec<Option<Payload>> = ports
                .iter()
                .map(|&src| {
                    deliveries
                        .iter()
                        .find(|(s, d, _)| *s == src && *d == *member)
                        .and_then(|(_, _, body)| body.clone())
                })
                .collect();
            let outs = self.devices[mi].step(t, &inner_inbox);
            for (p, body) in outs.into_iter().enumerate() {
                let dst = ports[p];
                let dst_class = self.class_of[dst.index()];
                if dst_class == self.me {
                    next_internal.push((*member, dst, body));
                } else {
                    out_per_class
                        .entry(dst_class)
                        .or_default()
                        .push((*member, dst, body));
                }
            }
        }
        self.internal = next_internal;
        self.port_class
            .iter()
            .map(|class| out_per_class.get(class).map(|msgs| Self::bundle(msgs)))
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        // The class decides when its first member decides; the state digest
        // covers every member's snapshot (subsystem behavior = node
        // behavior, per footnote 3).
        let mut digest = flm_sim::auth::mix64(0xC0_11A9);
        let mut decision = None;
        for d in &self.devices {
            let s = d.snapshot();
            if decision.is_none() {
                decision = snapshot::decision_in(&s);
            }
            for &b in &s {
                digest = flm_sim::auth::mix64(digest ^ u64::from(b));
            }
        }
        let state = digest.to_be_bytes();
        match decision {
            Some(flm_sim::Decision::Bool(b)) => snapshot::decided_bool(b, &state),
            Some(flm_sim::Decision::Real(r)) => snapshot::decided_real(r, &state),
            Some(flm_sim::Decision::Fire) => snapshot::fire(&state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        let devices = self
            .devices
            .iter()
            .map(|d| d.fork())
            .collect::<Option<Vec<_>>>()?;
        Some(Box::new(CollapsedDevice {
            base: self.base.clone(),
            class_of: self.class_of.clone(),
            me: self.me,
            members: self.members.clone(),
            devices,
            internal: self.internal.clone(),
            port_class: self.port_class.clone(),
        }))
    }
}

/// Collapses a protocol on `g` along the canonical node-bound partition
/// (classes of size ≤ `f`), yielding a triangle protocol when the quotient
/// is complete.
///
/// # Errors
///
/// Propagates partition/quotient errors; in particular fails when
/// `n > 3f` (the graph is node-adequate) via
/// [`flm_graph::covering::node_bound_partition`].
pub fn collapse_for_node_bound<P: Protocol>(
    inner: P,
    g: &Graph,
    f: usize,
) -> Result<Collapsed<P>, flm_graph::GraphError> {
    let classes = flm_graph::covering::node_bound_partition(g.node_count(), f)?;
    Collapsed::new(inner, g, classes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_protocols::Eig;
    use flm_sim::{Decision, Input, System};

    #[test]
    fn collapsed_eig_preserves_honest_decisions() {
        // EIG on K6 with f = 2, collapsed to the triangle: with everyone
        // honest and a common input, the collapsed nodes decide that input.
        let g = builders::complete(6);
        let collapsed = collapse_for_node_bound(Eig::new(2), &g, 2).unwrap();
        let q = collapsed.quotient_graph().clone();
        assert_eq!(q, builders::triangle());
        for input in [false, true] {
            let mut sys = System::new(q.clone());
            for v in q.nodes() {
                sys.assign(v, collapsed.device(&q, v), Input::Bool(input));
            }
            let b = sys.run(collapsed.horizon(&q));
            for v in q.nodes() {
                assert_eq!(b.node(v).decision(), Some(Decision::Bool(input)), "{v}");
            }
        }
    }

    #[test]
    fn collapsed_protocol_is_refuted_on_the_triangle() {
        // Footnote 3 executed: EIG solves BA on K6 with f = 2 — so its
        // collapse to the triangle must be refutable with f = 1, and it is.
        let g = builders::complete(6);
        let collapsed = collapse_for_node_bound(Eig::new(2), &g, 2).unwrap();
        let tri = collapsed.quotient_graph().clone();
        let cert = crate::refute::ba_nodes(&collapsed, &tri, 1).unwrap();
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn collapse_rejects_adequate_graphs() {
        let g = builders::complete(7);
        assert!(collapse_for_node_bound(Eig::new(2), &g, 2).is_err());
    }

    #[test]
    fn bundles_round_trip() {
        let msgs = vec![
            (NodeId(0), NodeId(3), Some(vec![1, 2].into())),
            (NodeId(1), NodeId(4), None),
        ];
        let decoded = CollapsedDevice::unbundle(&CollapsedDevice::bundle(&msgs));
        assert_eq!(decoded, msgs);
    }
}
