//! Executable FLM impossibility proofs.
//!
//! This crate is the paper: *Fischer, Lynch & Merritt, "Easy Impossibility
//! Proofs for Distributed Consensus Problems"* (PODC 1985), as running code.
//!
//! The paper proves that five consensus problems — Byzantine agreement, weak
//! agreement, the Byzantine firing squad, approximate agreement, and clock
//! synchronization — are unsolvable in **inadequate** communication graphs:
//! graphs with fewer than `3f+1` nodes or vertex connectivity below `2f+1`.
//! Each proof is *constructive*: assume devices solve the problem in an
//! inadequate graph `G`, install those very devices in a covering graph `S`
//! of `G`, run `S` once, and use the **Locality** and **Fault** axioms to
//! transplant scenarios of `S` into correct behaviors of `G` whose required
//! outputs contradict one another.
//!
//! Because the construction is effective, it can be *executed*: give any
//! concrete protocol to a refuter in [`refute`] and it returns a
//! [`certificate::Certificate`] — the chain of correct behaviors of `G`, the
//! scenario matches justifying each link (the axioms, checked, not assumed),
//! and the concrete condition the protocol violates.
//!
//! | Paper | Here |
//! |---|---|
//! | Theorem 1 (BA, 3f+1 nodes)      | [`refute::ba_nodes`] |
//! | Theorem 1 (BA, 2f+1 connectivity)| [`refute::ba_connectivity`] |
//! | Theorem 2 (weak agreement)      | [`refute::weak_agreement`] |
//! | Theorem 4 (firing squad)        | [`refute::firing_squad`] |
//! | Theorem 5 (simple approximate)  | [`refute::simple_approx`] |
//! | Theorem 6 ((ε,δ,γ)-agreement)   | [`refute::eps_delta_gamma`] |
//! | Theorem 8 + Cor. 12–15 (clocks) | [`refute::clock_sync`] |
//! | §2 model axioms                 | [`axioms`] |
//! | Footnote 3 (collapse reduction) | [`reduction`] (+ [`clock_reduction`] for §7) |
//!
//! # Example: defeating any protocol on the triangle
//!
//! ```
//! use flm_core::refute;
//! use flm_graph::builders;
//! use flm_sim::{Protocol, Device, Input, NodeCtx, Tick};
//! use flm_sim::devices::NaiveMajorityDevice;
//! use flm_graph::{Graph, NodeId};
//!
//! struct Naive;
//! impl Protocol for Naive {
//!     fn name(&self) -> String { "NaiveMajority".into() }
//!     fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
//!         Box::new(NaiveMajorityDevice::new())
//!     }
//!     fn horizon(&self, _g: &Graph) -> u32 { 3 }
//! }
//!
//! // Three nodes cannot tolerate one Byzantine fault: the refuter finds a
//! // concrete correct behavior of the triangle that the protocol mishandles.
//! let cert = refute::ba_nodes(&Naive, &builders::triangle(), 1).unwrap();
//! assert!(cert.verify(&Naive).is_ok());
//! println!("{cert}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod certificate;
pub mod clock_reduction;
pub mod codec;
pub mod problems;
pub mod profile;
pub mod reduction;
pub mod refute;
mod runkey;
pub mod shrink;

pub use certificate::{Certificate, ChainLink, Condition, Violation};
pub use codec::CertDecodeError;
pub use refute::{current_policy, with_policy, RefuteError};
