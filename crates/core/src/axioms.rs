//! Executable checks of the model axioms (§2).
//!
//! The paper's proofs rest on a small set of axioms; for the results to
//! apply to a concrete model one "interprets the definitions in the
//! particular model and demonstrates that the axioms hold". This module
//! does the demonstration *by execution*: each check constructs the two
//! systems an axiom quantifies over, runs them, and compares behaviors.
//! The property-based suites run these against randomized protocols and
//! graphs.

use std::collections::BTreeSet;

use flm_graph::{Graph, NodeId};
use flm_sim::behavior::EdgeBehavior;
use flm_sim::clock::{ClockDevice, ClockSystem, TimeFn};
use flm_sim::replay::ReplayDevice;
use flm_sim::{Input, Protocol, System};

/// **Locality axiom.** Runs `protocol` on `g`, then rebuilds a second
/// system in which every node *outside* `u_set` is replaced by a
/// masquerading replay of its recorded outedge traces, and checks that the
/// scenario of `u_set` is identical in both behaviors.
///
/// # Errors
///
/// Returns a description of the first divergence (which would indicate a
/// nondeterministic device or a simulator bug).
pub fn check_locality(
    protocol: &dyn Protocol,
    g: &Graph,
    inputs: &dyn Fn(NodeId) -> Input,
    u_set: &BTreeSet<NodeId>,
    horizon: u32,
) -> Result<(), String> {
    let mut sys = System::new(g.clone());
    for v in g.nodes() {
        sys.assign(v, protocol.device(g, v), inputs(v));
    }
    let original = sys.try_run(horizon).map_err(|e| e.to_string())?;

    let mut replayed = System::new(g.clone());
    for v in g.nodes() {
        if u_set.contains(&v) {
            replayed.assign(v, protocol.device(g, v), inputs(v));
        } else {
            let traces: Vec<EdgeBehavior> = g
                .neighbors(v)
                .map(|w| original.edge(v, w).clone())
                .collect();
            replayed.assign(v, Box::new(ReplayDevice::masquerade(traces)), Input::None);
        }
    }
    let rerun = replayed.try_run(horizon).map_err(|e| e.to_string())?;

    let identity: std::collections::BTreeMap<NodeId, NodeId> =
        u_set.iter().map(|&v| (v, v)).collect();
    original
        .scenario(u_set)
        .matches(&rerun.scenario(u_set), &identity)
}

/// **Fault axiom.** Checks that for arbitrary edge traces `E₁,…,E_d`, the
/// device `F(E₁,…,E_d)` installed at a node with `d` outedges exhibits
/// exactly those traces, regardless of what its neighbors run.
///
/// # Errors
///
/// Returns a description of the first trace that failed to reproduce.
pub fn check_fault_axiom(
    g: &Graph,
    node: NodeId,
    traces: Vec<EdgeBehavior>,
    neighbor_protocol: &dyn Protocol,
    horizon: u32,
) -> Result<(), String> {
    let mut sys = System::new(g.clone());
    sys.assign(
        node,
        Box::new(ReplayDevice::masquerade(traces.clone())),
        Input::None,
    );
    for v in g.nodes() {
        if v != node {
            sys.assign(v, neighbor_protocol.device(g, v), Input::Bool(v.0 % 2 == 0));
        }
    }
    let behavior = sys.try_run(horizon).map_err(|e| e.to_string())?;
    for (port, w) in g.neighbors(node).enumerate() {
        let got = behavior.edge(node, w);
        let want = &traces[port];
        for t in 0..horizon as usize {
            let g_t = got.get(t).cloned().flatten();
            let w_t = want.get(t).cloned().flatten();
            if g_t != w_t {
                return Err(format!(
                    "edge ({node}, {w}) diverges from the prescribed trace at tick {t}"
                ));
            }
        }
    }
    Ok(())
}

/// **Bounded-Delay Locality axiom** (δ = 1 tick). Runs `protocol` twice
/// with inputs differing on some set `d_set`, and checks that every node's
/// snapshots agree through tick `dist(v, d_set) − 1`: news travels at most
/// one hop per tick.
///
/// # Errors
///
/// Returns a description of the first node whose state changed faster than
/// the delay bound allows.
pub fn check_bounded_delay(
    protocol: &dyn Protocol,
    g: &Graph,
    inputs_a: &dyn Fn(NodeId) -> Input,
    inputs_b: &dyn Fn(NodeId) -> Input,
    horizon: u32,
) -> Result<(), String> {
    let run = |inputs: &dyn Fn(NodeId) -> Input| {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(v, protocol.device(g, v), inputs(v));
        }
        sys.try_run(horizon).map_err(|e| e.to_string())
    };
    let a = run(inputs_a)?;
    let b = run(inputs_b)?;
    let differing: BTreeSet<NodeId> = g.nodes().filter(|&v| inputs_a(v) != inputs_b(v)).collect();
    if differing.is_empty() {
        return Ok(());
    }
    // BFS distances from the differing set.
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue: std::collections::VecDeque<NodeId> = differing.iter().copied().collect();
    for &v in &differing {
        dist[v.index()] = 0;
    }
    while let Some(v) = queue.pop_front() {
        for w in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                queue.push_back(w);
            }
        }
    }
    for v in g.nodes() {
        let d = dist[v.index()];
        if d == 0 || d == usize::MAX {
            continue;
        }
        let through = d.min(horizon as usize);
        for t in 0..through {
            if a.node(v).snaps[t] != b.node(v).snaps[t] {
                return Err(format!(
                    "{v} at distance {d} from the differing inputs diverged at tick {t} < {d}"
                ));
            }
        }
    }
    Ok(())
}

/// **Scaling axiom.** Runs a clock system twice — once with clocks `D_v`,
/// once with `D_v ∘ h` — and checks that every message's send/arrival times
/// scale by `h⁻¹` with identical payloads, and that logical clock probes at
/// corresponding times agree.
///
/// # Errors
///
/// Returns a description of the first event that failed to scale.
#[allow(clippy::too_many_arguments)]
pub fn check_scaling(
    g: &Graph,
    devices: &dyn Fn(NodeId) -> Box<dyn ClockDevice>,
    clocks: &dyn Fn(NodeId) -> TimeFn,
    h: &TimeFn,
    horizon: f64,
    probe: f64,
) -> Result<(), String> {
    let run = |scaled: bool| {
        let mut sys = ClockSystem::new(g.clone());
        for v in g.nodes() {
            let clock = if scaled {
                clocks(v).compose(h)
            } else {
                clocks(v)
            };
            sys.assign(v, devices(v), clock);
        }
        let (hz, pb) = if scaled {
            (h.inverse().eval(horizon), h.inverse().eval(probe))
        } else {
            (horizon, probe)
        };
        sys.run(hz, &[pb])
    };
    let plain = run(false);
    let scaled = run(true);
    let tol = |x: f64| 1e-9 * x.abs().max(1.0);
    for (edge, recs) in &plain.sends {
        let srecs = scaled.sends.get(edge).map_or(&[][..], |v| v.as_slice());
        if recs.len() != srecs.len() {
            return Err(format!(
                "edge {edge:?}: {} sends plain vs {} scaled",
                recs.len(),
                srecs.len()
            ));
        }
        for (r, s) in recs.iter().zip(srecs) {
            if (h.eval(s.sent) - r.sent).abs() > tol(r.sent)
                || (h.eval(s.arrived) - r.arrived).abs() > tol(r.arrived)
                || r.payload != s.payload
            {
                return Err(format!(
                    "edge {edge:?}: send ({}, {}) does not scale to ({}, {})",
                    s.sent, s.arrived, r.sent, r.arrived
                ));
            }
        }
    }
    for v in g.nodes() {
        let (a, b) = (plain.logical_at(0, v), scaled.logical_at(0, v));
        if (a - b).abs() > tol(a) {
            return Err(format!("{v}: logical {b} scaled vs {a} plain at the probe"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::devices::TableDevice;
    use flm_sim::Device;

    struct Table(u64);
    impl Protocol for Table {
        fn name(&self) -> String {
            format!("Table({})", self.0)
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(TableDevice::new(self.0, 4))
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            6
        }
    }

    #[test]
    fn locality_holds_for_table_devices() {
        let g = builders::complete(4);
        let u: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        check_locality(&Table(7), &g, &|v| Input::Bool(v.0 == 0), &u, 6).unwrap();
    }

    #[test]
    fn fault_axiom_holds_for_arbitrary_traces() {
        let g = builders::triangle();
        let traces = vec![
            vec![Some(vec![1, 2].into()), None, Some(vec![3].into())],
            vec![None, Some(vec![9].into()), None],
        ];
        check_fault_axiom(&g, NodeId(0), traces, &Table(3), 3).unwrap();
    }

    #[test]
    fn bounded_delay_holds_on_a_path() {
        // Inputs differ only at node 0 of a 5-path; node 4 must be unchanged
        // through tick 3.
        let g = builders::path(5);
        check_bounded_delay(
            &Table(11),
            &g,
            &|_| Input::Bool(false),
            &|v| Input::Bool(v.0 == 0),
            5,
        )
        .unwrap();
    }

    #[test]
    fn scaling_holds_for_averaging_devices() {
        use flm_protocols::clock_sync::AveragingSync;
        let g = builders::triangle();
        check_scaling(
            &g,
            &|_| Box::new(AveragingSync::new(TimeFn::identity(), 1.5)),
            &|v| TimeFn::linear(1.0 + f64::from(v.0) * 0.5),
            &TimeFn::linear(2.0),
            10.0,
            8.0,
        )
        .unwrap();
    }
}
