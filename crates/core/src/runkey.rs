//! Canonical cache keys for the run-reuse engine.
//!
//! A deterministic run is a pure function of its assembly: the graph, which
//! device sits at each node (named via the protocol registry contract — see
//! `flm_sim::runcache`), the wiring, the inputs, the horizon, and the run
//! policy. Each builder below serializes exactly that assembly through
//! [`flm_sim::wire::Writer`] — the same canonical encoding the FLMC
//! certificate format uses — so two call sites that would execute the same
//! run produce byte-identical keys and share one execution.
//!
//! The "link" key is deliberately shared between
//! [`crate::refute::transplant`] (which records a run into a chain link) and
//! `Certificate::rebuild` (which re-executes it during verification): a
//! refute-then-verify sequence in one process runs each transplanted system
//! once.

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};
use flm_sim::behavior::{encode_edge_behavior, EdgeBehavior};
use flm_sim::runcache::RunKey;
use flm_sim::wire::Writer;
use flm_sim::{Input, RunPolicy};

use crate::problems::ClockSyncClaim;

/// Key for [`crate::refute::run_cover`]: the covering system's full assembly.
pub(crate) fn cover_key(
    protocol_name: &str,
    cov: &Covering,
    inputs: &dyn Fn(NodeId) -> Input,
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&cov.base().to_bytes());
    w.bytes(&cov.cover().to_bytes());
    for s in cov.cover().nodes() {
        let g = cov.project(s);
        w.u32(g.0);
        // The lifted wiring: which cover node backs each port (sorted base
        // neighbors — the port order System::assign_lifted uses).
        for t in cov.base().neighbors(g) {
            w.u32(cov.lift_neighbor(s, t).0);
        }
        inputs(s).encode(&mut w);
    }
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("cover", w.finish())
}

/// Key for a transplanted base run: correct nodes (protocol devices, their
/// cover inputs) plus masquerading replayers. Built identically by
/// [`crate::refute::transplant`] and `Certificate::rebuild`.
pub(crate) fn link_key(
    protocol_name: &str,
    base: &Graph,
    correct: &[NodeId],
    masquerade: &[(NodeId, Vec<EdgeBehavior>)],
    inputs: &[Input],
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&base.to_bytes());
    w.u32(correct.len() as u32);
    for v in correct {
        w.u32(v.0);
    }
    w.u32(masquerade.len() as u32);
    for (v, traces) in masquerade {
        w.u32(v.0);
        w.u32(traces.len() as u32);
        for trace in traces {
            encode_edge_behavior(trace, &mut w);
        }
    }
    w.u32(inputs.len() as u32);
    for &input in inputs {
        input.encode(&mut w);
    }
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("link", w.finish())
}

/// Key for [`crate::refute`]'s all-correct ring runs: every node honest with
/// one uniform input.
pub(crate) fn all_correct_key(
    protocol_name: &str,
    g: &Graph,
    input: Input,
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    input.encode(&mut w);
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("allcorrect", w.finish())
}

/// Key for the clock refuters' shifted-ring runs: the claim's rate envelope
/// determines every hardware clock, so (graph, claim, k, t_eval) pins the
/// whole continuous execution.
pub(crate) fn clock_ring_key(
    protocol_name: &str,
    g: &Graph,
    claim: &ClockSyncClaim,
    k: usize,
    t_eval: f64,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    claim.p.encode(&mut w);
    claim.q.encode(&mut w);
    claim.l.encode(&mut w);
    claim.u.encode(&mut w);
    w.f64(claim.alpha);
    w.f64(claim.t_prime);
    w.u32(k as u32);
    w.f64(t_eval);
    RunKey::new("clockring", w.finish())
}
