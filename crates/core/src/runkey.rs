//! Canonical cache keys for the run-reuse engine.
//!
//! A deterministic run is a pure function of its assembly: the graph, which
//! device sits at each node (named via the protocol registry contract — see
//! `flm_sim::runcache`), the wiring, the inputs, the horizon, and the run
//! policy. Each builder below serializes exactly that assembly through
//! [`flm_sim::wire::Writer`] — the same canonical encoding the FLMC
//! certificate format uses — so two call sites that would execute the same
//! run produce byte-identical keys and share one execution.
//!
//! The "link" key is deliberately shared between
//! [`crate::refute::transplant`] (which records a run into a chain link) and
//! `Certificate::rebuild` (which re-executes it during verification): a
//! refute-then-verify sequence in one process runs each transplanted system
//! once.

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};
use flm_sim::behavior::{encode_edge_behavior, EdgeBehavior};
use flm_sim::prefixcache::PrefixSchedule;
use flm_sim::runcache::RunKey;
use flm_sim::wire::Writer;
use flm_sim::{Input, RunPolicy};

use crate::problems::ClockSyncClaim;

/// Key for [`crate::refute::run_cover`]: the covering system's full assembly.
pub(crate) fn cover_key(
    protocol_name: &str,
    cov: &Covering,
    inputs: &dyn Fn(NodeId) -> Input,
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&cov.base().to_bytes());
    w.bytes(&cov.cover().to_bytes());
    for s in cov.cover().nodes() {
        let g = cov.project(s);
        w.u32(g.0);
        // The lifted wiring: which cover node backs each port (sorted base
        // neighbors — the port order System::assign_lifted uses).
        for t in cov.base().neighbors(g) {
            w.u32(cov.lift_neighbor(s, t).0);
        }
        inputs(s).encode(&mut w);
    }
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("cover", w.finish())
}

/// Prefix schedule for [`cover_key`] runs: the same assembly minus the
/// horizon (so runs of different lengths share tick snapshots), with no
/// scripted nodes and hence no per-tick bytes.
pub(crate) fn cover_schedule(
    protocol_name: &str,
    cov: &Covering,
    inputs: &dyn Fn(NodeId) -> Input,
    policy: &RunPolicy,
) -> PrefixSchedule {
    let mut w = Writer::new();
    w.str("cover");
    w.str(protocol_name);
    w.bytes(&cov.base().to_bytes());
    w.bytes(&cov.cover().to_bytes());
    for s in cov.cover().nodes() {
        let g = cov.project(s);
        w.u32(g.0);
        for t in cov.base().neighbors(g) {
            w.u32(cov.lift_neighbor(s, t).0);
        }
        inputs(s).encode(&mut w);
    }
    policy.encode(&mut w);
    PrefixSchedule::new(w.finish(), Vec::new())
}

/// Key for a transplanted base run: correct nodes (protocol devices, their
/// cover inputs) plus masquerading replayers. Built identically by
/// [`crate::refute::transplant`] and `Certificate::rebuild`.
pub(crate) fn link_key(
    protocol_name: &str,
    base: &Graph,
    correct: &[NodeId],
    masquerade: &[(NodeId, Vec<EdgeBehavior>)],
    inputs: &[Input],
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&base.to_bytes());
    w.u32(correct.len() as u32);
    for v in correct {
        w.u32(v.0);
    }
    w.u32(masquerade.len() as u32);
    for (v, traces) in masquerade {
        w.u32(v.0);
        w.u32(traces.len() as u32);
        for trace in traces {
            encode_edge_behavior(trace, &mut w);
        }
    }
    w.u32(inputs.len() as u32);
    for &input in inputs {
        input.encode(&mut w);
    }
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("link", w.finish())
}

/// Prefix schedule for [`link_key`] runs. The static part is the link's
/// whole assembly minus the horizon and the masquerade trace *contents*
/// (the trace shape — which nodes replay, how many ports, each trace's
/// length — stays static); `tick_bytes[t]` pins every replayer's output at
/// tick `t` in masquerade-then-port order. Two links diverging only in
/// their traces' final ticks therefore share every earlier tick snapshot.
pub(crate) fn link_schedule(
    protocol_name: &str,
    base: &Graph,
    correct: &[NodeId],
    masquerade: &[(NodeId, Vec<EdgeBehavior>)],
    inputs: &[Input],
    policy: &RunPolicy,
) -> PrefixSchedule {
    let mut w = Writer::new();
    w.str("link");
    w.str(protocol_name);
    w.bytes(&base.to_bytes());
    w.u32(correct.len() as u32);
    for v in correct {
        w.u32(v.0);
    }
    w.u32(masquerade.len() as u32);
    let mut ticks = 0;
    for (v, traces) in masquerade {
        w.u32(v.0);
        w.u32(traces.len() as u32);
        for trace in traces {
            w.u32(trace.len() as u32);
            ticks = ticks.max(trace.len());
        }
    }
    w.u32(inputs.len() as u32);
    for &input in inputs {
        input.encode(&mut w);
    }
    policy.encode(&mut w);
    let scripted: Vec<NodeId> = masquerade.iter().map(|(v, _)| *v).collect();
    let mut schedule = PrefixSchedule::new(w.finish(), scripted);
    for t in 0..ticks {
        let mut tw = Writer::new();
        for (_, traces) in masquerade {
            for trace in traces {
                match trace.get(t).and_then(Option::as_ref) {
                    None => {
                        tw.u8(0);
                    }
                    Some(p) => {
                        tw.u8(1).bytes(p);
                    }
                }
            }
        }
        schedule.push_tick(tw.finish());
    }
    schedule
}

/// Key for [`crate::refute`]'s all-correct ring runs: every node honest with
/// one uniform input.
pub(crate) fn all_correct_key(
    protocol_name: &str,
    g: &Graph,
    input: Input,
    horizon: u32,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    input.encode(&mut w);
    w.u32(horizon);
    policy.encode(&mut w);
    RunKey::new("allcorrect", w.finish())
}

/// Prefix schedule for [`all_correct_key`] runs: assembly minus horizon, no
/// scripted nodes.
pub(crate) fn all_correct_schedule(
    protocol_name: &str,
    g: &Graph,
    input: Input,
    policy: &RunPolicy,
) -> PrefixSchedule {
    let mut w = Writer::new();
    w.str("allcorrect");
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    input.encode(&mut w);
    policy.encode(&mut w);
    PrefixSchedule::new(w.finish(), Vec::new())
}

/// Key for one of the FLP refuter's strategy probes ([`crate::refute::flp_async`]):
/// the assembly plus the strategy that will pick the schedule. Lives in the
/// dedicated `"async"` domain so an asynchronous run can never alias a
/// synchronous one, and carries a mode tag distinguishing it from
/// [`async_replay_key`] entries for the same assembly.
pub(crate) fn async_probe_key(
    protocol_name: &str,
    g: &Graph,
    inputs: &[Input],
    strategy: &flm_sim::async_sched::Strategy,
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.u8(0); // mode: recorded probe
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    w.u32(inputs.len() as u32);
    for &input in inputs {
        input.encode(&mut w);
    }
    strategy.encode(&mut w);
    policy.encode(&mut w);
    RunKey::new("async", w.finish())
}

/// Key for an [`crate::refute::AsyncCertificate`] schedule replay: the
/// assembly plus the explicit delivery sequence. Same `"async"` domain as
/// [`async_probe_key`], different mode tag.
pub(crate) fn async_replay_key(
    protocol_name: &str,
    g: &Graph,
    inputs: &[Input],
    schedule: &[u32],
    policy: &RunPolicy,
) -> RunKey {
    let mut w = Writer::new();
    w.u8(1); // mode: schedule replay
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    w.u32(inputs.len() as u32);
    for &input in inputs {
        input.encode(&mut w);
    }
    w.u32(schedule.len() as u32);
    for &e in schedule {
        w.u32(e);
    }
    policy.encode(&mut w);
    RunKey::new("async", w.finish())
}

/// Key for the clock refuters' shifted-ring runs: the claim's rate envelope
/// determines every hardware clock, so (graph, claim, k, t_eval) pins the
/// whole continuous execution.
pub(crate) fn clock_ring_key(
    protocol_name: &str,
    g: &Graph,
    claim: &ClockSyncClaim,
    k: usize,
    t_eval: f64,
) -> RunKey {
    let mut w = Writer::new();
    w.str(protocol_name);
    w.bytes(&g.to_bytes());
    claim.p.encode(&mut w);
    claim.q.encode(&mut w);
    claim.l.encode(&mut w);
    claim.u.encode(&mut w);
    w.f64(claim.alpha);
    w.f64(claim.t_prime);
    w.u32(k as u32);
    w.f64(t_eval);
    RunKey::new("clockring", w.finish())
}
