//! Theorem 8 and Corollaries 12–15: nontrivial clock synchronization is
//! impossible in inadequate graphs — under the Scaling axiom.
//!
//! The best synchronization achievable in an inadequate graph needs no
//! communication at all: run every logical clock at the lower envelope,
//! `C(E(t)) = l(D(t))`, for agreement `l(q(t)) − l(p(t))`. A *nontrivial*
//! claim improves this by a constant α > 0 from some time `t′` on; the
//! refuter defeats every such claim.
//!
//! Construction (§7): unroll the triangle into a ring of `k+2` nodes where
//! node `j`'s hardware clock is `q ∘ h^{−j}` with `h = p⁻¹ ∘ q`. Each
//! adjacent pair `(i, i+1)`, after scaling time by `hⁱ`, is a pair of
//! correct nodes with legal clocks `q` and `p` (Lemma 9) — so the claim's
//! agreement and validity conditions apply to the *measured* logical values
//! of the single ring run. Lemma 11's induction shows the values must climb
//! by at least α per step, overshooting the upper envelope for
//! `k > (u(q(t′)) − l(p(t′)))/α` — so some scenario's condition fails, and
//! that failure is the counterexample.

use std::fmt;

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};
use flm_sim::clock::{ClockBehavior, ClockReplayDevice, ClockSystem, TimeFn};
use flm_sim::{ClockProtocol, Payload};

use crate::certificate::{Condition, VerifyError};
use crate::problems::ClockSyncClaim;
use crate::refute::RefuteError;

/// A counterexample to a nontrivial clock-synchronization claim.
#[derive(Debug, Clone)]
pub struct ClockCertificate {
    /// Name of the refuted protocol.
    pub protocol: String,
    /// The refuted claim.
    pub claim: ClockSyncClaim,
    /// The ring length parameter (`k+2` nodes).
    pub k: usize,
    /// The evaluation time `t″ = h^k(t′)`.
    pub t_eval: f64,
    /// Measured logical clock values of the ring nodes at `t″`.
    pub logical: Vec<f64>,
    /// Index `i` of the violated scaled scenario `S_i ∘ hⁱ`.
    pub scenario: usize,
    /// Which condition failed there.
    pub condition: Condition,
    /// The violated inequality with its measured numbers.
    pub evidence: String,
}

impl fmt::Display for ClockCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "COUNTEREXAMPLE — Theorem 8 (clock synchronization), protocol {}",
            self.protocol
        )?;
        writeln!(
            f,
            "  ring of {} nodes, clocks q∘h^-j; evaluated at t″ = {:.6}",
            self.k + 2,
            self.t_eval
        )?;
        writeln!(
            f,
            "  scaled scenario S_{} ∘ h^{} is a correct triangle behavior, yet:",
            self.scenario, self.scenario
        )?;
        write!(f, "  {} violated: {}", self.condition, self.evidence)
    }
}

/// Builds the ring system (triangle devices, clocks `q∘h^{−j}`) and runs it
/// to `t_eval`, probing logical clocks there.
///
/// Memoized: the refuter and [`ClockCertificate::verify`] invoke the ring
/// with identical parameters, so an in-process refute-then-verify sequence
/// runs the continuous simulation once.
fn run_ring(
    protocol: &dyn ClockProtocol,
    g: &Graph,
    claim: &ClockSyncClaim,
    k: usize,
    t_eval: f64,
) -> Result<std::sync::Arc<ClockBehavior>, RefuteError> {
    crate::profile::span("clock-ring", || {
        let key = crate::runkey::clock_ring_key(&protocol.name(), g, claim, k, t_eval);
        flm_sim::runcache::memoize_clock(&key, || {
            let m = k.div_ceil(3);
            let cov = Covering::cyclic_cover(3, m)?;
            let mut sys = ClockSystem::new(cov.cover().clone());
            let h_inv = claim.h().inverse();
            for j in 0..(k + 2) {
                let clock = claim.q.compose(&h_inv.iterate(j));
                let s = NodeId(j as u32);
                sys.assign_lifted(&cov, s, protocol.device(g, cov.project(s)), clock);
            }
            Ok(sys.run(t_eval * (1.0 + 1e-9) + 1e-9, &[t_eval]))
        })
    })
}

/// Theorem 8: refutes any nontrivial clock-synchronization claim on the
/// triangle with one fault.
///
/// # Errors
///
/// [`RefuteError::BadGraph`] unless `g` is the triangle, `f = 1`, and the
/// claim is well-formed (`α > 0`, `p ≤ q`, `l ≤ u` at sampled times);
/// [`RefuteError::Unrefuted`] if no condition fails (impossible under the
/// Scaling axiom).
pub fn clock_sync(
    protocol: &dyn ClockProtocol,
    g: &Graph,
    f: usize,
    claim: &ClockSyncClaim,
) -> Result<ClockCertificate, RefuteError> {
    if g.node_count() != 3 || g.links().len() != 3 || f != 1 {
        return Err(RefuteError::BadGraph {
            reason: "the clock refuter addresses the triangle with f = 1".into(),
        });
    }
    if claim.alpha <= 0.0 {
        return Err(RefuteError::BadGraph {
            reason: format!("a nontrivial claim needs α > 0, got {}", claim.alpha),
        });
    }
    for t in [claim.t_prime, 2.0 * claim.t_prime + 1.0] {
        if claim.p.eval(t) > claim.q.eval(t) + 1e-12 {
            return Err(RefuteError::BadGraph {
                reason: format!("p(t) must not exceed q(t); fails at t = {t}"),
            });
        }
        if claim.l.eval(t) > claim.u.eval(t) + 1e-12 {
            return Err(RefuteError::BadGraph {
                reason: format!("l(t) must not exceed u(t); fails at t = {t}"),
            });
        }
    }

    // Smallest k ≥ 2 with (k+2) % 3 == 0 and l(p(t′)) + kα > u(q(t′)).
    let t_prime = claim.t_prime;
    let floor = claim.l.eval(claim.p.eval(t_prime));
    let ceiling = claim.u.eval(claim.q.eval(t_prime));
    let mut k = 4usize; // first k ≥ 2 with (k+2) divisible by 3 is 4
    while floor + (k as f64) * claim.alpha <= ceiling {
        k += 3;
        if k > 3_000 {
            return Err(RefuteError::BadGraph {
                reason: format!(
                    "k exceeds 3000 before l(p(t′)) + kα > u(q(t′)) \
                     (α = {} too small against envelope gap {})",
                    claim.alpha,
                    ceiling - floor
                ),
            });
        }
    }

    let h = claim.h();
    let t_eval = h.iterate(k).eval(t_prime);
    let behavior = run_ring(protocol, g, claim, k, t_eval)?;
    let logical: Vec<f64> = (0..(k + 2))
        .map(|j| behavior.logical_at(0, NodeId(j as u32)))
        .collect();

    // Evaluate the chain: scenario S_i ∘ hⁱ at scaled time τᵢ = h^{−i}(t″).
    let h_inv = h.inverse();
    for i in 0..=k {
        let tau = h_inv.iterate(i).eval(t_eval);
        let lo = claim.l.eval(claim.p.eval(tau));
        let hi = claim.u.eval(claim.q.eval(tau));
        for (who, j) in [("node i", i), ("node i+1", i + 1)] {
            let c = logical[j];
            if c < lo - 1e-9 || c > hi + 1e-9 {
                return Ok(ClockCertificate {
                    protocol: protocol.name(),
                    claim: claim.clone(),
                    k,
                    t_eval,
                    logical,
                    scenario: i,
                    condition: Condition::Validity,
                    evidence: format!(
                        "{who} (ring node {j}) has C = {c:.6} outside the envelope \
                         [l(p(τ)), u(q(τ))] = [{lo:.6}, {hi:.6}] at scaled time τ = {tau:.6}"
                    ),
                });
            }
        }
        let bound = claim.agreement_bound(tau);
        let skew = (logical[i + 1] - logical[i]).abs();
        if skew >= bound - 1e-9 {
            return Ok(ClockCertificate {
                protocol: protocol.name(),
                claim: claim.clone(),
                k,
                t_eval,
                logical,
                scenario: i,
                condition: Condition::Agreement,
                evidence: format!(
                    "|C_{} − C_{}| = {skew:.6} is not below the claimed bound \
                     l(q(τ)) − l(p(τ)) − α = {bound:.6} at scaled time τ = {tau:.6}",
                    i + 1,
                    i
                ),
            });
        }
    }
    Err(RefuteError::Unrefuted {
        reason: format!(
            "all {} scaled scenarios satisfied the claim, contradicting Lemma 11 \
             (l(p(t′)) + kα = {} > u(q(t′)) = {})",
            k + 1,
            floor + (k as f64) * claim.alpha,
            ceiling
        ),
    })
}

impl ClockCertificate {
    /// Independently verifies the certificate:
    ///
    /// 1. re-runs the ring deterministically and re-checks the violated
    ///    inequality;
    /// 2. re-enacts the violated scaled scenario as an honest triangle run —
    ///    two correct devices with legal clocks `q` and `p`, plus a faulty
    ///    node replaying the ring's border messages at `hⁱ`-scaled times —
    ///    and confirms the logical clock readings reproduce (Lemma 9 and
    ///    the Scaling axiom, checked).
    ///
    /// # Errors
    ///
    /// [`VerifyError::NotReproduced`] when either re-execution diverges.
    pub fn verify(&self, protocol: &dyn ClockProtocol) -> Result<(), VerifyError> {
        let g = flm_graph::builders::triangle();
        let behavior = run_ring(protocol, &g, &self.claim, self.k, self.t_eval).map_err(|e| {
            VerifyError::Malformed {
                reason: format!("ring re-run failed: {e}"),
            }
        })?;
        for (j, &c) in self.logical.iter().enumerate() {
            let again = behavior.logical_at(0, NodeId(j as u32));
            if (again - c).abs() > 1e-9 * c.abs().max(1.0) {
                return Err(VerifyError::NotReproduced {
                    reason: format!("ring node {j}: logical {again} vs recorded {c}"),
                });
            }
        }

        // Re-enact scenario S_i ∘ hⁱ on the triangle.
        let i = self.scenario;
        let h = self.claim.h();
        let h_inv = h.inverse();
        let scale = h_inv.iterate(i); // maps ring time to scenario time
        let tau = scale.eval(self.t_eval);
        let ring_len = self.k + 2;
        let (bi, bj) = (NodeId((i % 3) as u32), NodeId(((i + 1) % 3) as u32));
        let bf = NodeId((3 - (bi.0 + bj.0) % 3) % 3); // the remaining node... compute properly below
        let bf = flm_graph::builders::triangle()
            .nodes()
            .find(|&v| v != bi && v != bj)
            .unwrap_or(bf);

        // Border messages: ring edges (i−1 → i) and (i+2 → i+1), times
        // scaled by h^{−i}.
        let prev = NodeId(((i + ring_len - 1) % ring_len) as u32);
        let next = NodeId(((i + 2) % ring_len) as u32);
        let into_i: Vec<(f64, Payload)> = behavior
            .edge_sends(prev, NodeId(i as u32))
            .iter()
            .filter(|r| scale.eval(r.arrived) <= tau + 1e-9)
            .map(|r| (scale.eval(r.arrived), r.payload.clone()))
            .collect();
        let into_j: Vec<(f64, Payload)> = behavior
            .edge_sends(next, NodeId((i + 1) as u32))
            .iter()
            .filter(|r| scale.eval(r.arrived) <= tau + 1e-9)
            .map(|r| (scale.eval(r.arrived), r.payload.clone()))
            .collect();

        // The faulty node's hardware clock: fast enough to hit the earliest
        // arrival (clocks of faulty nodes are unconstrained).
        let earliest = into_i
            .iter()
            .chain(&into_j)
            .map(|(t, _)| *t)
            .fold(f64::MAX, f64::min);
        let rate = if earliest == f64::MAX {
            1.0
        } else {
            (2.0 / earliest).max(1.0)
        };
        let f_clock = TimeFn::linear(rate);
        // Port order at bf = sorted neighbors; build arrival lists per port.
        let mut arrivals: Vec<Vec<(f64, Payload)>> = vec![Vec::new(); 2];
        let neighbors: Vec<NodeId> = g.neighbors(bf).collect();
        for (port, &t) in neighbors.iter().enumerate() {
            if t == bi {
                arrivals[port] = into_i.clone();
            } else if t == bj {
                arrivals[port] = into_j.clone();
            }
        }

        let mut sys = ClockSystem::new(g.clone());
        sys.assign(bi, protocol.device(&g, bi), self.claim.q.clone());
        sys.assign(bj, protocol.device(&g, bj), self.claim.p.clone());
        sys.assign(
            bf,
            Box::new(ClockReplayDevice::for_arrivals(&f_clock, &arrivals)),
            f_clock.clone(),
        );
        let tri = sys.run(tau * (1.0 + 1e-9) + 1e-9, &[tau]);
        for (node, ring_idx) in [(bi, i), (bj, i + 1)] {
            let got = tri.logical_at(0, node);
            let want = self.logical[ring_idx];
            if (got - want).abs() > 1e-6 * want.abs().max(1.0) {
                return Err(VerifyError::NotReproduced {
                    reason: format!(
                        "scaled scenario: triangle {node} reads {got} but ring node \
                         {ring_idx} read {want}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Corollary 13: with `p(t) = t`, `q(t) = rt`, `l(t) = at + b`, no devices
/// synchronize a constant closer than `art − at`. Refutes the claim of
/// improving by `alpha` (any positive constant).
///
/// # Errors
///
/// See [`clock_sync`].
pub fn corollary_13(
    protocol: &dyn ClockProtocol,
    r: f64,
    a: f64,
    b: f64,
    u: TimeFn,
    alpha: f64,
    t_prime: f64,
) -> Result<ClockCertificate, RefuteError> {
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(r),
        l: TimeFn::affine(a, b),
        u,
        alpha,
        t_prime,
    };
    clock_sync(protocol, &flm_graph::builders::triangle(), 1, &claim)
}

/// Corollary 14: with `p(t) = t`, `q(t) = t + c`, `l(t) = at + b`, no
/// devices synchronize a constant closer than `ac`.
///
/// # Errors
///
/// See [`clock_sync`].
pub fn corollary_14(
    protocol: &dyn ClockProtocol,
    c: f64,
    a: f64,
    b: f64,
    u: TimeFn,
    alpha: f64,
    t_prime: f64,
) -> Result<ClockCertificate, RefuteError> {
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::affine(1.0, c),
        l: TimeFn::affine(a, b),
        u,
        alpha,
        t_prime,
    };
    clock_sync(protocol, &flm_graph::builders::triangle(), 1, &claim)
}

/// Corollary 15: with `p(t) = t`, `q(t) = rt`, `l(t) = log₂(1 + t)`, no
/// devices synchronize a constant closer than `log₂(r)` (asymptotically).
///
/// # Errors
///
/// See [`clock_sync`].
pub fn corollary_15(
    protocol: &dyn ClockProtocol,
    r: f64,
    u: TimeFn,
    alpha: f64,
    t_prime: f64,
) -> Result<ClockCertificate, RefuteError> {
    let claim = ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(r),
        l: TimeFn::Log2,
        u,
        alpha,
        t_prime,
    };
    clock_sync(protocol, &flm_graph::builders::triangle(), 1, &claim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_protocols::clock_sync::{AveragingClockSync, TrivialClockSync};

    fn claim(alpha: f64) -> ClockSyncClaim {
        ClockSyncClaim {
            p: TimeFn::identity(),
            q: TimeFn::linear(2.0),
            l: TimeFn::identity(),
            u: TimeFn::affine(2.0, 8.0),
            alpha,
            t_prime: 1.0,
        }
    }

    #[test]
    fn trivial_sync_cannot_claim_any_alpha() {
        let proto = TrivialClockSync {
            l: TimeFn::identity(),
        };
        let cert = clock_sync(&proto, &builders::triangle(), 1, &claim(2.0)).unwrap();
        assert!(cert.k >= 4);
        cert.verify(&proto).unwrap();
    }

    #[test]
    fn averaging_sync_cannot_claim_any_alpha() {
        let proto = AveragingClockSync {
            l: TimeFn::identity(),
            period: 2.0,
        };
        let cert = clock_sync(&proto, &builders::triangle(), 1, &claim(2.5)).unwrap();
        cert.verify(&proto).unwrap();
    }

    #[test]
    fn refuter_validates_claims() {
        let proto = TrivialClockSync {
            l: TimeFn::identity(),
        };
        assert!(matches!(
            clock_sync(&proto, &builders::triangle(), 1, &claim(0.0)),
            Err(RefuteError::BadGraph { .. })
        ));
        assert!(matches!(
            clock_sync(&proto, &builders::complete(4), 1, &claim(1.0)),
            Err(RefuteError::BadGraph { .. })
        ));
    }

    #[test]
    fn corollaries_refute_the_trivial_device() {
        let proto = TrivialClockSync {
            l: TimeFn::affine(1.0, 0.0),
        };
        let c13 = corollary_13(&proto, 2.0, 1.0, 0.0, TimeFn::affine(2.0, 8.0), 2.0, 1.0);
        assert!(c13.is_ok(), "{c13:?}");
        let proto_l = TrivialClockSync {
            l: TimeFn::affine(0.5, 0.0),
        };
        let c14 = corollary_14(&proto_l, 3.0, 0.5, 0.0, TimeFn::affine(1.0, 6.0), 1.0, 1.0);
        assert!(c14.is_ok(), "{c14:?}");
        let proto_log = TrivialClockSync { l: TimeFn::Log2 };
        let c15 = corollary_15(&proto_log, 2.0, TimeFn::affine(1.0, 4.0), 0.9, 1.0);
        assert!(c15.is_ok(), "{c15:?}");
    }
}
