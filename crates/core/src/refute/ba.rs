//! Theorem 1: Byzantine agreement is impossible in inadequate graphs.
//!
//! Two refuters, one per half of the bound:
//!
//! * [`ba_nodes`] — the `3f+1` node bound (§3.1). The triangle's hexagon
//!   cover, generalized: partition the nodes into classes `a`, `b`, `c` of
//!   size at most `f`, take two copies, and cross the `a`–`c` links. Inputs
//!   0 on copy 0, 1 on copy 1. The chain `E₁, E₂, E₃` walks around the
//!   cover: validity pins `E₁` to 0 and `E₃` to 1, while `E₂`'s agreement
//!   bridges them — a contradiction.
//! * [`ba_connectivity`] — the `2f+1` connectivity bound (§3.2). Split a
//!   minimum vertex cut into halves `b`, `d` of size at most `f`; classes
//!   `a`, `c` are the separated sides. Two copies with the `a`–`b` links
//!   crossed give the 8-ring generalization, and the same three-link chain
//!   applies with `d`, `b`, `d` faulty in turn.

use std::collections::BTreeSet;

use flm_graph::covering::Covering;
use flm_graph::{connectivity, Graph, NodeId};
use flm_sim::{Input, Protocol};

use crate::certificate::{Certificate, Theorem, Violation};
use crate::problems;
use crate::refute::{partition_with_crossing_link, run_cover, transplant, RefuteError};

/// Offsets a class into copy 0 or copy 1 of a crossed double cover.
fn copy_of(class: &BTreeSet<NodeId>, copy: usize, n: usize) -> impl Iterator<Item = NodeId> + '_ {
    let off = (copy * n) as u32;
    class.iter().map(move |v| NodeId(v.0 + off))
}

/// Runs the three-link chain shared by both Theorem 1 refuters.
///
/// `scenarios` lists, per chain behavior, the cover-node set whose scenario
/// is transplanted; `faulty_input` the input assigned to the masquerading
/// nodes. The first violated Byzantine-agreement condition becomes the
/// certificate.
fn chain_certificate(
    protocol: &dyn Protocol,
    cov: &Covering,
    theorem: Theorem,
    covering_desc: String,
    f: usize,
    inputs: &dyn Fn(NodeId) -> Input,
    scenarios: Vec<BTreeSet<NodeId>>,
) -> Result<Certificate, RefuteError> {
    let horizon = protocol.horizon(cov.base());
    // Captured once at entry: `with_policy` is thread-local, and the
    // transplants below fan out to pool workers that never see this
    // thread's scope.
    let policy = super::current_policy();
    let cover_behavior = run_cover(protocol, cov, inputs, horizon, &policy)?;

    // The chain links are independent re-executions against the same cover
    // behavior: fan them out (the adaptive mapper inlines when the base runs
    // are too small to amortize thread dispatch), then fold the results in
    // input order so the certificate (first error, first violated link) is
    // byte-identical to the sequential scan.
    let cost_hint = super::run_cost_hint_ns(cov.base().node_count(), horizon);
    let transplants = flm_par::par_map_adaptive(scenarios, cost_hint, |u_set| {
        transplant(
            protocol,
            cov,
            &cover_behavior,
            &u_set,
            Input::None,
            horizon,
            f,
            &policy,
        )
    });
    let mut chain = Vec::new();
    let mut violation: Option<Violation> = None;
    for (i, result) in transplants.into_iter().enumerate() {
        let (link, behavior, correct) = result?;
        if violation.is_none() {
            violation = problems::byzantine_agreement(&behavior, &correct, i).err();
        }
        chain.push(link);
    }
    let violation = violation.ok_or_else(|| RefuteError::Unrefuted {
        reason: "all three chain behaviors satisfied agreement and validity, \
                 which the covering argument proves impossible"
            .into(),
    })?;
    Ok(Certificate {
        theorem,
        protocol: protocol.name(),
        base: cov.base().clone(),
        f,
        covering: covering_desc,
        chain,
        policy,
        violation,
    })
}

/// Theorem 1, node bound: refutes any Byzantine-agreement protocol on a
/// graph with `n ≤ 3f` nodes.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `n ≥ 3f + 1`;
/// [`RefuteError::ModelViolation`] when the protocol's devices are
/// nondeterministic or otherwise break the model.
pub fn ba_nodes(protocol: &dyn Protocol, g: &Graph, f: usize) -> Result<Certificate, RefuteError> {
    let n = g.node_count();
    let [a, b, c] = partition_with_crossing_link(g, f)?;
    let cov = crate::profile::span("build-covering", || {
        Covering::double_cover_crossing(g, &a, &c)
    })?;
    let inputs = move |s: NodeId| Input::Bool(s.index() >= n);
    // The hexagon walk: (b₀ c₀) with a faulty, (c₀ a₁) with b faulty,
    // (a₁ b₁) with c faulty.
    let u1: BTreeSet<NodeId> = copy_of(&b, 0, n).chain(copy_of(&c, 0, n)).collect();
    let u2: BTreeSet<NodeId> = copy_of(&c, 0, n).chain(copy_of(&a, 1, n)).collect();
    let u3: BTreeSet<NodeId> = copy_of(&a, 1, n).chain(copy_of(&b, 1, n)).collect();
    chain_certificate(
        protocol,
        &cov,
        Theorem::BaNodes,
        format!(
            "double cover of {n}-node graph crossing a–c links; classes a={a:?} b={b:?} c={c:?}"
        ),
        f,
        &inputs,
        vec![u1, u2, u3],
    )
}

/// The reusable apparatus of the §3.2 connectivity construction: the
/// crossed double cover over a split vertex cut, the copy/class input rule,
/// and the three scenario node sets of the chain. Shared by the Byzantine
/// and approximate-agreement connectivity refuters.
pub(crate) struct ConnectivityPlan {
    /// The crossed double cover.
    pub cov: Covering,
    /// Boolean input rule per cover node (`a`,`d`: 0 on copy 0; `b`,`c`:
    /// 0 on copy 1).
    pub inputs: std::rc::Rc<dyn Fn(NodeId) -> Input>,
    /// The three scenario sets `(a₀b₁c₁)`, `(c₁d₁a₁)`, `(a₁b₀c₀)`.
    pub scenarios: Vec<BTreeSet<NodeId>>,
    /// Human-readable description for certificates.
    pub description: String,
}

/// The four §3.2 classes of a cut-based construction: the separated side
/// `a`, the cut halves `b` and `d` (each of size ≤ `f`, with `b` touching
/// `a`), and the remainder `c`. Shared by every connectivity-bound refuter.
pub(crate) struct CutClasses {
    pub a: BTreeSet<NodeId>,
    pub b: BTreeSet<NodeId>,
    pub c: BTreeSet<NodeId>,
    pub d: BTreeSet<NodeId>,
    pub kappa: usize,
}

/// Computes [`CutClasses`] for a connected graph with `κ(G) ≤ 2f`.
pub(crate) fn cut_classes(g: &Graph, f: usize) -> Result<CutClasses, RefuteError> {
    let n = g.node_count();
    if n < 3 {
        return Err(RefuteError::BadGraph {
            reason: format!("need at least 3 nodes, got {n}"),
        });
    }
    if !g.is_connected() {
        return Err(RefuteError::BadGraph {
            reason: "graph is disconnected".into(),
        });
    }
    let kappa = connectivity::vertex_connectivity(g);
    if f == 0 || kappa > 2 * f {
        return Err(RefuteError::GraphIsAdequate {
            reason: format!("connectivity {kappa} ≥ 2f+1 = {}", 2 * f + 1),
        });
    }
    let Some((cut, s, _t)) = connectivity::min_vertex_cut(g) else {
        return Err(RefuteError::BadGraph {
            reason: "complete graph has no vertex cut; use the node-bound refuter".into(),
        });
    };
    // Classes: a = the separated component of s, c = the rest, and the cut
    // split into b and d of size ≤ f, with b guaranteed to touch a.
    let (rest, order) = g.remove_nodes(&cut);
    let comps = rest.components();
    // `order` lists exactly the nodes kept by `remove_nodes`; `s` is kept
    // because `min_vertex_cut` never puts its witness endpoints in the cut.
    let pos_of = |x: NodeId| {
        order
            .iter()
            .position(|&v| v == x)
            .expect("node kept by remove_nodes")
    };
    let comp_a = comps
        .iter()
        .find(|comp| comp.contains(&NodeId(pos_of(s) as u32)))
        .ok_or_else(|| RefuteError::BadGraph {
            reason: format!("cut witness {s} not found in any component of the cut graph"),
        })?;
    let a: BTreeSet<NodeId> = comp_a.iter().map(|&i| order[i.index()]).collect();
    let c: BTreeSet<NodeId> = g
        .nodes()
        .filter(|v| !cut.contains(v) && !a.contains(v))
        .collect();
    debug_assert!(!c.is_empty());
    // Put a neighbor of `a` into `b` first so the crossing has a link.
    let a_neighbors: BTreeSet<NodeId> = a
        .iter()
        .flat_map(|&v| g.neighbors(v))
        .filter(|w| cut.contains(w))
        .collect();
    let mut ordered_cut: Vec<NodeId> = a_neighbors.iter().copied().collect();
    ordered_cut.extend(cut.iter().filter(|v| !a_neighbors.contains(v)));
    let half = cut.len().div_ceil(2).min(f.max(1));
    let b: BTreeSet<NodeId> = ordered_cut.iter().take(half).copied().collect();
    let d: BTreeSet<NodeId> = ordered_cut.iter().skip(half).copied().collect();
    debug_assert!(b.len() <= f && d.len() <= f);
    Ok(CutClasses { a, b, c, d, kappa })
}

/// Builds the §3.2 apparatus for a connected graph with `κ(G) ≤ 2f`.
pub(crate) fn connectivity_plan(g: &Graph, f: usize) -> Result<ConnectivityPlan, RefuteError> {
    let n = g.node_count();
    let CutClasses { a, b, c, d, kappa } = cut_classes(g, f)?;

    let cov = crate::profile::span("build-covering", || {
        Covering::double_cover_crossing(g, &a, &b)
    })?;
    // Inputs: a₀=0, b₀=1, c₀=1, d₀=0 and the complement on copy 1.
    let (a2, b2, c2, d2) = (a.clone(), b.clone(), c.clone(), d.clone());
    let inputs = move |s: NodeId| {
        let (base, copy1) = (NodeId(s.0 % n as u32), s.index() >= n);
        let zero_on_copy0 = a2.contains(&base) || d2.contains(&base);
        debug_assert!(
            zero_on_copy0 || b2.contains(&base) || c2.contains(&base),
            "classes partition the nodes"
        );
        Input::Bool(zero_on_copy0 == copy1) // a,d: 0 on copy 0; b,c: 0 on copy 1
    };
    // The 8-ring walk: (a₀ b₁ c₁) with d faulty, (c₁ d₁ a₁) with b faulty,
    // (a₁ b₀ c₀) with d faulty.
    let u1: BTreeSet<NodeId> = copy_of(&a, 0, n)
        .chain(copy_of(&b, 1, n))
        .chain(copy_of(&c, 1, n))
        .collect();
    let u2: BTreeSet<NodeId> = copy_of(&c, 1, n)
        .chain(copy_of(&d, 1, n))
        .chain(copy_of(&a, 1, n))
        .collect();
    let u3: BTreeSet<NodeId> = copy_of(&a, 1, n)
        .chain(copy_of(&b, 0, n))
        .chain(copy_of(&c, 0, n))
        .collect();
    Ok(ConnectivityPlan {
        cov,
        inputs: std::rc::Rc::new(inputs),
        scenarios: vec![u1, u2, u3],
        description: format!(
            "double cover of {n}-node graph (κ={kappa}) crossing a–b links; \
             a={a:?} b={b:?} c={c:?} d={d:?}"
        ),
    })
}

/// Theorem 1, connectivity bound: refutes any Byzantine-agreement protocol
/// on a connected graph with vertex connectivity at most `2f`.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `κ(G) ≥ 2f + 1`;
/// [`RefuteError::BadGraph`] for complete or disconnected graphs (use
/// [`ba_nodes`] for small complete graphs).
pub fn ba_connectivity(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let plan = connectivity_plan(g, f)?;
    let inputs = plan.inputs.clone();
    chain_certificate(
        protocol,
        &plan.cov,
        Theorem::BaConnectivity,
        plan.description,
        f,
        &move |s| inputs(s),
        plan.scenarios,
    )
}

/// Dispatching refuter for Byzantine agreement: applies the node bound when
/// `n ≤ 3f`, otherwise the connectivity bound when `κ ≤ 2f`.
///
/// ```
/// use flm_core::refute;
/// use flm_graph::{builders, Graph, NodeId};
/// use flm_sim::{devices::NaiveMajorityDevice, Device, Protocol};
///
/// struct Naive;
/// impl Protocol for Naive {
///     fn name(&self) -> String { "Naive".into() }
///     fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
///         Box::new(NaiveMajorityDevice::new())
///     }
///     fn horizon(&self, _g: &Graph) -> u32 { 3 }
/// }
///
/// // C5 is inadequate by connectivity (κ = 2 < 3); the dispatcher picks
/// // the right bound and the certificate re-executes.
/// let cert = refute::byzantine(&Naive, &builders::cycle(5), 1)?;
/// assert!(cert.verify(&Naive).is_ok());
/// # Ok::<(), flm_core::RefuteError>(())
/// ```
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when neither bound applies — exactly
/// when `flm-protocols` can solve the problem on `g`.
pub fn byzantine(protocol: &dyn Protocol, g: &Graph, f: usize) -> Result<Certificate, RefuteError> {
    match ba_nodes(protocol, g, f) {
        Err(RefuteError::GraphIsAdequate { .. }) => ba_connectivity(protocol, g, f),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::devices::{ConstantDevice, NaiveMajorityDevice, TableDevice};
    use flm_sim::Device;

    struct Zoo(u32);
    impl Protocol for Zoo {
        fn name(&self) -> String {
            format!("zoo#{}", self.0)
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            match self.0 {
                0 => Box::new(ConstantDevice::new()),
                1 => Box::new(NaiveMajorityDevice::new()),
                // Same seed at every node: covering-fiber copies must agree.
                s => Box::new(TableDevice::new(u64::from(s) * 31, 3)),
            }
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            6
        }
    }

    #[test]
    fn every_zoo_protocol_is_refuted_on_the_triangle() {
        let g = builders::triangle();
        for i in 0..8 {
            let proto = Zoo(i);
            let cert = ba_nodes(&proto, &g, 1).unwrap_or_else(|e| panic!("zoo#{i}: {e}"));
            assert!(cert.chain.len() == 3);
            assert!(cert.chain.iter().all(|l| l.scenario_matched));
            cert.verify(&proto)
                .unwrap_or_else(|e| panic!("zoo#{i} verify: {e}"));
        }
    }

    #[test]
    fn node_bound_refutes_on_k6_with_f2() {
        let proto = Zoo(1);
        let cert = ba_nodes(&proto, &builders::complete(6), 2).unwrap();
        assert_eq!(cert.f, 2);
        cert.verify(&proto).unwrap();
    }

    #[test]
    fn node_bound_declines_adequate_graphs() {
        assert!(matches!(
            ba_nodes(&Zoo(1), &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }

    #[test]
    fn connectivity_bound_refutes_on_cycle4() {
        let proto = Zoo(1);
        let cert = ba_connectivity(&proto, &builders::cycle(4), 1).unwrap();
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&proto).unwrap();
    }

    #[test]
    fn connectivity_bound_refutes_zoo_on_larger_thin_graphs() {
        // A 6-cycle has κ = 2 ≤ 2f for f = 1 even though n = 6 ≥ 4.
        let g = builders::cycle(6);
        for i in 0..6 {
            let proto = Zoo(i);
            let cert = ba_connectivity(&proto, &g, 1).unwrap_or_else(|e| panic!("zoo#{i}: {e}"));
            cert.verify(&proto).unwrap();
        }
    }

    #[test]
    fn connectivity_bound_declines_adequate_graphs() {
        assert!(matches!(
            ba_connectivity(&Zoo(1), &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }

    #[test]
    fn dispatcher_picks_the_right_bound() {
        let tri = byzantine(&Zoo(1), &builders::triangle(), 1).unwrap();
        assert_eq!(tri.theorem, Theorem::BaNodes);
        let cyc = byzantine(&Zoo(1), &builders::cycle(6), 1).unwrap();
        assert_eq!(cyc.theorem, Theorem::BaConnectivity);
        assert!(matches!(
            byzantine(&Zoo(1), &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }
}
