//! Theorems 2 and 4: weak agreement and the Byzantine firing squad are
//! impossible in inadequate graphs — given a positive lower bound on
//! information propagation (the Bounded-Delay Locality axiom; the simulator
//! enforces δ = 1 tick per hop structurally).
//!
//! Both proofs unroll the triangle into a ring of `4k` nodes, half with
//! input (or stimulus) 1 and half with 0. Every adjacent pair of ring nodes
//! is, by the Fault axiom, a pair of correct nodes in some behavior of the
//! triangle, so agreement must hold around the entire ring. But Lemma 3 —
//! news travels at most one hop per tick — forces nodes deep inside the
//! 0-region to behave exactly like the all-0 triangle run (and the deep
//! 1-region like the all-1 run) long enough to decide. The decisions cannot
//! be simultaneously all-equal and different at the two deep points, so
//! some adjacent pair disagrees — and that pair is the counterexample.
//!
//! These refuters operate on the triangle with `f = 1`; larger inadequate
//! systems reduce to it by the footnote-3 collapse ([`crate::reduction`]).

use std::collections::BTreeSet;

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};
use flm_sim::{Decision, Input, Protocol, RunPolicy, System, Tick};

use crate::certificate::{Certificate, ChainLink, Condition, Theorem, Violation};
use crate::refute::{run_cost_hint_ns, run_cover, transplant, RefuteError};

/// Requires the triangle with `f = 1`.
fn require_triangle(g: &Graph, f: usize) -> Result<(), RefuteError> {
    if g.node_count() != 3 || g.links().len() != 3 || f != 1 {
        return Err(RefuteError::BadGraph {
            reason: "the ring refuters address the triangle with f = 1; collapse larger \
                     systems with flm_core::reduction first"
                .into(),
        });
    }
    Ok(())
}

/// Runs the all-correct behavior with every input `b` (contained) and
/// returns the chain link, the behavior, and the effective correct set:
/// misbehaving devices are degraded to Byzantine-faulty when the budget
/// `f` allows, so the validity pins quantify only over the nodes that
/// actually upheld their contract.
fn all_correct_run(
    protocol: &dyn Protocol,
    g: &Graph,
    input: Input,
    horizon: u32,
    f: usize,
    policy: &RunPolicy,
) -> AllCorrectRun {
    let key = crate::runkey::all_correct_key(&protocol.name(), g, input, horizon, policy);
    let schedule = crate::runkey::all_correct_schedule(&protocol.name(), g, input, policy);
    let behavior = flm_sim::prefixcache::memoize_prefixed(
        &key,
        &schedule,
        horizon,
        policy,
        || {
            let mut sys = System::new(g.clone());
            for v in g.nodes() {
                sys.assign(v, protocol.device(g, v), input);
            }
            Ok(sys)
        },
        |e| RefuteError::ModelViolation {
            reason: format!("all-correct run failed: {e}"),
        },
    )?;
    let degraded = behavior.misbehaving_nodes();
    if degraded.len() > f || degraded.len() == g.node_count() {
        return Err(RefuteError::Misbehavior {
            reason: format!(
                "{} of {} devices misbehaved in the all-correct run (budget f = {f})",
                degraded.len(),
                g.node_count()
            ),
            incidents: behavior.misbehavior().to_vec(),
        });
    }
    let effective: BTreeSet<NodeId> = g.nodes().filter(|v| !degraded.contains(v)).collect();
    let link = ChainLink {
        correct: g.nodes().collect(),
        masquerade: Vec::new(),
        inputs: vec![input; g.node_count()],
        scenario_matched: true,
        decisions: behavior.decisions(),
        horizon,
        misbehavior: behavior.misbehavior().to_vec(),
        degraded: degraded.into_iter().collect(),
    };
    Ok((link, behavior, effective))
}

type AllCorrectRun = Result<
    (
        ChainLink,
        std::sync::Arc<flm_sim::SystemBehavior>,
        BTreeSet<NodeId>,
    ),
    RefuteError,
>;

/// Runs both validity-pin executions concurrently and hands the results
/// back in input order. Call sites consume `[0]` before `[1]`, so errors
/// and early-exit certificates surface exactly as in the sequential code.
/// The adaptive mapper inlines the pair when the pool is idle-sized or the
/// runs are too small to amortize a dispatch.
fn all_correct_pair(
    protocol: &dyn Protocol,
    g: &Graph,
    inputs: [Input; 2],
    horizon: u32,
    f: usize,
    policy: &RunPolicy,
) -> [AllCorrectRun; 2] {
    let cost_hint = run_cost_hint_ns(g.node_count(), horizon);
    let mut results = flm_par::par_map_adaptive(inputs.to_vec(), cost_hint, |input| {
        all_correct_run(protocol, g, input, horizon, f, policy)
    });
    let second = results.pop().expect("two runs");
    let first = results.pop().expect("two runs");
    [first, second]
}

/// The ring cover of the triangle with `4k` nodes (`k` a multiple of 3).
fn ring_cover(k: usize) -> Result<Covering, RefuteError> {
    debug_assert_eq!(k % 3, 0);
    crate::profile::span("build-covering", || {
        Ok(Covering::cyclic_cover(3, 4 * k / 3)?)
    })
}

/// Smallest multiple of 3 strictly greater than `t`.
fn next_k(t: u32) -> usize {
    let mut k = (t as usize) + 1;
    while !k.is_multiple_of(3) {
        k += 1;
    }
    k
}

/// Theorem 2: refutes any weak-agreement protocol on the triangle with one
/// fault.
///
/// # Errors
///
/// [`RefuteError::BadGraph`] unless `g` is the triangle and `f = 1`;
/// [`RefuteError::ModelViolation`] for devices that break the model.
pub fn weak_agreement(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    require_triangle(g, f)?;
    let horizon = protocol.horizon(g);
    // Captured once at entry; see `chain_certificate` in refute::ba.
    let policy = crate::refute::current_policy();

    // The two validity pins: all-correct all-0 and all-1 runs of G.
    let mut chain = Vec::new();
    let mut t_prime = 0u32;
    let pair = all_correct_pair(
        protocol,
        g,
        [Input::Bool(false), Input::Bool(true)],
        horizon,
        f,
        &policy,
    );
    for (b, run) in [false, true].into_iter().zip(pair) {
        let (link, behavior, pins) = run?;
        for v in pins {
            match behavior.node(v).decision() {
                Some(Decision::Bool(d)) if d == b => {
                    t_prime =
                        t_prime.max(behavior.node(v).decision_tick().map(|t| t.0).unwrap_or(0));
                }
                Some(Decision::Bool(d)) => {
                    let violation = Violation {
                        condition: Condition::Validity,
                        link: chain.len(),
                        evidence: format!(
                            "all nodes correct with input {} but {v} chose {}",
                            u8::from(b),
                            u8::from(d)
                        ),
                    };
                    chain.push(link);
                    return Ok(weak_cert(protocol, g, chain, policy, violation, 0));
                }
                other => {
                    let violation = Violation {
                        condition: Condition::Termination,
                        link: chain.len(),
                        evidence: format!(
                            "{v} chose {other:?} by the protocol's own horizon {horizon} — \
                             the Choice condition fails"
                        ),
                    };
                    chain.push(link);
                    return Ok(weak_cert(protocol, g, chain, policy, violation, 0));
                }
            }
        }
        chain.push(link);
    }

    // The ring: 4k nodes, 1-inputs on the first 2k, 0-inputs on the rest.
    let k = next_k(t_prime);
    let cov = ring_cover(k)?;
    let ring_n = cov.cover().node_count();
    debug_assert_eq!(ring_n, 4 * k);
    let ring_horizon = horizon.max(k as u32 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() < ring_n / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;

    // Find an adjacent pair with differing (or missing) decisions. Lemma 3
    // guarantees one: the deep-1 pair decides 1 and the deep-0 pair 0.
    let decision_of = |i: usize| cover_behavior.node(NodeId(i as u32)).decision();
    let mut bad_pair = None;
    for i in 0..ring_n {
        let j = (i + 1) % ring_n;
        let (di, dj) = (decision_of(i), decision_of(j));
        let broken = !matches!(
            (&di, &dj),
            (Some(Decision::Bool(a)), Some(Decision::Bool(b))) if a == b
        );
        if broken {
            bad_pair = Some((i, j));
            break;
        }
    }
    let Some((i, j)) = bad_pair else {
        // Everyone agreed on one value w around the whole ring — yet the
        // deep-(1−w) nodes' prefixes coincide with the opposite all-correct
        // run, which decided differently. Only an axiom break allows this.
        return Err(RefuteError::Unrefuted {
            reason: "every adjacent ring pair agreed, contradicting Lemma 3".into(),
        });
    };

    let u_set: BTreeSet<NodeId> = [NodeId(i as u32), NodeId(j as u32)].into();
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::weak_agreement(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted pair satisfied weak agreement despite differing decisions".into(),
        })?;
    chain.push(link);
    Ok(weak_cert(protocol, g, chain, policy, violation, k))
}

/// Theorem 2, general case, proven *directly* (no collapse): for any graph
/// with `n ≤ 3f`, unroll it into `m` ring-connected copies with the `a`–`c`
/// class links crossed ([`Covering::cyclic_crossed_cover`]). Inputs are
/// uniform per copy — 1 on the first half of the ring of copies, 0 on the
/// second — so information from the opposite input region needs at least
/// one tick per copy boundary, and the deep copies replay the all-0 / all-1
/// behaviors of `G` long enough to decide. Scenarios are consecutive
/// class-copy pairs (each two classes ≥ `n − f` correct nodes, third class
/// faulty); agreement chains around the whole ring and must break.
///
/// This is the ablation partner of [`super::weak_agreement_general`]
/// (footnote-3 collapse); both defeat the same protocols.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `n ≥ 3f + 1`; the usual model
/// errors otherwise.
pub fn weak_agreement_direct_general(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let classes = crate::refute::partition_with_crossing_link(g, f)?;
    let [a, b, c] = classes;

    // Validity pins and decision time t′ from the all-correct runs.
    let mut chain = Vec::new();
    let mut t_prime = 0u32;
    let pair = all_correct_pair(
        protocol,
        g,
        [Input::Bool(false), Input::Bool(true)],
        horizon,
        f,
        &policy,
    );
    for (bit, run) in [false, true].into_iter().zip(pair) {
        let (link, behavior, pins) = run?;
        for v in pins {
            match behavior.node(v).decision() {
                Some(Decision::Bool(d)) if d == bit => {
                    t_prime =
                        t_prime.max(behavior.node(v).decision_tick().map(|t| t.0).unwrap_or(0));
                }
                other => {
                    let violation = Violation {
                        condition: if matches!(other, Some(Decision::Bool(_))) {
                            Condition::Validity
                        } else {
                            Condition::Termination
                        },
                        link: chain.len(),
                        evidence: format!(
                            "all nodes correct with input {}: {v} decided {other:?}",
                            u8::from(bit)
                        ),
                    };
                    chain.push(link);
                    return Ok(Certificate {
                        theorem: Theorem::WeakAgreement,
                        protocol: protocol.name(),
                        base: g.clone(),
                        f,
                        covering: "no covering needed: an all-correct run already violates".into(),
                        chain,
                        policy,
                        violation,
                    });
                }
            }
        }
        chain.push(link);
    }

    // m ring-connected copies; deep copies sit ≥ m/4 boundaries from the
    // input flip, which must exceed t′.
    let m = (4 * (t_prime as usize + 1)).max(4);
    let cov = Covering::cyclic_crossed_cover(g, &a, &c, m)?;
    let n = g.node_count();
    let ring_horizon = horizon.max(m as u32 / 4 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() / n < m / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;

    // Scenario walk: (a_i b_i), (b_i c_i), (c_i a_{i+1}) around the ring of
    // copies. Find the first whose correct decisions are not uniform.
    let lift = |class: &BTreeSet<NodeId>, copy: usize| {
        class
            .iter()
            .map(move |v| NodeId((copy * n) as u32 + v.0))
            .collect::<Vec<_>>()
    };
    let mut bad: Option<BTreeSet<NodeId>> = None;
    'outer: for i in 0..m {
        // The crossing sends a_i's c-links to c_{i+1}, so c_i is adjacent to
        // a_{i-1}: only that pairing leaves every border edge at a *faulty*
        // class, as the Fault axiom requires.
        let j = (i + m - 1) % m;
        let pairs: [Vec<NodeId>; 3] = [
            lift(&a, i).into_iter().chain(lift(&b, i)).collect(),
            lift(&b, i).into_iter().chain(lift(&c, i)).collect(),
            lift(&c, i).into_iter().chain(lift(&a, j)).collect(),
        ];
        for set in pairs {
            let mut decisions = set.iter().map(|&s| cover_behavior.node(s).decision());
            // An empty scenario set is vacuously uniform.
            let Some(first) = decisions.next() else {
                continue;
            };
            let uniform = matches!(first, Some(Decision::Bool(_))) && decisions.all(|d| d == first);
            if !uniform {
                bad = Some(set.into_iter().collect());
                break 'outer;
            }
        }
    }
    let Some(u_set) = bad else {
        return Err(RefuteError::Unrefuted {
            reason: "every class-copy scenario decided uniformly, contradicting the \
                     deep-copy argument"
                .into(),
        });
    };
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::weak_agreement(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted scenario satisfied weak agreement despite non-uniform \
                     decisions"
                .into(),
        })?;
    chain.push(link);
    Ok(Certificate {
        theorem: Theorem::WeakAgreement,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!(
            "cyclic crossed cover: {m} copies of the {n}-node graph ({} cover nodes), \
             a–c links crossed",
            m * n
        ),
        chain,
        policy,
        violation,
    })
}

/// Theorem 2, connectivity half — one of the paper's *new* results ("the
/// 2f+1 connectivity requirement was previously unknown"), proven directly:
/// for a connected graph with `κ(G) ≤ 2f`, take the §3.2 cut classes
/// `a | b, d | c` and unroll `m` copies with the `a`–`b` links crossed.
/// Inputs are uniform per copy; scenarios alternate `(cᵢ dᵢ aᵢ)` with `b`
/// faulty and `(aᵢ b₍ᵢ₊₁₎ c₍ᵢ₊₁₎)` with `d` faulty, overlapping around the
/// ring of copies, so agreement chains globally while bounded delay pins
/// the deep copies to the all-0 / all-1 runs.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `κ(G) ≥ 2f + 1`; the usual model
/// errors otherwise.
pub fn weak_agreement_direct_connectivity(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let classes = crate::refute::ba::cut_classes(g, f)?;
    let (a, b, c, d) = (classes.a, classes.b, classes.c, classes.d);

    // Validity pins and decision time t′ from the all-correct runs.
    let mut chain = Vec::new();
    let mut t_prime = 0u32;
    let pair = all_correct_pair(
        protocol,
        g,
        [Input::Bool(false), Input::Bool(true)],
        horizon,
        f,
        &policy,
    );
    for (bit, run) in [false, true].into_iter().zip(pair) {
        let (link, behavior, pins) = run?;
        for v in pins {
            match behavior.node(v).decision() {
                Some(Decision::Bool(dec)) if dec == bit => {
                    t_prime =
                        t_prime.max(behavior.node(v).decision_tick().map(|t| t.0).unwrap_or(0));
                }
                other => {
                    let violation = Violation {
                        condition: if matches!(other, Some(Decision::Bool(_))) {
                            Condition::Validity
                        } else {
                            Condition::Termination
                        },
                        link: chain.len(),
                        evidence: format!(
                            "all nodes correct with input {}: {v} decided {other:?}",
                            u8::from(bit)
                        ),
                    };
                    chain.push(link);
                    return Ok(Certificate {
                        theorem: Theorem::WeakAgreement,
                        protocol: protocol.name(),
                        base: g.clone(),
                        f,
                        covering: "no covering needed: an all-correct run already violates".into(),
                        chain,
                        policy,
                        violation,
                    });
                }
            }
        }
        chain.push(link);
    }

    let m = (4 * (t_prime as usize + 1)).max(4);
    let cov = Covering::cyclic_crossed_cover(g, &a, &b, m)?;
    let n = g.node_count();
    let ring_horizon = horizon.max(m as u32 / 4 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() / n < m / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;

    let lift = |class: &BTreeSet<NodeId>, copy: usize| {
        class
            .iter()
            .map(move |v| NodeId((copy * n) as u32 + v.0))
            .collect::<Vec<_>>()
    };
    // Scenario walk around the ring of copies: (c_i d_i a_i) then
    // (a_i b_{i+1} c_{i+1}), overlapping in a_i then c_{i+1}.
    let mut bad: Option<BTreeSet<NodeId>> = None;
    'outer: for i in 0..m {
        let j = (i + 1) % m;
        let sets: [Vec<NodeId>; 2] = [
            lift(&c, i)
                .into_iter()
                .chain(lift(&d, i))
                .chain(lift(&a, i))
                .collect(),
            lift(&a, i)
                .into_iter()
                .chain(lift(&b, j))
                .chain(lift(&c, j))
                .collect(),
        ];
        for set in sets {
            let mut decisions = set.iter().map(|&s| cover_behavior.node(s).decision());
            // An empty scenario set is vacuously uniform.
            let Some(first) = decisions.next() else {
                continue;
            };
            let uniform =
                matches!(first, Some(Decision::Bool(_))) && decisions.all(|dec| dec == first);
            if !uniform {
                bad = Some(set.into_iter().collect());
                break 'outer;
            }
        }
    }
    let Some(u_set) = bad else {
        return Err(RefuteError::Unrefuted {
            reason: "every cut-class scenario decided uniformly, contradicting the \
                     deep-copy argument"
                .into(),
        });
    };
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::weak_agreement(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted scenario satisfied weak agreement despite non-uniform \
                     decisions"
                .into(),
        })?;
    chain.push(link);
    Ok(Certificate {
        theorem: Theorem::WeakAgreement,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!(
            "cyclic crossed cover over the vertex cut: {m} copies of the {n}-node graph \
             (κ={}), a–b links crossed; a={a:?} b={b:?} c={c:?} d={d:?}",
            classes.kappa
        ),
        chain,
        policy,
        violation,
    })
}

/// Scans scenario node-sets of a cover run for the first whose nodes'
/// observables (canonical bytes from `obs`) are not all "ok and equal".
fn first_non_uniform_scenario(
    cover_behavior: &flm_sim::SystemBehavior,
    scenarios: impl IntoIterator<Item = BTreeSet<NodeId>>,
    obs: &dyn Fn(&flm_sim::behavior::NodeBehavior) -> (bool, Vec<u8>),
) -> Option<BTreeSet<NodeId>> {
    for set in scenarios {
        let mut values = set.iter().map(|&s| obs(cover_behavior.node(s)));
        // An empty scenario set is vacuously uniform.
        let Some(first) = values.next() else {
            continue;
        };
        let uniform = first.0 && values.all(|v| v.0 && v.1 == first.1);
        if !uniform {
            return Some(set);
        }
    }
    None
}

/// Fire-tick observable for the firing-squad walks: always "ok" (never
/// firing is a legitimate outcome), compared by the canonical tick bytes.
fn fire_obs(nb: &flm_sim::behavior::NodeBehavior) -> (bool, Vec<u8>) {
    let bytes = match nb.fire_tick() {
        Some(t) => {
            let mut v = vec![1u8];
            v.extend_from_slice(&t.0.to_be_bytes());
            v
        }
        None => vec![0u8],
    };
    (true, bytes)
}

/// The firing-squad validity pins: the all-stimulus run must fire everyone
/// simultaneously (returning the common tick), the no-stimulus run must
/// stay silent. On violation the certificate is returned early.
fn firing_squad_pins(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
    horizon: u32,
    policy: &RunPolicy,
    chain: &mut Vec<ChainLink>,
) -> Result<Result<u32, Certificate>, RefuteError> {
    let [stim_run, quiet_run] = all_correct_pair(
        protocol,
        g,
        [Input::Bool(true), Input::Bool(false)],
        horizon,
        f,
        policy,
    );
    let (stim_link, stim_behavior, stim_pins) = stim_run?;
    let fire_ticks: Vec<Option<Tick>> = stim_pins
        .iter()
        .map(|&v| stim_behavior.node(v).fire_tick())
        .collect();
    let early = |chain: &mut Vec<ChainLink>, link: ChainLink, violation: Violation| {
        chain.push(link);
        Certificate {
            theorem: Theorem::FiringSquad,
            protocol: protocol.name(),
            base: g.clone(),
            f,
            covering: "no covering needed: an all-correct run already violates".into(),
            chain: std::mem::take(chain),
            policy: *policy,
            violation,
        }
    };
    if fire_ticks.iter().any(Option::is_none) {
        let violation = Violation {
            condition: Condition::Validity,
            link: chain.len(),
            evidence: format!(
                "stimulus at every node yet fire ticks are {fire_ticks:?} by horizon {horizon}"
            ),
        };
        return Ok(Err(early(chain, stim_link, violation)));
    }
    if fire_ticks.windows(2).any(|w| w[0] != w[1]) {
        let violation = Violation {
            condition: Condition::Agreement,
            link: chain.len(),
            evidence: format!("correct nodes fired at different times: {fire_ticks:?}"),
        };
        return Ok(Err(early(chain, stim_link, violation)));
    }
    let t_fire = fire_ticks[0]
        .expect("pins are non-empty and every None fire tick returned early above")
        .0;
    chain.push(stim_link);
    let (quiet_link, quiet_behavior, quiet_pins) = quiet_run?;
    if let Some(v) = quiet_pins
        .iter()
        .copied()
        .find(|&v| quiet_behavior.node(v).fire_tick().is_some())
    {
        let violation = Violation {
            condition: Condition::Validity,
            link: chain.len(),
            evidence: format!("no stimulus occurred yet {v} fired"),
        };
        return Ok(Err(early(chain, quiet_link, violation)));
    }
    chain.push(quiet_link);
    Ok(Ok(t_fire))
}

/// Theorem 4, general node bound, proven directly: `m` ring-connected
/// copies of an `n ≤ 3f` graph with `a`–`c` class links crossed, stimulus
/// on the first half of the copies. The ablation partner of the collapse
/// route [`super::firing_squad_general`].
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `n ≥ 3f + 1`.
pub fn firing_squad_direct_general(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let [a, b, c] = crate::refute::partition_with_crossing_link(g, f)?;
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let mut chain = Vec::new();
    let t_fire = match firing_squad_pins(protocol, g, f, horizon, &policy, &mut chain)? {
        Ok(t) => t,
        Err(cert) => return Ok(cert),
    };
    let m = (4 * (t_fire as usize + 1)).max(4);
    let cov = Covering::cyclic_crossed_cover(g, &a, &c, m)?;
    let n = g.node_count();
    let ring_horizon = horizon.max(m as u32 / 4 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() / n < m / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;
    let lift = |class: &BTreeSet<NodeId>, copy: usize| {
        class
            .iter()
            .map(move |v| NodeId((copy * n) as u32 + v.0))
            .collect::<Vec<_>>()
    };
    let scenarios = (0..m).flat_map(|i| {
        // c_i is adjacent to a_{i-1} under the crossing (see the weak
        // refuter): that pairing keeps all border edges at the faulty class.
        let j = (i + m - 1) % m;
        [
            lift(&a, i)
                .into_iter()
                .chain(lift(&b, i))
                .collect::<BTreeSet<_>>(),
            lift(&b, i).into_iter().chain(lift(&c, i)).collect(),
            lift(&c, i).into_iter().chain(lift(&a, j)).collect(),
        ]
    });
    let Some(u_set) = first_non_uniform_scenario(&cover_behavior, scenarios, &fire_obs) else {
        return Err(RefuteError::Unrefuted {
            reason: "every class-copy scenario fired uniformly, contradicting the \
                     deep-copy argument"
                .into(),
        });
    };
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::firing_squad(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted scenario satisfied the firing-squad conditions".into(),
        })?;
    chain.push(link);
    Ok(Certificate {
        theorem: Theorem::FiringSquad,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!(
            "cyclic crossed cover: {m} copies of the {n}-node graph, a-c links crossed"
        ),
        chain,
        policy,
        violation,
    })
}

/// Theorem 4, connectivity half (also new in the paper): the cut-class
/// crossed cyclic cover with stimulus on half the copies.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `κ(G) ≥ 2f + 1`.
pub fn firing_squad_direct_connectivity(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let classes = crate::refute::ba::cut_classes(g, f)?;
    let (a, b, c, d) = (classes.a, classes.b, classes.c, classes.d);
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let mut chain = Vec::new();
    let t_fire = match firing_squad_pins(protocol, g, f, horizon, &policy, &mut chain)? {
        Ok(t) => t,
        Err(cert) => return Ok(cert),
    };
    let m = (4 * (t_fire as usize + 1)).max(4);
    let cov = Covering::cyclic_crossed_cover(g, &a, &b, m)?;
    let n = g.node_count();
    let ring_horizon = horizon.max(m as u32 / 4 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() / n < m / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;
    let lift = |class: &BTreeSet<NodeId>, copy: usize| {
        class
            .iter()
            .map(move |v| NodeId((copy * n) as u32 + v.0))
            .collect::<Vec<_>>()
    };
    let scenarios = (0..m).flat_map(|i| {
        let j = (i + 1) % m;
        [
            lift(&c, i)
                .into_iter()
                .chain(lift(&d, i))
                .chain(lift(&a, i))
                .collect::<BTreeSet<_>>(),
            lift(&a, i)
                .into_iter()
                .chain(lift(&b, j))
                .chain(lift(&c, j))
                .collect(),
        ]
    });
    let Some(u_set) = first_non_uniform_scenario(&cover_behavior, scenarios, &fire_obs) else {
        return Err(RefuteError::Unrefuted {
            reason: "every cut-class scenario fired uniformly, contradicting the \
                     deep-copy argument"
                .into(),
        });
    };
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::firing_squad(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted scenario satisfied the firing-squad conditions".into(),
        })?;
    chain.push(link);
    Ok(Certificate {
        theorem: Theorem::FiringSquad,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!(
            "cyclic crossed cover over the vertex cut: {m} copies of the {n}-node graph \
             (κ={}), a-b links crossed",
            classes.kappa
        ),
        chain,
        policy,
        violation,
    })
}

/// Dispatching refuter for weak agreement: the triangle ring for the core
/// case, the direct general crossed cover for `n ≤ 3f`, and the cut-based
/// crossed cover when only the connectivity bound applies.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when neither bound applies.
pub fn weak_any(protocol: &dyn Protocol, g: &Graph, f: usize) -> Result<Certificate, RefuteError> {
    if g.node_count() == 3 && g.links().len() == 3 && f == 1 {
        return weak_agreement(protocol, g, f);
    }
    match weak_agreement_direct_general(protocol, g, f) {
        Err(RefuteError::GraphIsAdequate { .. }) => {
            weak_agreement_direct_connectivity(protocol, g, f)
        }
        other => other,
    }
}

/// Dispatching refuter for the Byzantine firing squad, mirroring
/// [`weak_any`].
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when neither bound applies.
pub fn firing_squad_any(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    if g.node_count() == 3 && g.links().len() == 3 && f == 1 {
        return firing_squad(protocol, g, f);
    }
    match firing_squad_direct_general(protocol, g, f) {
        Err(RefuteError::GraphIsAdequate { .. }) => {
            firing_squad_direct_connectivity(protocol, g, f)
        }
        other => other,
    }
}

fn weak_cert(
    protocol: &dyn Protocol,
    g: &Graph,
    chain: Vec<ChainLink>,
    policy: RunPolicy,
    violation: Violation,
    k: usize,
) -> Certificate {
    Certificate {
        theorem: Theorem::WeakAgreement,
        protocol: protocol.name(),
        base: g.clone(),
        f: 1,
        covering: if k == 0 {
            "no covering needed: an all-correct run already violates the conditions".into()
        } else {
            format!("{}-node ring cover of the triangle (k = {k})", 4 * k)
        },
        chain,
        policy,
        violation,
    }
}

/// Theorem 4: refutes any Byzantine-firing-squad protocol on the triangle
/// with one fault.
///
/// # Errors
///
/// [`RefuteError::BadGraph`] unless `g` is the triangle and `f = 1`;
/// [`RefuteError::ModelViolation`] for devices that break the model.
pub fn firing_squad(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    require_triangle(g, f)?;
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();

    let mut chain = Vec::new();
    // Validity pins: with stimulus everywhere all must fire, simultaneously
    // and by the horizon; with no stimulus nobody may fire.
    let [stim_run, quiet_run] = all_correct_pair(
        protocol,
        g,
        [Input::Bool(true), Input::Bool(false)],
        horizon,
        f,
        &policy,
    );
    let (stim_link, stim_behavior, stim_pins) = stim_run?;
    let fire_ticks: Vec<Option<Tick>> = stim_pins
        .iter()
        .map(|&v| stim_behavior.node(v).fire_tick())
        .collect();
    if fire_ticks.iter().any(Option::is_none) {
        let violation = Violation {
            condition: Condition::Validity,
            link: 0,
            evidence: format!(
                "stimulus occurred at every node yet fire ticks are {fire_ticks:?} by horizon \
                 {horizon}"
            ),
        };
        chain.push(stim_link);
        return Ok(fs_cert(protocol, g, chain, policy, violation, 0));
    }
    if fire_ticks.windows(2).any(|w| w[0] != w[1]) {
        let violation = Violation {
            condition: Condition::Agreement,
            link: 0,
            evidence: format!("correct nodes fired at different times: {fire_ticks:?}"),
        };
        chain.push(stim_link);
        return Ok(fs_cert(protocol, g, chain, policy, violation, 0));
    }
    let t_fire = fire_ticks[0]
        .expect("pins are non-empty and every None fire tick returned early above")
        .0;
    chain.push(stim_link);

    let (quiet_link, quiet_behavior, quiet_pins) = quiet_run?;
    if let Some(v) = quiet_pins
        .iter()
        .copied()
        .find(|&v| quiet_behavior.node(v).fire_tick().is_some())
    {
        let violation = Violation {
            condition: Condition::Validity,
            link: 1,
            evidence: format!("no stimulus occurred yet {v} fired"),
        };
        chain.push(quiet_link);
        return Ok(fs_cert(protocol, g, chain, policy, violation, 0));
    }
    chain.push(quiet_link);

    // The ring: stimulus on the first half.
    let k = next_k(t_fire);
    let cov = ring_cover(k)?;
    let ring_n = cov.cover().node_count();
    let ring_horizon = horizon.max(k as u32 + 1);
    let inputs = move |s: NodeId| Input::Bool(s.index() < ring_n / 2);
    let cover_behavior = run_cover(protocol, &cov, &inputs, ring_horizon, &policy)?;

    // Find an adjacent pair with different fire ticks. The deep-stimulated
    // pair fires at t_fire; the deep-quiet pair cannot fire by tick k.
    let tick_of = |i: usize| cover_behavior.node(NodeId(i as u32)).fire_tick();
    let mut bad_pair = None;
    for i in 0..ring_n {
        let j = (i + 1) % ring_n;
        if tick_of(i) != tick_of(j) {
            bad_pair = Some((i, j));
            break;
        }
    }
    let Some((i, j)) = bad_pair else {
        return Err(RefuteError::Unrefuted {
            reason: "all ring pairs fired simultaneously, contradicting Lemma 3".into(),
        });
    };
    let u_set: BTreeSet<NodeId> = [NodeId(i as u32), NodeId(j as u32)].into();
    let (link, behavior, correct) = transplant(
        protocol,
        &cov,
        &cover_behavior,
        &u_set,
        Input::None,
        ring_horizon,
        f,
        &policy,
    )?;
    let violation = crate::problems::firing_squad(&behavior, &correct, false, chain.len())
        .err()
        .ok_or_else(|| RefuteError::Unrefuted {
            reason: "transplanted pair satisfied the firing-squad conditions despite \
                     differing fire ticks"
                .into(),
        })?;
    chain.push(link);
    Ok(fs_cert(protocol, g, chain, policy, violation, k))
}

fn fs_cert(
    protocol: &dyn Protocol,
    g: &Graph,
    chain: Vec<ChainLink>,
    policy: RunPolicy,
    violation: Violation,
    k: usize,
) -> Certificate {
    Certificate {
        theorem: Theorem::FiringSquad,
        protocol: protocol.name(),
        base: g.clone(),
        f: 1,
        covering: if k == 0 {
            "no covering needed: an all-correct run already violates the conditions".into()
        } else {
            format!("{}-node ring cover of the triangle (k = {k})", 4 * k)
        },
        chain,
        policy,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::device::{snapshot, Device, NodeCtx, Payload};

    /// Weak-agreement candidate: exchange inputs for a round; if everyone
    /// agrees, pick that value, else default 0. Correct when all three are
    /// honest — exactly the kind of device the theorem kills.
    struct DefaultOnConflict {
        input: bool,
        seen: Vec<bool>,
        decided: Option<bool>,
    }
    impl Device for DefaultOnConflict {
        fn name(&self) -> &'static str {
            "DefaultOnConflict"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.input = ctx.input.as_bool().unwrap_or(false);
        }
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            match t.0 {
                0 => inbox
                    .iter()
                    .map(|_| Some(vec![u8::from(self.input)].into()))
                    .collect(),
                1 => {
                    self.seen = inbox
                        .iter()
                        .map(|m| m.as_ref().and_then(|m| m.first()).copied() == Some(1))
                        .collect();
                    let all_same = self.seen.iter().all(|&b| b == self.input);
                    self.decided = Some(if all_same { self.input } else { false });
                    inbox.iter().map(|_| None).collect()
                }
                _ => inbox.iter().map(|_| None).collect(),
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            let state = [u8::from(self.input)];
            match self.decided {
                Some(b) => snapshot::decided_bool(b, &state),
                None => snapshot::undecided(&state),
            }
        }
    }

    /// Firing-squad candidate: flood the stimulus; fire 2 ticks after first
    /// hearing it (or having it).
    struct FloodAndFire {
        stimulated: bool,
        heard_at: Option<u32>,
        fired: bool,
    }
    impl Device for FloodAndFire {
        fn name(&self) -> &'static str {
            "FloodAndFire"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.stimulated = ctx.input.as_bool().unwrap_or(false);
        }
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            if self.stimulated && self.heard_at.is_none() {
                self.heard_at = Some(t.0);
            }
            if inbox.iter().flatten().any(|m| m.first() == Some(&1)) && self.heard_at.is_none() {
                self.heard_at = Some(t.0);
            }
            if let Some(h) = self.heard_at {
                if t.0 >= h + 2 {
                    self.fired = true;
                }
                return inbox.iter().map(|_| Some(vec![1].into())).collect();
            }
            inbox.iter().map(|_| None).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            if self.fired {
                snapshot::fire(&[])
            } else {
                snapshot::undecided(&[u8::from(self.heard_at.is_some())])
            }
        }
    }

    struct WeakP;
    impl Protocol for WeakP {
        fn name(&self) -> String {
            "DefaultOnConflict".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(DefaultOnConflict {
                input: false,
                seen: vec![],
                decided: None,
            })
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }

    struct FsP;
    impl Protocol for FsP {
        fn name(&self) -> String {
            "FloodAndFire".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(FloodAndFire {
                stimulated: false,
                heard_at: None,
                fired: false,
            })
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            8
        }
    }

    #[test]
    fn weak_agreement_is_refuted_on_the_triangle() {
        let cert = weak_agreement(&WeakP, &builders::triangle(), 1).unwrap();
        assert_eq!(cert.theorem, Theorem::WeakAgreement);
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&WeakP).unwrap();
    }

    #[test]
    fn firing_squad_is_refuted_on_the_triangle() {
        let cert = firing_squad(&FsP, &builders::triangle(), 1).unwrap();
        assert_eq!(cert.theorem, Theorem::FiringSquad);
        cert.verify(&FsP).unwrap();
    }

    #[test]
    fn direct_general_weak_refuter_on_k5_f2() {
        use flm_protocols::WeakViaBa;
        struct AsIs(WeakViaBa);
        impl Protocol for AsIs {
            fn name(&self) -> String {
                self.0.name()
            }
            fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
                self.0.device(g, v)
            }
            fn horizon(&self, g: &Graph) -> u32 {
                self.0.horizon(g)
            }
        }
        let proto = AsIs(WeakViaBa::new(2));
        let cert =
            weak_agreement_direct_general(&proto, &flm_graph::builders::complete(5), 2).unwrap();
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&proto).unwrap();
        assert!(cert.covering.contains("copies"));
    }

    #[test]
    fn direct_general_weak_refuter_on_triangle_matches_ring_version() {
        let direct = weak_agreement_direct_general(&WeakP, &builders::triangle(), 1).unwrap();
        direct.verify(&WeakP).unwrap();
        let ring = weak_agreement(&WeakP, &builders::triangle(), 1).unwrap();
        assert_eq!(direct.theorem, ring.theorem);
    }

    #[test]
    fn weak_connectivity_refuter_on_cycles() {
        // One of the paper's new results: 2f+1 connectivity is necessary
        // for weak agreement. NaiveMajority-style candidates on thin graphs.
        struct Naive;
        impl Protocol for Naive {
            fn name(&self) -> String {
                "NaiveMajority".into()
            }
            fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
                Box::new(flm_sim::devices::NaiveMajorityDevice::new())
            }
            fn horizon(&self, _g: &Graph) -> u32 {
                3
            }
        }
        for g in [flm_graph::builders::cycle(4), flm_graph::builders::cycle(6)] {
            let cert = weak_agreement_direct_connectivity(&Naive, &g, 1).unwrap();
            assert!(cert.chain.iter().all(|l| l.scenario_matched));
            cert.verify(&Naive).unwrap();
        }
    }

    #[test]
    fn weak_connectivity_refuter_declines_adequate() {
        let cert = weak_agreement_direct_connectivity(&WeakP, &builders::complete(4), 1);
        assert!(matches!(cert, Err(RefuteError::GraphIsAdequate { .. })));
    }

    #[test]
    fn ring_refuters_reject_other_graphs() {
        assert!(matches!(
            weak_agreement(&WeakP, &builders::complete(4), 1),
            Err(RefuteError::BadGraph { .. })
        ));
        assert!(matches!(
            firing_squad(&FsP, &builders::cycle(4), 1),
            Err(RefuteError::BadGraph { .. })
        ));
    }

    #[test]
    fn fs_direct_general_on_k5_f2() {
        use flm_protocols::FiringSquadViaBa;
        struct AsIs(FiringSquadViaBa);
        impl Protocol for AsIs {
            fn name(&self) -> String {
                self.0.name()
            }
            fn device(&self, g: &Graph, v: NodeId) -> Box<dyn Device> {
                self.0.device(g, v)
            }
            fn horizon(&self, g: &Graph) -> u32 {
                self.0.horizon(g)
            }
        }
        let proto = AsIs(FiringSquadViaBa::new(2));
        let cert =
            firing_squad_direct_general(&proto, &flm_graph::builders::complete(5), 2).unwrap();
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&proto).unwrap();
    }

    #[test]
    fn fs_direct_connectivity_on_cycle4() {
        let cert =
            firing_squad_direct_connectivity(&FsP, &flm_graph::builders::cycle(4), 1).unwrap();
        assert!(cert.chain.iter().all(|l| l.scenario_matched));
        cert.verify(&FsP).unwrap();
        assert!(matches!(
            firing_squad_direct_connectivity(&FsP, &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }

    #[test]
    fn next_k_is_multiple_of_three_beyond_t() {
        assert_eq!(next_k(0), 3);
        assert_eq!(next_k(2), 3);
        assert_eq!(next_k(3), 6);
        assert_eq!(next_k(7), 9);
    }
}
