//! The FLP-style asynchronous refuter — the eighth theorem family.
//!
//! The seven discrete and continuous families all attack protocols on
//! *inadequate graphs* under the synchronous model. This family attacks a
//! different claim entirely: that a protocol *terminates* (and agrees) when
//! message delivery is scheduled by an adversary. The refuter searches the
//! schedule space with the strategies of [`flm_sim::async_sched`] — a fair
//! control run, one starvation adversary per candidate victim, and seeded
//! random probes — looking FLP-style for a schedule under which some
//! correct node never decides (or two nodes decide differently). The
//! adversarial chooser's one-step-forward/one-step-back
//! [`flm_sim::device::Device::fork`] look-ahead is the transplant analogue:
//! instead of moving scenarios between graphs, it moves the *same* system
//! one delivery forward, inspects the decision, and steps back.
//!
//! The witness is the schedule itself. An [`AsyncCertificate`] carries the
//! full delivery sequence, and [`AsyncCertificate::verify`] re-executes it
//! byte-for-byte through [`AsyncSystem::replay`] before re-checking the
//! violated condition — the same trusted-machinery-only discipline as
//! [`crate::Certificate::verify`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flm_graph::{Graph, NodeId};
use flm_sim::async_sched::{AsyncRun, AsyncSystem, Strategy};
use flm_sim::{contain_panics, Decision, DeviceMisbehavior, Input, Protocol, RunPolicy};

use crate::certificate::{Condition, VerifyError};
use crate::refute::RefuteError;

/// Schedules the refuter has explored process-wide (one per probe run,
/// cache hits included).
static SCHEDULES_EXPLORED: AtomicU64 = AtomicU64::new(0);
/// `Device::fork` look-aheads those probes performed (the bivalence probe
/// counter).
static BIVALENT_FORKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide search totals: `(schedules explored, bivalent look-ahead
/// forks)`. The serve plane samples these into its stats counters.
pub fn async_search_stats() -> (u64, u64) {
    (
        SCHEDULES_EXPLORED.load(Ordering::Relaxed),
        BIVALENT_FORKS.load(Ordering::Relaxed),
    )
}

/// A machine-checkable counterexample to a protocol's termination (or
/// agreement) claim under adversarial asynchronous scheduling.
///
/// Unlike [`crate::Certificate`] there is no chain: the entire argument is
/// one execution, pinned by the recorded [`AsyncCertificate::schedule`].
/// Soundness rests on replay — `verify` rebuilds the devices from the
/// protocol, re-delivers the schedule entry by entry, and requires the
/// recorded outcome (decisions, pending channels, budget flag, incidents)
/// to reproduce exactly before re-checking the violated condition.
#[derive(Debug, Clone)]
pub struct AsyncCertificate {
    /// Name of the refuted protocol.
    pub protocol: String,
    /// The graph the protocol was run on.
    pub base: Graph,
    /// The input assigned to every node.
    pub inputs: Vec<Input>,
    /// The scheduling strategy that found the violation (provenance; replay
    /// does not consult it).
    pub strategy: String,
    /// The adversarial schedule: directed-edge indices in delivery order.
    pub schedule: Vec<u32>,
    /// Every node's decision latch at the end of the run.
    pub decisions: Vec<Option<Decision>>,
    /// Messages still pending per directed edge when the run ended
    /// (sparse, ascending edge index) — the withheld-message evidence.
    pub pending: Vec<(u32, u32)>,
    /// Whether the run ended by exhausting the fairness budget.
    pub budget_exhausted: bool,
    /// Contained incidents the run recorded.
    pub misbehavior: Vec<DeviceMisbehavior>,
    /// The run policy (its `max_ticks` is the delivery budget).
    pub policy: RunPolicy,
    /// The condition that failed.
    pub condition: Condition,
    /// What concretely went wrong.
    pub evidence: String,
}

impl AsyncCertificate {
    /// Re-executes the recorded schedule with `protocol`'s devices and
    /// checks that the violation reproduces.
    ///
    /// # Errors
    ///
    /// [`VerifyError::Malformed`] when the certificate is structurally
    /// unusable (wrong input count, a schedule the channel state cannot
    /// perform); [`VerifyError::NotReproduced`] when the replayed outcome
    /// or the re-checked condition diverges from the record.
    pub fn verify(&self, protocol: &dyn Protocol) -> Result<(), VerifyError> {
        crate::profile::span("verify-async", || self.verify_inner(protocol))
    }

    fn verify_inner(&self, protocol: &dyn Protocol) -> Result<(), VerifyError> {
        let replayed = self.replay(protocol)?;
        if replayed.misbehavior != self.misbehavior {
            return Err(VerifyError::NotReproduced {
                reason: format!(
                    "replay recorded misbehavior {:?}, certificate records {:?}",
                    replayed.misbehavior, self.misbehavior
                ),
            });
        }
        if replayed.decisions.len() != self.decisions.len() {
            return Err(VerifyError::Malformed {
                reason: format!(
                    "certificate records {} decisions for a {}-node graph",
                    self.decisions.len(),
                    replayed.decisions.len()
                ),
            });
        }
        for (i, (got, want)) in replayed.decisions.iter().zip(&self.decisions).enumerate() {
            let matches = match (got, want) {
                (Some(Decision::Real(a)), Some(Decision::Real(b))) => a.to_bits() == b.to_bits(),
                (a, b) => a == b,
            };
            if !matches {
                return Err(VerifyError::NotReproduced {
                    reason: format!("n{i} decided {got:?}, certificate records {want:?}"),
                });
            }
        }
        if replayed.pending != self.pending {
            return Err(VerifyError::NotReproduced {
                reason: format!(
                    "replay left {:?} pending, certificate records {:?}",
                    replayed.pending, self.pending
                ),
            });
        }
        if replayed.budget_exhausted != self.budget_exhausted {
            return Err(VerifyError::NotReproduced {
                reason: format!(
                    "replay budget_exhausted = {}, certificate records {}",
                    replayed.budget_exhausted, self.budget_exhausted
                ),
            });
        }
        self.recheck_condition(&replayed)
    }

    /// Re-checks the recorded condition against the *replayed* outcome —
    /// never against the certificate's own claims.
    fn recheck_condition(&self, run: &AsyncRun) -> Result<(), VerifyError> {
        let quarantined: Vec<usize> = run.misbehavior.iter().map(|m| m.node.index()).collect();
        match self.condition {
            Condition::Termination => {
                let starved: Vec<NodeId> = run
                    .undecided()
                    .into_iter()
                    .filter(|v| !quarantined.contains(&v.index()))
                    .collect();
                if starved.is_empty() {
                    return Err(VerifyError::NotReproduced {
                        reason: "every well-behaved node decided under the replayed schedule"
                            .into(),
                    });
                }
                Ok(())
            }
            Condition::Agreement => {
                let decided: Vec<&Decision> =
                    run.decisions.iter().filter_map(Option::as_ref).collect();
                let conflict = decided.windows(2).any(|w| !decision_eq(w[0], w[1]));
                if !conflict {
                    return Err(VerifyError::NotReproduced {
                        reason: "all decisions agree under the replayed schedule".into(),
                    });
                }
                Ok(())
            }
            Condition::Validity => Err(VerifyError::Malformed {
                reason: "validity is not a condition the asynchronous refuter checks".into(),
            }),
        }
    }

    /// Rebuilds the devices and replays the schedule, memoized under the
    /// `"async"` run-cache domain (a refute-then-verify sequence in one
    /// process replays from the cache).
    fn replay(&self, protocol: &dyn Protocol) -> Result<Arc<AsyncRun>, VerifyError> {
        let n = self.base.node_count();
        if self.inputs.len() != n {
            return Err(VerifyError::Malformed {
                reason: format!(
                    "certificate carries {} inputs for a {n}-node graph",
                    self.inputs.len()
                ),
            });
        }
        let key = crate::runkey::async_replay_key(
            &protocol.name(),
            &self.base,
            &self.inputs,
            &self.schedule,
            &self.policy,
        );
        flm_sim::runcache::memoize_async(&key, || {
            let sys = assemble(protocol, &self.base, &self.inputs)
                .map_err(|reason| VerifyError::Malformed { reason })?;
            sys.replay(&self.schedule, &self.policy)
                .map_err(|e| VerifyError::Malformed {
                    reason: format!("schedule does not replay: {e}"),
                })
        })
    }
}

fn decision_eq(a: &Decision, b: &Decision) -> bool {
    match (a, b) {
        (Decision::Real(x), Decision::Real(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

impl fmt::Display for AsyncCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "COUNTEREXAMPLE — FLP asynchrony (adversarial scheduling)"
        )?;
        writeln!(
            f,
            "  protocol: {}   graph: {} nodes   strategy: {}",
            self.protocol,
            self.base.node_count(),
            self.strategy
        )?;
        writeln!(
            f,
            "  schedule: {} deliveries, {} withheld, budget {}",
            self.schedule.len(),
            self.pending.iter().map(|&(_, k)| u64::from(k)).sum::<u64>(),
            if self.budget_exhausted {
                "exhausted"
            } else {
                "unspent"
            }
        )?;
        for m in &self.misbehavior {
            writeln!(f, "      misbehavior: {m}")?;
        }
        let ds: Vec<String> = self
            .decisions
            .iter()
            .enumerate()
            .map(|(i, d)| match d {
                Some(Decision::Bool(b)) => format!("n{i}={}", u8::from(*b)),
                Some(Decision::Real(r)) => format!("n{i}={r:.4}"),
                Some(Decision::Fire) => format!("n{i}=FIRE"),
                None => format!("n{i}=⊥"),
            })
            .collect();
        writeln!(f, "  decisions: {}", ds.join(" "))?;
        write!(f, "  {} violated: {}", self.condition, self.evidence)
    }
}

/// Installs `protocol`'s devices on every node of `g`, containing
/// constructor panics.
fn assemble(protocol: &dyn Protocol, g: &Graph, inputs: &[Input]) -> Result<AsyncSystem, String> {
    let mut sys = AsyncSystem::new(g.clone());
    for v in g.nodes() {
        let device = contain_panics(|| protocol.device(g, v))
            .map_err(|msg| format!("device construction for {v} panicked: {msg}"))?;
        sys.assign(v, device, inputs[v.index()]);
    }
    Ok(sys)
}

/// One memoized probe run under `strategy`.
fn probe(
    protocol: &dyn Protocol,
    g: &Graph,
    inputs: &[Input],
    strategy: &Strategy,
    policy: &RunPolicy,
) -> Result<Arc<AsyncRun>, RefuteError> {
    SCHEDULES_EXPLORED.fetch_add(1, Ordering::Relaxed);
    let key = crate::runkey::async_probe_key(&protocol.name(), g, inputs, strategy, policy);
    let run = flm_sim::runcache::memoize_async(&key, || {
        let sys = assemble(protocol, g, inputs)
            .map_err(|reason| RefuteError::ModelViolation { reason })?;
        sys.run(strategy, policy)
            .map_err(|e| RefuteError::ModelViolation {
                reason: format!("async run failed: {e}"),
            })
    })?;
    BIVALENT_FORKS.fetch_add(run.lookahead_forks, Ordering::Relaxed);
    Ok(run)
}

/// What a probe run violated, if anything: disagreement beats non-decision.
fn violation_in(run: &AsyncRun) -> Option<(Condition, String)> {
    let quarantined: Vec<usize> = run.misbehavior.iter().map(|m| m.node.index()).collect();
    let decided: Vec<(usize, &Decision)> = run
        .decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.as_ref().map(|d| (i, d)))
        .collect();
    for pair in decided.windows(2) {
        let ((i, a), (j, b)) = (pair[0], pair[1]);
        if !decision_eq(a, b) {
            return Some((
                Condition::Agreement,
                format!("n{i} decided {a:?}, n{j} decided {b:?}"),
            ));
        }
    }
    let starved: Vec<NodeId> = run
        .undecided()
        .into_iter()
        .filter(|v| !quarantined.contains(&v.index()))
        .collect();
    if !starved.is_empty() {
        let names: Vec<String> = starved.iter().map(|v| v.to_string()).collect();
        let ending = if run.budget_exhausted {
            "the fairness budget ran out".to_string()
        } else {
            format!("{} deliveries were withheld", run.pending_total())
        };
        return Some((
            Condition::Termination,
            format!("{} never decided; {ending}", names.join(", ")),
        ));
    }
    None
}

/// Seeds the random probes draw schedules from (arbitrary, fixed forever —
/// they are part of the refuter's deterministic identity).
const RANDOM_SEEDS: [u64; 2] = [0x5eed_0001, 0x5eed_0002];
/// Seeds rotating each starvation adversary's preference order.
const ADVERSARY_SEEDS: [u64; 2] = [0, 1];

/// FLP-style asynchronous refutation: searches the schedule space for an
/// execution under which `protocol` fails to terminate (or agree) within
/// the fairness budget of [`crate::refute::current_policy`]'s `max_ticks`.
///
/// The search order is deterministic: the fair control schedule first, then
/// one starvation adversary per victim node (each with the fixed seed
/// rotation), then the seeded random probes. The first violating schedule
/// becomes the certificate. Runs are memoized under the `"async"` run-cache
/// domain, so repeated refutes — and the verify that follows — share
/// executions.
///
/// # Errors
///
/// [`RefuteError::BadGraph`] for graphs with no channels to schedule;
/// [`RefuteError::ModelViolation`] when device construction panics;
/// [`RefuteError::Unrefuted`] when every explored schedule decided and
/// agreed (the protocol survived this search — FLP says *some* adversary
/// wins against any protocol that reads its inbox, but a protocol that
/// ignores messages entirely can be immune to scheduling).
pub fn flp_async(protocol: &dyn Protocol, g: &Graph) -> Result<AsyncCertificate, RefuteError> {
    crate::profile::span("flp-async", || {
        flp_async_inner(protocol, g, &default_strategies(g))
    })
}

/// The full deterministic strategy ladder [`flp_async`] climbs: fair
/// control, per-victim starvation adversaries, seeded random probes.
pub fn default_strategies(g: &Graph) -> Vec<Strategy> {
    let mut strategies: Vec<Strategy> = vec![Strategy::Fair];
    for victim in g.nodes() {
        for &seed in &ADVERSARY_SEEDS {
            strategies.push(Strategy::Adversarial { seed, victim });
        }
    }
    for &seed in &RANDOM_SEEDS {
        strategies.push(Strategy::Random { seed });
    }
    strategies
}

/// [`flp_async`] restricted to an explicit strategy list — the campaign's
/// scheduler axis calls this with just the fair schedule (`async-fair`) or
/// just the starvation adversaries (`async-adversarial`), so a campaign
/// cell probes exactly the scheduling model its report row claims.
///
/// # Errors
///
/// Same contract as [`flp_async`].
pub fn flp_async_under(
    protocol: &dyn Protocol,
    g: &Graph,
    strategies: &[Strategy],
) -> Result<AsyncCertificate, RefuteError> {
    crate::profile::span("flp-async", || flp_async_inner(protocol, g, strategies))
}

fn flp_async_inner(
    protocol: &dyn Protocol,
    g: &Graph,
    strategies: &[Strategy],
) -> Result<AsyncCertificate, RefuteError> {
    let n = g.node_count();
    if n < 2 || g.links().is_empty() {
        return Err(RefuteError::BadGraph {
            reason: format!(
                "{n} nodes and {} links leave nothing to schedule",
                g.links().len()
            ),
        });
    }
    let policy = crate::refute::current_policy();
    // Mixed inputs: scheduling attacks bite hardest when the nodes have
    // something to disagree about.
    let inputs: Vec<Input> = g.nodes().map(|v| Input::Bool(v.0 % 2 == 0)).collect();

    let mut explored = 0usize;
    for strategy in strategies {
        let run = probe(protocol, g, &inputs, strategy, &policy)?;
        explored += 1;
        if let Some((condition, evidence)) = violation_in(&run) {
            return Ok(AsyncCertificate {
                protocol: protocol.name(),
                base: g.clone(),
                inputs,
                strategy: strategy.describe(),
                schedule: run.schedule.clone(),
                decisions: run.decisions.clone(),
                pending: run.pending.clone(),
                budget_exhausted: run.budget_exhausted,
                misbehavior: run.misbehavior.clone(),
                policy,
                condition,
                evidence: format!("{evidence} (strategy: {})", strategy.describe()),
            });
        }
    }
    Err(RefuteError::Unrefuted {
        reason: format!(
            "all {explored} explored schedules decided and agreed within {} deliveries",
            policy.max_ticks
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
    use flm_sim::devices::ConstantDevice;
    use flm_sim::Tick;

    /// In-crate stand-in for the `WaitForAll` prey protocol (`flm-protocols`
    /// depends on this crate, not the other way around): broadcast once,
    /// decide the OR after hearing every neighbor.
    #[derive(Clone)]
    struct Prey {
        my: bool,
        heard: Vec<bool>,
        acc: bool,
        sent: bool,
        decided: Option<bool>,
    }

    impl Device for Prey {
        fn name(&self) -> &'static str {
            "prey"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.my = matches!(ctx.input, Input::Bool(true));
            self.heard = vec![false; ctx.port_count()];
        }
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            for (p, m) in inbox.iter().enumerate() {
                if let Some(m) = m {
                    self.heard[p] = true;
                    self.acc |= m.as_bytes() == [1];
                }
            }
            if self.decided.is_none() && !self.heard.is_empty() && self.heard.iter().all(|&h| h) {
                self.decided = Some(self.acc || self.my);
            }
            if self.sent {
                vec![None; inbox.len()]
            } else {
                self.sent = true;
                vec![Some(Payload::new(vec![u8::from(self.my)])); inbox.len()]
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            match self.decided {
                Some(b) => snapshot::decided_bool(b, &[]),
                None => snapshot::undecided(&[]),
            }
        }
        fn fork(&self) -> Option<Box<dyn Device>> {
            Some(Box::new(self.clone()))
        }
    }

    struct PreyProtocol;
    impl Protocol for PreyProtocol {
        fn name(&self) -> String {
            "prey".into()
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            Box::new(Prey {
                my: false,
                heard: Vec::new(),
                acc: false,
                sent: false,
                decided: None,
            })
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            3
        }
    }

    #[test]
    fn starves_the_prey_and_the_certificate_verifies() {
        let g = builders::complete(4);
        let cert = flp_async(&PreyProtocol, &g).unwrap();
        assert_eq!(cert.condition, Condition::Termination);
        assert!(cert.strategy.starts_with("starve"), "{}", cert.strategy);
        assert!(!cert.schedule.is_empty());
        assert!(!cert.pending.is_empty(), "withheld messages are evidence");
        cert.verify(&PreyProtocol).unwrap();
    }

    #[test]
    fn tampered_certificates_fail_verification() {
        let g = builders::triangle();
        let mut cert = flp_async(&PreyProtocol, &g).unwrap();
        // Claim the victim decided after all.
        let victim = cert
            .decisions
            .iter()
            .position(Option::is_none)
            .expect("a starved node");
        cert.decisions[victim] = Some(Decision::Bool(true));
        assert!(matches!(
            cert.verify(&PreyProtocol),
            Err(VerifyError::NotReproduced { .. })
        ));
    }

    #[test]
    fn truncated_schedules_do_not_reproduce() {
        let g = builders::triangle();
        let mut cert = flp_async(&PreyProtocol, &g).unwrap();
        cert.schedule.pop();
        assert!(cert.verify(&PreyProtocol).is_err());
    }

    #[test]
    fn silent_disagreement_is_caught_on_agreement() {
        // ConstantDevice never sends and decides its input at bootstrap:
        // no schedule can starve it, but mixed inputs make it *disagree*.
        struct Constant;
        impl Protocol for Constant {
            fn name(&self) -> String {
                "Constant".into()
            }
            fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
                Box::new(ConstantDevice::new())
            }
            fn horizon(&self, _g: &Graph) -> u32 {
                1
            }
        }
        let cert = flp_async(&Constant, &builders::triangle()).unwrap();
        assert_eq!(cert.condition, Condition::Agreement);
        cert.verify(&Constant).unwrap();
    }

    #[test]
    fn degenerate_graphs_are_rejected() {
        assert!(matches!(
            flp_async(&PreyProtocol, &builders::complete(1)),
            Err(RefuteError::BadGraph { .. })
        ));
    }

    #[test]
    fn search_counters_advance() {
        let (before_s, _) = async_search_stats();
        let _ = flp_async(&PreyProtocol, &builders::triangle());
        let (after_s, after_f) = async_search_stats();
        assert!(after_s > before_s);
        assert!(after_f > 0, "the adversary forks for look-ahead");
    }
}
