//! Theorems 5 and 6: approximate agreement is impossible in inadequate
//! graphs.
//!
//! * [`simple_approx`] (§6.1) reuses the Byzantine-agreement hexagon walk
//!   with real inputs 0 and 1: validity pins the first behavior's outputs to
//!   0 and the last's to 1, while the middle behavior's agreement condition
//!   demands the outputs get strictly closer than the inputs — impossible.
//! * [`eps_delta_gamma`] (§6.2) unrolls the triangle into a `(k+2)`-node
//!   ring with inputs `0, δ, 2δ, …`: Lemma 7's induction shows each
//!   two-node scenario lets the outputs creep up by at most ε per step,
//!   while validity at the far end demands a value near `kδ` — pick `k`
//!   with `δ > 2γ/(k−1) + ε` and the chain must break somewhere.

use std::collections::BTreeSet;

use flm_graph::covering::Covering;
use flm_graph::{Graph, NodeId};
use flm_sim::{Input, Protocol};

use crate::certificate::{Certificate, Theorem, Violation};
use crate::problems;
use crate::refute::{partition_with_crossing_link, run_cover, transplant, RefuteError};

/// Theorem 5: refutes any simple-approximate-agreement protocol on a graph
/// with `n ≤ 3f` nodes.
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `n ≥ 3f + 1`;
/// [`RefuteError::ModelViolation`] for nondeterministic devices.
pub fn simple_approx(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let n = g.node_count();
    let [a, b, c] = partition_with_crossing_link(g, f)?;
    let cov = Covering::double_cover_crossing(g, &a, &c)?;
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let inputs = move |s: NodeId| Input::Real(if s.index() >= n { 1.0 } else { 0.0 });
    let cover_behavior = run_cover(protocol, &cov, &inputs, horizon, &policy)?;

    let off = n as u32;
    let lift = |class: &BTreeSet<NodeId>, copy: u32| {
        class
            .iter()
            .map(move |v| NodeId(v.0 + copy * off))
            .collect::<Vec<_>>()
    };
    let scenarios: Vec<(BTreeSet<NodeId>, f64)> = vec![
        // (cover nodes, input assigned to that link's faulty nodes)
        (lift(&b, 0).into_iter().chain(lift(&c, 0)).collect(), 0.0),
        (lift(&c, 0).into_iter().chain(lift(&a, 1)).collect(), 0.5),
        (lift(&a, 1).into_iter().chain(lift(&b, 1)).collect(), 1.0),
    ];

    let mut chain = Vec::new();
    let mut violation: Option<Violation> = None;
    for (i, (u_set, faulty_in)) in scenarios.iter().enumerate() {
        let (link, behavior, correct) = transplant(
            protocol,
            &cov,
            &cover_behavior,
            u_set,
            Input::Real(*faulty_in),
            horizon,
            f,
            &policy,
        )?;
        if violation.is_none() {
            violation = problems::simple_approx(&behavior, &correct, i).err();
        }
        chain.push(link);
    }
    let violation = violation.ok_or_else(|| RefuteError::Unrefuted {
        reason: "all three behaviors met simple approximate agreement; \
                 the E1/E3 validity pins and E2 agreement cannot coexist"
            .into(),
    })?;
    Ok(Certificate {
        theorem: Theorem::SimpleApprox,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!("double cover crossing a–c links; a={a:?} b={b:?} c={c:?}"),
        chain,
        policy,
        violation,
    })
}

/// Theorem 5, connectivity half: refutes any simple-approximate-agreement
/// protocol on a connected graph with `κ(G) ≤ 2f`, using the same crossed
/// double cover over a split vertex cut as [`crate::refute::ba_connectivity`]
/// ("the connectivity bounds follow as for Byzantine agreement", §6.1).
///
/// # Errors
///
/// [`RefuteError::GraphIsAdequate`] when `κ(G) ≥ 2f + 1`;
/// [`RefuteError::BadGraph`] for complete or disconnected graphs.
pub fn simple_approx_connectivity(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
) -> Result<Certificate, RefuteError> {
    let plan = crate::refute::ba::connectivity_plan(g, f)?;
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    // Real inputs replacing the Boolean pattern: the "0 side" gets 0.0 and
    // the "1 side" 1.0, per the same copy/class rule as Theorem 1.
    let bool_inputs = plan.inputs.clone();
    let inputs = move |s: NodeId| {
        Input::Real(match bool_inputs(s) {
            Input::Bool(true) => 1.0,
            _ => 0.0,
        })
    };
    let cover_behavior = run_cover(protocol, &plan.cov, &inputs, horizon, &policy)?;
    let mut chain = Vec::new();
    let mut violation: Option<Violation> = None;
    // Faulty inputs keep each link's input range tight: all-0 in E1,
    // mid-range in E2, all-1 in E3.
    for (i, (u_set, faulty_in)) in plan.scenarios.iter().zip([0.0, 0.5, 1.0]).enumerate() {
        let (link, behavior, correct) = transplant(
            protocol,
            &plan.cov,
            &cover_behavior,
            u_set,
            Input::Real(faulty_in),
            horizon,
            f,
            &policy,
        )?;
        if violation.is_none() {
            violation = problems::simple_approx(&behavior, &correct, i).err();
        }
        chain.push(link);
    }
    let violation = violation.ok_or_else(|| RefuteError::Unrefuted {
        reason: "all three behaviors met simple approximate agreement over the cut cover".into(),
    })?;
    Ok(Certificate {
        theorem: Theorem::SimpleApprox,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: plan.description,
        chain,
        policy,
        violation,
    })
}

/// Theorem 6: refutes any (ε,δ,γ)-agreement protocol with `ε < δ` on the
/// triangle with one fault (the paper's `n = 3`, `f = 1` core; the general
/// `n ≤ 3f` case follows by the footnote-3 collapse in [`crate::reduction`]).
///
/// The ring has `k+2` nodes with inputs `0, δ, 2δ, …, (k+1)δ`, where `k` is
/// the smallest multiple-of-3-compatible integer with `δ > 2γ/(k−1) + ε`.
///
/// # Errors
///
/// [`RefuteError::BadGraph`] unless `g` is the 3-node complete graph and
/// `f = 1`; [`RefuteError::GraphIsAdequate`] when `ε ≥ δ` (the problem is
/// trivially solvable by outputting the input).
pub fn eps_delta_gamma(
    protocol: &dyn Protocol,
    g: &Graph,
    f: usize,
    eps: f64,
    delta: f64,
    gamma: f64,
) -> Result<Certificate, RefuteError> {
    if g.node_count() != 3 || g.links().len() != 3 || f != 1 {
        return Err(RefuteError::BadGraph {
            reason: "the direct (ε,δ,γ) refuter is for the triangle with f = 1; \
                     collapse larger systems with flm_core::reduction first"
                .into(),
        });
    }
    if !(eps > 0.0 && delta > 0.0 && gamma > 0.0) {
        return Err(RefuteError::BadGraph {
            reason: format!("ε, δ, γ must be positive (got {eps}, {delta}, {gamma})"),
        });
    }
    if eps >= delta {
        return Err(RefuteError::GraphIsAdequate {
            reason: format!("ε = {eps} ≥ δ = {delta}: choosing the input solves the problem"),
        });
    }
    // Smallest k with δ > 2γ/(k−1) + ε and (k+2) % 3 == 0.
    let mut k = (2.0 * gamma / (delta - eps) + 1.0).ceil() as usize + 1;
    while !(k + 2).is_multiple_of(3) {
        k += 1;
    }
    let m = k.div_ceil(3);
    let cov = Covering::cyclic_cover(3, m)?;
    let horizon = protocol.horizon(g);
    let policy = crate::refute::current_policy();
    let inputs = move |s: NodeId| Input::Real(s.index() as f64 * delta);
    let cover_behavior = run_cover(protocol, &cov, &inputs, horizon, &policy)?;

    // Scenario S_i = ring nodes {i, i+1}, for 0 ≤ i ≤ k. Faulty third node
    // of the triangle gets an input inside the correct range so validity
    // ranges are driven by the correct inputs, as in the paper.
    let mut chain = Vec::new();
    let mut violation: Option<Violation> = None;
    for i in 0..=k {
        let u_set: BTreeSet<NodeId> = [NodeId(i as u32), NodeId(i as u32 + 1)].into();
        let (link, behavior, correct) = transplant(
            protocol,
            &cov,
            &cover_behavior,
            &u_set,
            Input::Real(i as f64 * delta),
            horizon,
            f,
            &policy,
        )?;
        if violation.is_none() {
            violation = problems::eps_delta_gamma(&behavior, &correct, eps, gamma, i).err();
        }
        chain.push(link);
        if violation.is_some() {
            break; // later links don't strengthen the certificate
        }
    }
    let violation = violation.ok_or_else(|| RefuteError::Unrefuted {
        reason: format!(
            "all {} two-node scenarios met (ε,δ,γ)-agreement, contradicting Lemma 7's \
             arithmetic (kδ − γ ≤ δ + γ + (k−1)ε fails for k = {k})",
            k + 1
        ),
    })?;
    Ok(Certificate {
        theorem: Theorem::EpsDeltaGamma,
        protocol: protocol.name(),
        base: g.clone(),
        f,
        covering: format!(
            "cyclic {m}-fold cover of the triangle ({} -node ring)",
            k + 2
        ),
        chain,
        policy,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
    use flm_sim::Tick;

    /// Decides its real input immediately (trivially valid, never
    /// contracting) — the simplest approximate-agreement candidate.
    struct EchoReal {
        value: f64,
    }
    impl Device for EchoReal {
        fn name(&self) -> &'static str {
            "EchoReal"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.value = ctx.input.as_real().unwrap_or(0.0);
        }
        fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            inbox.iter().map(|_| None).collect()
        }
        fn snapshot(&self) -> Vec<u8> {
            snapshot::decided_real(self.value, &[])
        }
    }

    /// One round of "average with whatever the neighbors sent".
    struct AverageOnce {
        value: f64,
        decided: Option<f64>,
    }
    impl Device for AverageOnce {
        fn name(&self) -> &'static str {
            "AverageOnce"
        }
        fn init(&mut self, ctx: &NodeCtx) {
            self.value = ctx.input.as_real().unwrap_or(0.0);
        }
        fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
            match t.0 {
                0 => inbox
                    .iter()
                    .map(|_| Some(self.value.to_bits().to_be_bytes().to_vec().into()))
                    .collect(),
                1 => {
                    let mut sum = self.value;
                    let mut count = 1.0;
                    for m in inbox.iter().flatten() {
                        if let Ok(bits) = <[u8; 8]>::try_from(m.as_bytes()) {
                            sum += f64::from_bits(u64::from_be_bytes(bits));
                            count += 1.0;
                        }
                    }
                    self.decided = Some(sum / count);
                    inbox.iter().map(|_| None).collect()
                }
                _ => inbox.iter().map(|_| None).collect(),
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            match self.decided {
                Some(v) => snapshot::decided_real(v, &[]),
                None => snapshot::undecided(&self.value.to_bits().to_be_bytes()),
            }
        }
    }

    struct P(u32);
    impl Protocol for P {
        fn name(&self) -> String {
            format!("approx#{}", self.0)
        }
        fn device(&self, _g: &Graph, _v: NodeId) -> Box<dyn Device> {
            match self.0 {
                0 => Box::new(EchoReal { value: 0.0 }),
                _ => Box::new(AverageOnce {
                    value: 0.0,
                    decided: None,
                }),
            }
        }
        fn horizon(&self, _g: &Graph) -> u32 {
            4
        }
    }

    #[test]
    fn simple_approx_refutes_echo_and_average() {
        let g = builders::triangle();
        for i in 0..2 {
            let proto = P(i);
            let cert = simple_approx(&proto, &g, 1).unwrap_or_else(|e| panic!("#{i}: {e}"));
            assert!(cert.chain.iter().all(|l| l.scenario_matched));
            cert.verify(&proto).unwrap();
        }
    }

    #[test]
    fn simple_approx_connectivity_refutes_on_thin_graphs() {
        for g in [builders::cycle(4), builders::cycle(6), builders::path(4)] {
            for i in 0..2 {
                let proto = P(i);
                let cert = simple_approx_connectivity(&proto, &g, 1)
                    .unwrap_or_else(|e| panic!("#{i}: {e}"));
                assert_eq!(cert.theorem, Theorem::SimpleApprox);
                assert!(cert.chain.iter().all(|l| l.scenario_matched));
                cert.verify(&proto).unwrap();
            }
        }
    }

    #[test]
    fn simple_approx_connectivity_declines_adequate() {
        assert!(matches!(
            simple_approx_connectivity(&P(0), &builders::wheel(6), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }

    #[test]
    fn simple_approx_declines_adequate() {
        assert!(matches!(
            simple_approx(&P(0), &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }

    #[test]
    fn eps_delta_gamma_refutes_on_the_ring() {
        let g = builders::triangle();
        for i in 0..2 {
            let proto = P(i);
            let cert = eps_delta_gamma(&proto, &g, 1, 0.25, 1.0, 1.0)
                .unwrap_or_else(|e| panic!("#{i}: {e}"));
            cert.verify(&proto).unwrap();
        }
    }

    #[test]
    fn eps_delta_gamma_trivial_when_eps_ge_delta() {
        assert!(matches!(
            eps_delta_gamma(&P(0), &builders::triangle(), 1, 1.0, 1.0, 1.0),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }
}
