//! The refuters: one executable impossibility proof per theorem.
//!
//! Every refuter follows the paper's recipe:
//!
//! 1. **Cover.** Build a covering graph `S` of the inadequate graph `G`
//!    (hexagon-style crossed double cover, or a long ring) and install the
//!    protocol's own devices at each cover node, wired along the covering's
//!    edge lifts so that every device sees exactly the neighborhood it was
//!    written for.
//! 2. **Run once.** `S` is just another system; run it.
//! 3. **Transplant.** For each scenario in the chain, construct a behavior
//!    of `G` in which the scenario's nodes are correct (same devices, same
//!    inputs) and the remaining nodes are faulty, masquerading via
//!    [`flm_sim::replay::ReplayDevice`]s that play back the cover run's border edge traces —
//!    the Fault axiom. Re-run `G`, extract the same scenario, and check it
//!    matches the cover's byte for byte — the Locality axiom, *checked*,
//!    not assumed.
//! 4. **Contradict.** Each transplanted behavior is a correct behavior of
//!    `G`, so the problem's conditions apply. The chain is arranged so they
//!    cannot all hold; report the first that fails, with evidence, as a
//!    [`crate::Certificate`].

mod approx;
mod ba;
mod clocks;
mod flp;
mod general;
mod ring;

pub use approx::{eps_delta_gamma, simple_approx, simple_approx_connectivity};
pub use ba::{ba_connectivity, ba_nodes, byzantine};
pub use clocks::{clock_sync, corollary_13, corollary_14, corollary_15, ClockCertificate};
pub use flp::{
    async_search_stats, default_strategies, flp_async, flp_async_under, AsyncCertificate,
};
pub use general::{eps_delta_gamma_general, firing_squad_general, weak_agreement_general};
pub use ring::{
    firing_squad, firing_squad_any, firing_squad_direct_connectivity, firing_squad_direct_general,
    weak_agreement, weak_agreement_direct_connectivity, weak_agreement_direct_general, weak_any,
};

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use flm_graph::covering::Covering;
use flm_graph::{Graph, GraphError, NodeId};
use flm_sim::behavior::EdgeBehavior;
use flm_sim::replay::ReplayDevice;
use flm_sim::{DeviceMisbehavior, Input, Protocol, RunPolicy, System, SystemBehavior};

use crate::certificate::ChainLink;

/// Why a refuter declined or failed to produce a counterexample.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RefuteError {
    /// The graph is adequate for `f` faults — the theorem does not apply
    /// (and `flm-protocols` can actually solve the problem there).
    GraphIsAdequate {
        /// Explanation with the relevant bound.
        reason: String,
    },
    /// The graph violates a standing model assumption (fewer than three
    /// nodes, or disconnected).
    BadGraph {
        /// Explanation.
        reason: String,
    },
    /// The protocol's devices broke a model axiom (e.g. nondeterminism made
    /// a transplanted scenario diverge from the cover run).
    ModelViolation {
        /// Explanation with the first divergence found.
        reason: String,
    },
    /// No condition was violated — impossible if the axioms hold; reported
    /// rather than asserted so callers can diagnose.
    Unrefuted {
        /// Explanation.
        reason: String,
    },
    /// Devices misbehaved (panicked, broke the port discipline, or emitted
    /// oversized payloads) beyond what the fault budget `f` can absorb: the
    /// degradation policy could not reclassify every misbehaving node as
    /// faulty, so no sound counterexample exists in this run. The incidents
    /// carry the evidence.
    Misbehavior {
        /// The incidents the contained run recorded.
        incidents: Vec<DeviceMisbehavior>,
        /// The budget arithmetic that failed.
        reason: String,
    },
    /// A graph construction failed.
    Graph(GraphError),
}

impl fmt::Display for RefuteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefuteError::GraphIsAdequate { reason } => {
                write!(f, "graph is adequate: {reason}")
            }
            RefuteError::BadGraph { reason } => write!(f, "unsupported graph: {reason}"),
            RefuteError::ModelViolation { reason } => {
                write!(f, "protocol violates the model axioms: {reason}")
            }
            RefuteError::Unrefuted { reason } => {
                write!(f, "no violation found (axiom breakage?): {reason}")
            }
            RefuteError::Misbehavior { incidents, reason } => {
                write!(f, "device misbehavior exceeds the fault budget: {reason}")?;
                for m in incidents {
                    write!(f, "; {m}")?;
                }
                Ok(())
            }
            RefuteError::Graph(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for RefuteError {}

impl From<GraphError> for RefuteError {
    fn from(e: GraphError) -> Self {
        RefuteError::Graph(e)
    }
}

thread_local! {
    static ACTIVE_POLICY: std::cell::Cell<Option<RunPolicy>> = const { std::cell::Cell::new(None) };
}

/// Runs `f` with every refuter invoked on *this thread* executing (and
/// certifying) under `policy` instead of [`RunPolicy::default`].
///
/// Each refuter reads the policy exactly once at entry ([`current_policy`])
/// and passes it explicitly into its cover runs, transplants, and the
/// certificate it emits — so the scope composes with [`flm_par::par_map`]
/// even though worker threads never see this thread's scope: by the time
/// work fans out, the policy is a captured value, not thread state.
pub fn with_policy<R>(policy: RunPolicy, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<RunPolicy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE_POLICY.with(|c| c.set(self.0));
        }
    }
    let previous = ACTIVE_POLICY.with(|c| c.replace(Some(policy)));
    let _restore = Restore(previous);
    f()
}

/// The run policy refuters started on this thread will execute under: the
/// innermost [`with_policy`] scope, or [`RunPolicy::default`] outside one.
pub fn current_policy() -> RunPolicy {
    ACTIVE_POLICY.with(std::cell::Cell::get).unwrap_or_default()
}

/// Rough wall-clock estimate of one contained run, for
/// [`flm_par::par_map_adaptive`]'s dispatch decision: the simulator touches
/// every node each tick at roughly 2 µs per node-tick (device construction
/// included). Only the order of magnitude matters — the mapper compares the
/// estimate against thread-dispatch overhead.
pub(crate) fn run_cost_hint_ns(nodes: usize, horizon: u32) -> u64 {
    (nodes as u64)
        .saturating_mul(u64::from(horizon) + 1)
        .saturating_mul(2_000)
}

/// Memoizes a link-shaped contained run (correct protocol devices plus
/// masquerading replayers) at both cache levels: the whole-run cache for
/// byte-identical re-executions, and the run-prefix trie for runs that
/// share the assembly and an initial stretch of masquerade trace ticks.
///
/// The key and schedule are derived from the arguments alone, so every
/// caller that would execute the same link run shares one execution:
/// [`transplant`] when it records a link, `Certificate::rebuild` when it
/// re-executes one during verification, and the chaos-campaign probe
/// driver's replay run (which is the behavior a campaign certificate's
/// self-check later rebuilds). `build` assembles the system only on a
/// whole-run miss; `map_err` wraps a [`flm_sim::system::SystemError`] from
/// the run itself.
///
/// # Errors
///
/// Whatever `build` returns, or a run error through `map_err`; a cache hit
/// never errors.
#[allow(clippy::too_many_arguments)]
pub fn memoize_link_run<E>(
    protocol_name: &str,
    base: &Graph,
    correct: &[NodeId],
    masquerade: &[(NodeId, Vec<EdgeBehavior>)],
    inputs: &[Input],
    horizon: u32,
    policy: &RunPolicy,
    build: impl FnOnce() -> Result<System, E>,
    map_err: impl Fn(flm_sim::system::SystemError) -> E,
) -> Result<Arc<SystemBehavior>, E> {
    let key = crate::runkey::link_key(
        protocol_name,
        base,
        correct,
        masquerade,
        inputs,
        horizon,
        policy,
    );
    let schedule =
        crate::runkey::link_schedule(protocol_name, base, correct, masquerade, inputs, policy);
    flm_sim::prefixcache::memoize_prefixed(&key, &schedule, horizon, policy, build, map_err)
}

/// Installs `protocol`'s devices in the covering graph (wired along edge
/// lifts) with per-cover-node `inputs`, and runs for `horizon` ticks.
///
/// Memoized: refuters that share a covering run — chain links transplanting
/// different scenarios out of the same `S`, or a refute-then-verify
/// sequence — execute it once and share the behavior through the run cache.
pub(crate) fn run_cover(
    protocol: &dyn Protocol,
    cov: &Covering,
    inputs: &dyn Fn(NodeId) -> Input,
    horizon: u32,
    policy: &RunPolicy,
) -> Result<Arc<SystemBehavior>, RefuteError> {
    crate::profile::span("run-cover", || {
        let key = crate::runkey::cover_key(&protocol.name(), cov, inputs, horizon, policy);
        let schedule = crate::runkey::cover_schedule(&protocol.name(), cov, inputs, policy);
        // Contained: a hostile device must not abort the refuter. A cover
        // node that misbehaves is quarantined; determinism means its
        // base-graph twin misbehaves identically in the transplants, where
        // the degradation policy charges it against the fault budget.
        flm_sim::prefixcache::memoize_prefixed(
            &key,
            &schedule,
            horizon,
            policy,
            || {
                let mut sys = System::new(cov.cover().clone());
                for s in cov.cover().nodes() {
                    let device = protocol.device(cov.base(), cov.project(s));
                    sys.assign_lifted(cov, s, device, inputs(s)).map_err(|e| {
                        RefuteError::ModelViolation {
                            reason: format!("installing device at cover node {s}: {e}"),
                        }
                    })?;
                }
                Ok(sys)
            },
            |e| RefuteError::ModelViolation {
                reason: format!("cover run failed: {e}"),
            },
        )
    })
}

/// Transplants the scenario of cover-node set `u_set` into a behavior of
/// the base graph (the heart of every proof).
///
/// The base nodes `φ(u_set)` are correct: they run `protocol`'s devices with
/// the inputs their cover representatives had. Every other base node is
/// faulty: on each port toward a correct node `t`, it replays the cover
/// edge trace that fed `t`'s representative — the Fault axiom's
/// `F_A(E₁,…,E_d)` with the `E_i` harvested from the cover run.
///
/// Returns the assembled [`ChainLink`] (with the Locality-axiom scenario
/// match recorded), the base behavior, and the *effective* correct node set
/// after degradation.
///
/// The base system is run contained: a scenario device that panics, breaks
/// the port discipline, or floods a port is quarantined and recorded rather
/// than aborting the refutation. Each misbehaving node is then *degraded* —
/// reclassified as Byzantine-faulty — provided the link's total fault count
/// (masquerading nodes plus degraded nodes) stays within `f`. Degraded
/// nodes are removed from the set the correctness conditions quantify over;
/// the incident evidence rides along in the [`ChainLink`].
///
/// # Errors
///
/// [`RefuteError::ModelViolation`] when the projection of `u_set` is not
/// injective or the transplanted scenario fails to match the cover's;
/// [`RefuteError::Misbehavior`] when degradation would exceed `f`.
// The argument list is the transplant construction's full parameter set;
// bundling unrelated items into an ad-hoc struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transplant(
    protocol: &dyn Protocol,
    cov: &Covering,
    cover_behavior: &SystemBehavior,
    u_set: &BTreeSet<NodeId>,
    faulty_input: Input,
    horizon: u32,
    f: usize,
    policy: &RunPolicy,
) -> Result<(ChainLink, Arc<SystemBehavior>, BTreeSet<NodeId>), RefuteError> {
    crate::profile::span("transplant", || {
        transplant_inner(
            protocol,
            cov,
            cover_behavior,
            u_set,
            faulty_input,
            horizon,
            f,
            policy,
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn transplant_inner(
    protocol: &dyn Protocol,
    cov: &Covering,
    cover_behavior: &SystemBehavior,
    u_set: &BTreeSet<NodeId>,
    faulty_input: Input,
    horizon: u32,
    f: usize,
    policy: &RunPolicy,
) -> Result<(ChainLink, Arc<SystemBehavior>, BTreeSet<NodeId>), RefuteError> {
    let base = cov.base();
    // φ restricted to u_set must be injective (one representative per base
    // node) for the scenario to live in the base graph.
    let mut rep: std::collections::BTreeMap<NodeId, NodeId> = std::collections::BTreeMap::new();
    for &u in u_set {
        if rep.insert(cov.project(u), u).is_some() {
            return Err(RefuteError::ModelViolation {
                reason: format!(
                    "two cover nodes in the scenario project to {}",
                    cov.project(u)
                ),
            });
        }
    }
    let correct: BTreeSet<NodeId> = rep.keys().copied().collect();

    // Harvest the link's assembly first — inputs and masquerade traces pin
    // the base run completely, so they double as its cache key.
    let mut inputs = vec![faulty_input; base.node_count()];
    for (&t, &u) in &rep {
        inputs[t.index()] = cover_behavior.node(u).input;
    }
    let mut masquerade: Vec<(NodeId, Vec<EdgeBehavior>)> = Vec::new();
    for alpha in base.nodes() {
        if correct.contains(&alpha) {
            continue;
        }
        // Port order = sorted base neighbors, matching System::assign.
        let traces: Vec<EdgeBehavior> = base
            .neighbors(alpha)
            .map(|t| {
                let source_edge = match rep.get(&t) {
                    // The cover edge feeding t's representative from an
                    // alpha-projecting neighbor.
                    Some(&u_t) => (cov.lift_neighbor(u_t, alpha), u_t),
                    // t is faulty too; the trace is irrelevant to the
                    // scenario — use alpha's first fiber element's edge for
                    // determinism.
                    None => {
                        let a0 = cov.fiber(alpha)[0];
                        (a0, cov.lift_neighbor(a0, t))
                    }
                };
                cover_behavior.edge(source_edge.0, source_edge.1).clone()
            })
            .collect();
        masquerade.push((alpha, traces));
    }

    // The same key `Certificate::rebuild` derives from the finished link, so
    // verification of a freshly minted certificate replays from the cache;
    // links diverging only near their traces' ends fork a shared prefix
    // snapshot instead of re-simulating from tick 0.
    let correct_sorted: Vec<NodeId> = correct.iter().copied().collect();
    let behavior = memoize_link_run(
        &protocol.name(),
        base,
        &correct_sorted,
        &masquerade,
        &inputs,
        horizon,
        policy,
        || {
            let mut sys = System::new(base.clone());
            for &t in &correct_sorted {
                sys.assign(t, protocol.device(base, t), inputs[t.index()]);
            }
            for (alpha, traces) in &masquerade {
                sys.assign(
                    *alpha,
                    Box::new(ReplayDevice::masquerade(traces.clone())),
                    faulty_input,
                );
            }
            Ok(sys)
        },
        |e| RefuteError::ModelViolation {
            reason: format!("base run failed: {e}"),
        },
    )?;

    // The Locality axiom, checked: the transplanted scenario must equal the
    // cover scenario byte for byte (under φ). Quarantined devices pass this
    // too — determinism makes them misbehave at the same tick in both runs,
    // leaving identical silence and marker snapshots.
    let cover_scenario = cover_behavior.scenario(u_set);
    let base_scenario = behavior.scenario(&correct);
    let map: std::collections::BTreeMap<NodeId, NodeId> =
        u_set.iter().map(|&u| (u, cov.project(u))).collect();
    let matched = cover_scenario.matches(&base_scenario, &map);
    if let Err(reason) = &matched {
        return Err(RefuteError::ModelViolation {
            reason: format!("transplanted scenario diverged (device nondeterminism?): {reason}"),
        });
    }

    // Degradation: misbehaving scenario nodes become Byzantine-faulty if the
    // budget allows, otherwise the refutation cannot proceed soundly.
    let incidents = behavior.misbehavior().to_vec();
    let degraded: BTreeSet<NodeId> = behavior
        .misbehaving_nodes()
        .intersection(&correct)
        .copied()
        .collect();
    let masquerading = base.node_count() - correct.len();
    if masquerading + degraded.len() > f {
        return Err(RefuteError::Misbehavior {
            reason: format!(
                "{} masquerading + {} degraded nodes > f = {f}",
                masquerading,
                degraded.len()
            ),
            incidents,
        });
    }
    let effective: BTreeSet<NodeId> = correct.difference(&degraded).copied().collect();

    let link = ChainLink {
        correct: correct.iter().copied().collect(),
        masquerade,
        inputs,
        scenario_matched: matched.is_ok(),
        decisions: behavior.decisions(),
        horizon,
        misbehavior: incidents,
        degraded: degraded.iter().copied().collect(),
    };
    Ok((link, behavior, effective))
}

/// Splits `0..n` into classes `a`, `b`, `c` of size at most `f` with an
/// `a`–`c` link guaranteed (the first link of the graph goes between `a`
/// and `c`), for the node-bound construction on arbitrary graphs.
pub(crate) fn partition_with_crossing_link(
    g: &Graph,
    f: usize,
) -> Result<[BTreeSet<NodeId>; 3], RefuteError> {
    let n = g.node_count();
    if n < 3 {
        return Err(RefuteError::BadGraph {
            reason: format!("need at least 3 nodes, got {n}"),
        });
    }
    if f == 0 || n > 3 * f {
        return Err(RefuteError::GraphIsAdequate {
            reason: format!("{n} nodes ≥ 3f+1 = {}", 3 * f + 1),
        });
    }
    let (u, v) = *g.links().first().ok_or_else(|| RefuteError::BadGraph {
        reason: "graph has no links".into(),
    })?;
    // Target sizes, each in [1, f] (possible because 3 ≤ n ≤ 3f).
    let sa = n.div_ceil(3);
    let sc = (n - sa).div_ceil(2);
    let sb = n - sa - sc;
    debug_assert!((1..=f).contains(&sa) && (1..=f).contains(&sb) && (1..=f).contains(&sc));
    let mut a: BTreeSet<NodeId> = [u].into();
    let mut c: BTreeSet<NodeId> = [v].into();
    let mut b: BTreeSet<NodeId> = BTreeSet::new();
    for w in g.nodes() {
        if w == u || w == v {
            continue;
        }
        if a.len() < sa {
            a.insert(w);
        } else if c.len() < sc {
            c.insert(w);
        } else {
            b.insert(w);
        }
    }
    debug_assert_eq!(b.len(), sb);
    Ok([a, b, c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    #[test]
    fn partition_respects_sizes_and_link() {
        for (n, f) in [(3, 1), (5, 2), (6, 2), (9, 3)] {
            let g = builders::complete(n);
            let [a, b, c] = partition_with_crossing_link(&g, f).unwrap();
            assert!(a.len() <= f && !a.is_empty());
            assert!(b.len() <= f && !b.is_empty());
            assert!(c.len() <= f && !c.is_empty());
            assert_eq!(a.len() + b.len() + c.len(), n);
            // The first link crosses a–c.
            let (u, v) = g.links()[0];
            assert!(a.contains(&u) && c.contains(&v));
        }
    }

    #[test]
    fn partition_rejects_adequate_graphs() {
        let g = builders::complete(7);
        assert!(matches!(
            partition_with_crossing_link(&g, 2),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }
}
