//! General-case refuters via the footnote-3 collapse.
//!
//! The ring-based refuters ([`super::weak_agreement`],
//! [`super::firing_squad`], [`super::eps_delta_gamma`]) address the paper's
//! core case — the triangle with one fault. The paper handles `n ≤ 3f` "just
//! as above" by partitioning the nodes into three classes; executably, the
//! cleanest route is footnote 3: collapse the partitioned system into a
//! three-node system (a [`crate::reduction::Collapsed`] protocol) and point
//! the triangle refuter at it. If the original protocol solved the problem
//! on `G`, the collapsed protocol would solve it on the triangle — which the
//! certificate concretely contradicts.

use flm_graph::Graph;
use flm_sim::Protocol;

use crate::certificate::Certificate;
use crate::reduction::{collapse_for_node_bound, Collapsed};
use crate::refute::RefuteError;

/// Wraps a protocol on an `n ≤ 3f` graph into its collapsed triangle
/// protocol, erroring when the quotient is not the triangle (some class
/// pair has no links, so the collapse does not produce a three-node
/// complete graph).
fn collapse_to_triangle<P: Protocol>(
    protocol: P,
    g: &Graph,
    f: usize,
) -> Result<Collapsed<P>, RefuteError> {
    let collapsed = collapse_for_node_bound(protocol, g, f).map_err(|e| match e {
        flm_graph::GraphError::BadParameter { reason } => RefuteError::GraphIsAdequate { reason },
        other => RefuteError::Graph(other),
    })?;
    if collapsed.quotient_graph() != &flm_graph::builders::triangle() {
        return Err(RefuteError::BadGraph {
            reason: "the node-bound partition does not quotient to the triangle \
                     (a class pair has no cross links); choose a different partition"
                .into(),
        });
    }
    Ok(collapsed)
}

/// Theorem 2 for general `n ≤ 3f`: collapse, then refute weak agreement on
/// the triangle. The certificate refers to the collapsed protocol.
///
/// # Errors
///
/// See the collapse preconditions above and [`super::weak_agreement`].
pub fn weak_agreement_general<P: Protocol>(
    protocol: P,
    g: &Graph,
    f: usize,
) -> Result<(Certificate, Collapsed<P>), RefuteError> {
    let collapsed = collapse_to_triangle(protocol, g, f)?;
    let tri = flm_graph::builders::triangle();
    let cert = super::weak_agreement(&collapsed, &tri, 1)?;
    Ok((cert, collapsed))
}

/// Theorem 4 for general `n ≤ 3f`: collapse, then refute the firing squad
/// on the triangle.
///
/// # Errors
///
/// See the collapse preconditions above and [`super::firing_squad`].
pub fn firing_squad_general<P: Protocol>(
    protocol: P,
    g: &Graph,
    f: usize,
) -> Result<(Certificate, Collapsed<P>), RefuteError> {
    let collapsed = collapse_to_triangle(protocol, g, f)?;
    let tri = flm_graph::builders::triangle();
    let cert = super::firing_squad(&collapsed, &tri, 1)?;
    Ok((cert, collapsed))
}

/// Theorem 6 for general `n ≤ 3f`: collapse, then refute (ε,δ,γ)-agreement
/// on the triangle.
///
/// # Errors
///
/// See the collapse preconditions above and [`super::eps_delta_gamma`].
pub fn eps_delta_gamma_general<P: Protocol>(
    protocol: P,
    g: &Graph,
    f: usize,
    eps: f64,
    delta: f64,
    gamma: f64,
) -> Result<(Certificate, Collapsed<P>), RefuteError> {
    let collapsed = collapse_to_triangle(protocol, g, f)?;
    let tri = flm_graph::builders::triangle();
    let cert = super::eps_delta_gamma(&collapsed, &tri, 1, eps, delta, gamma)?;
    Ok((cert, collapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;
    use flm_protocols::{Dlpsw, FiringSquadViaBa, WeakViaBa};

    #[test]
    fn weak_agreement_falls_on_k5_with_f2() {
        // WeakViaBA(EIG f=2) genuinely works on K7; on K5 ≤ 3f it must fall.
        let (cert, collapsed) =
            weak_agreement_general(WeakViaBa::new(2), &builders::complete(5), 2).unwrap();
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn firing_squad_falls_on_k6_with_f2() {
        let (cert, collapsed) =
            firing_squad_general(FiringSquadViaBa::new(2), &builders::complete(6), 2).unwrap();
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn eps_delta_gamma_falls_on_k6_with_f2() {
        // DLPSW(f=2) really works on K7 = 3f+1; on K6 ≤ 3f it must fall.
        let (cert, collapsed) =
            eps_delta_gamma_general(Dlpsw::new(2, 4), &builders::complete(6), 2, 0.25, 1.0, 1.0)
                .unwrap();
        cert.verify(&collapsed).unwrap();
    }

    #[test]
    fn general_wrappers_decline_adequate_graphs() {
        assert!(matches!(
            weak_agreement_general(WeakViaBa::new(1), &builders::complete(4), 1),
            Err(RefuteError::GraphIsAdequate { .. })
        ));
    }
}
