//! Counterexample certificates: what a refuter hands back.
//!
//! A certificate records the full contradiction chain of one impossibility
//! argument, specialized to the protocol that was refuted: the covering
//! system that was run, the correct behaviors of the base graph assembled
//! from its scenarios (each justified by a checked scenario match — the
//! Locality and Fault axioms in action), and the concrete correctness
//! condition that failed, with the numbers to show it.
//!
//! Certificates are *checkable*: [`Certificate::verify`] re-executes the
//! violating behavior from scratch — reinstalling the protocol's devices and
//! the recorded masquerade — and confirms the violation reproduces.

use std::collections::BTreeMap;
use std::fmt;

use flm_graph::NodeId;
use flm_sim::behavior::EdgeBehavior;
use flm_sim::replay::ReplayDevice;
use flm_sim::{contain_panics, Decision, DeviceMisbehavior, Input, Protocol, RunPolicy, System};

/// Which theorem of the paper a certificate instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Theorem {
    /// Theorem 1, `3f+1` node bound for Byzantine agreement.
    BaNodes,
    /// Theorem 1, `2f+1` connectivity bound for Byzantine agreement.
    BaConnectivity,
    /// Theorem 2, weak agreement.
    WeakAgreement,
    /// Theorem 4, Byzantine firing squad.
    FiringSquad,
    /// Theorem 5, simple approximate agreement.
    SimpleApprox,
    /// Theorem 6, (ε,δ,γ)-agreement.
    EpsDeltaGamma,
    /// Theorem 8 (and corollaries 12–15), clock synchronization.
    ClockSync,
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Theorem::BaNodes => "Theorem 1 (Byzantine agreement, 3f+1 nodes)",
            Theorem::BaConnectivity => "Theorem 1 (Byzantine agreement, 2f+1 connectivity)",
            Theorem::WeakAgreement => "Theorem 2 (weak agreement)",
            Theorem::FiringSquad => "Theorem 4 (Byzantine firing squad)",
            Theorem::SimpleApprox => "Theorem 5 (simple approximate agreement)",
            Theorem::EpsDeltaGamma => "Theorem 6 ((ε,δ,γ)-agreement)",
            Theorem::ClockSync => "Theorem 8 (clock synchronization)",
        };
        f.write_str(s)
    }
}

/// A correctness condition of one of the paper's problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Condition {
    /// A correct node failed to choose within the required time (the weak
    /// agreement *Choice* condition; implicit termination elsewhere).
    Termination,
    /// The problem's agreement condition.
    Agreement,
    /// The problem's validity condition.
    Validity,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Termination => f.write_str("termination/choice"),
            Condition::Agreement => f.write_str("agreement"),
            Condition::Validity => f.write_str("validity"),
        }
    }
}

/// A violated condition with human-readable evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which condition failed.
    pub condition: Condition,
    /// Index into the certificate's chain of the behavior it failed in.
    pub link: usize,
    /// What concretely went wrong (decisions, bounds, nodes involved).
    pub evidence: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated in chain behavior E{}: {}",
            self.condition,
            self.link + 1,
            self.evidence
        )
    }
}

/// One correct behavior of the base graph in the contradiction chain,
/// together with the masquerade that produced it and what happened in it.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Nodes of the base graph that are correct in this behavior.
    pub correct: Vec<NodeId>,
    /// Faulty nodes and the recorded outedge traces their masquerading
    /// replay devices play (port order = sorted base neighbors).
    pub masquerade: Vec<(NodeId, Vec<EdgeBehavior>)>,
    /// The input assigned to every node.
    pub inputs: Vec<Input>,
    /// Whether the scenario of the correct nodes matched the covering-run
    /// scenario it was transplanted from (the Locality-axiom check).
    pub scenario_matched: bool,
    /// Decisions of all nodes in this behavior.
    pub decisions: Vec<(NodeId, Option<Decision>)>,
    /// Ticks this behavior was run for.
    pub horizon: u32,
    /// Incidents the contained run recorded (panics, port-discipline
    /// breaches, oversized payloads) — the degradation evidence.
    pub misbehavior: Vec<DeviceMisbehavior>,
    /// Nodes of `correct` the degradation policy reclassified as faulty;
    /// correctness conditions were checked over `correct` minus these.
    pub degraded: Vec<NodeId>,
}

/// A machine-checkable counterexample to a protocol's claimed correctness
/// on an inadequate graph.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The theorem instantiated.
    pub theorem: Theorem,
    /// Name of the refuted protocol.
    pub protocol: String,
    /// The base (inadequate) graph.
    pub base: flm_graph::Graph,
    /// The fault budget.
    pub f: usize,
    /// Human-readable description of the covering construction used.
    pub covering: String,
    /// The chain of correct behaviors of the base graph.
    pub chain: Vec<ChainLink>,
    /// The run policy every behavior in the chain was executed under.
    /// Verification replays with the same budgets — a certificate built
    /// under a non-default policy (tighter tick caps, smaller payload
    /// limits) carries misbehavior and quarantine evidence that only
    /// reproduces under that policy.
    pub policy: RunPolicy,
    /// The condition that failed, and where.
    pub violation: Violation,
}

/// Errors from [`Certificate::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The certificate's violation did not reproduce on re-execution.
    NotReproduced {
        /// Explanation of the divergence.
        reason: String,
    },
    /// The certificate is structurally malformed.
    Malformed {
        /// Explanation of the defect.
        reason: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotReproduced { reason } => {
                write!(f, "violation did not reproduce: {reason}")
            }
            VerifyError::Malformed { reason } => write!(f, "malformed certificate: {reason}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl Certificate {
    /// Independently re-executes the *violating* chain behavior — correct
    /// nodes run `protocol`'s devices afresh, faulty nodes replay the
    /// recorded masquerade — and checks that the recorded decisions
    /// reproduce exactly.
    ///
    /// This is deliberately minimal trusted machinery: it uses only the
    /// simulator and the recorded edge traces, not the refuter that built
    /// the certificate.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when re-execution diverges from the record.
    pub fn verify(&self, protocol: &dyn Protocol) -> Result<(), VerifyError> {
        crate::profile::span("verify", || self.verify_inner(protocol))
    }

    fn verify_inner(&self, protocol: &dyn Protocol) -> Result<(), VerifyError> {
        let link = self
            .chain
            .get(self.violation.link)
            .ok_or_else(|| VerifyError::Malformed {
                reason: format!("violation points at chain link {}", self.violation.link),
            })?;
        let replayed = self.rebuild(protocol, link)?;
        if replayed.misbehavior() != link.misbehavior.as_slice() {
            return Err(VerifyError::NotReproduced {
                reason: format!(
                    "re-execution recorded misbehavior {:?}, certificate records {:?}",
                    replayed.misbehavior(),
                    link.misbehavior
                ),
            });
        }
        let recorded: BTreeMap<NodeId, Option<Decision>> = link.decisions.iter().cloned().collect();
        if recorded.len() != link.decisions.len() {
            return Err(VerifyError::Malformed {
                reason: format!(
                    "chain link records {} decisions over {} distinct nodes",
                    link.decisions.len(),
                    recorded.len()
                ),
            });
        }
        // Exact coverage, both directions: every replayed node must have a
        // recorded decision that matches, and every recorded decision must
        // be for a node that was actually replayed. The replay covers the
        // whole base graph, so the converse reduces to a cardinality check —
        // without it, decisions invented for nonexistent nodes would verify
        // silently.
        let replayed_decisions = replayed.decisions();
        if recorded.len() != replayed_decisions.len() {
            return Err(VerifyError::Malformed {
                reason: format!(
                    "chain link records decisions for {} nodes, base graph has {}",
                    recorded.len(),
                    replayed_decisions.len()
                ),
            });
        }
        for (v, d) in replayed_decisions {
            let want = recorded.get(&v).ok_or_else(|| VerifyError::Malformed {
                reason: format!("no recorded decision for {v}"),
            })?;
            let matches = match (&d, want) {
                (Some(Decision::Real(a)), Some(Decision::Real(b))) => a.to_bits() == b.to_bits(),
                (a, b) => a == b,
            };
            if !matches {
                return Err(VerifyError::NotReproduced {
                    reason: format!("{v} decided {d:?}, certificate records {want:?}"),
                });
            }
        }
        if !link.scenario_matched {
            return Err(VerifyError::Malformed {
                reason: "violating link's scenario match failed at construction".into(),
            });
        }
        Ok(())
    }

    /// Re-executes the violating chain behavior and returns the full
    /// recorded behavior — the raw material for timeline inspection
    /// ([`flm_sim::SystemBehavior::render_timeline`]).
    ///
    /// # Errors
    ///
    /// [`VerifyError::Malformed`] when the certificate's violation index or
    /// masquerade is unusable.
    pub fn replay_violating_behavior(
        &self,
        protocol: &dyn Protocol,
    ) -> Result<std::sync::Arc<flm_sim::SystemBehavior>, VerifyError> {
        let link = self
            .chain
            .get(self.violation.link)
            .ok_or_else(|| VerifyError::Malformed {
                reason: format!("violation points at chain link {}", self.violation.link),
            })?;
        self.rebuild(protocol, link)
    }

    /// Re-executes one chain link and returns the behavior.
    ///
    /// The audit path is panic-free by construction: node ids and input
    /// shapes are validated before any indexed access or `System::assign`,
    /// device construction runs under panic containment (constructors may
    /// assert graph-shape invariants a corrupted base graph violates), and
    /// the run itself is contained under the certificate's recorded policy.
    fn rebuild(
        &self,
        protocol: &dyn Protocol,
        link: &ChainLink,
    ) -> Result<std::sync::Arc<flm_sim::SystemBehavior>, VerifyError> {
        let n = self.base.node_count();
        let malformed = |reason: String| VerifyError::Malformed { reason };
        if link.inputs.len() != n {
            return Err(malformed(format!(
                "chain link carries {} inputs for a {}-node base graph",
                link.inputs.len(),
                n
            )));
        }
        let mut assigned = vec![false; n];
        let faulty = link.masquerade.iter().map(|(v, _)| v);
        for &v in link.correct.iter().chain(faulty) {
            if v.index() >= n {
                return Err(malformed(format!(
                    "{v} is not a node of the {n}-node base graph"
                )));
            }
            if assigned[v.index()] {
                return Err(malformed(format!("{v} is assigned more than once")));
            }
            assigned[v.index()] = true;
        }
        // Keyed off the *actual* protocol's name (not the recorded string),
        // so the cache never aliases two protocols under one recorded name —
        // and a refute-then-verify sequence in one process, which derives
        // the identical key in `refute::transplant`, replays from the cache
        // instead of re-running the system. Links that only extend or
        // perturb another link's trace tail fork the shared prefix
        // snapshot from the run-prefix trie.
        crate::refute::memoize_link_run(
            &protocol.name(),
            &self.base,
            &link.correct,
            &link.masquerade,
            &link.inputs,
            link.horizon,
            &self.policy,
            || {
                let mut sys = System::new(self.base.clone());
                for &v in &link.correct {
                    let device =
                        contain_panics(|| protocol.device(&self.base, v)).map_err(|msg| {
                            malformed(format!("device construction for {v} panicked: {msg}"))
                        })?;
                    sys.assign(v, device, link.inputs[v.index()]);
                }
                for (v, traces) in &link.masquerade {
                    sys.assign(
                        *v,
                        Box::new(ReplayDevice::masquerade(traces.clone())),
                        link.inputs[v.index()],
                    );
                }
                Ok(sys)
            },
            // Contained, like the refuter's own runs: a certificate over a
            // hostile protocol must verify without aborting, reproducing the
            // recorded misbehavior instead. The recorded policy matters — it
            // caps the horizon and sets the payload budget the evidence was
            // collected under.
            |e| VerifyError::Malformed {
                reason: format!("re-execution failed: {e}"),
            },
        )
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "COUNTEREXAMPLE — {}", self.theorem)?;
        writeln!(
            f,
            "  protocol: {}   graph: {} nodes, f = {}",
            self.protocol,
            self.base.node_count(),
            self.f
        )?;
        writeln!(f, "  covering: {}", self.covering)?;
        if self.policy != RunPolicy::default() {
            writeln!(
                f,
                "  policy: max {} ticks, {} B payloads",
                self.policy.max_ticks, self.policy.max_payload_bytes
            )?;
        }
        for (i, link) in self.chain.iter().enumerate() {
            writeln!(
                f,
                "  E{}: correct {:?}, faulty {:?}, scenario match: {}",
                i + 1,
                link.correct,
                link.masquerade.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
                if link.scenario_matched {
                    "ok"
                } else {
                    "FAILED"
                }
            )?;
            for m in &link.misbehavior {
                writeln!(f, "      misbehavior: {m}")?;
            }
            if !link.degraded.is_empty() {
                writeln!(f, "      degraded to faulty: {:?}", link.degraded)?;
            }
            let ds: Vec<String> = link
                .decisions
                .iter()
                .map(|(v, d)| match d {
                    Some(Decision::Bool(b)) => format!("{v}={}", u8::from(*b)),
                    Some(Decision::Real(r)) => format!("{v}={r:.4}"),
                    Some(Decision::Fire) => format!("{v}=FIRE"),
                    None => format!("{v}=⊥"),
                })
                .collect();
            writeln!(f, "      decisions: {}", ds.join(" "))?;
        }
        write!(f, "  {}", self.violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(Theorem::BaNodes.to_string().contains("3f+1"));
        assert!(Condition::Agreement.to_string().contains("agreement"));
        let v = Violation {
            condition: Condition::Validity,
            link: 0,
            evidence: "chose 1 with all inputs 0".into(),
        };
        assert!(v.to_string().contains("E1"));
    }
}
