//! Load generation: `N` client connections firing a deterministic mix of
//! refute/verify/audit requests at a server, with retry-on-overload.
//!
//! This is both a CLI feature (`flm-client load`) and the machinery behind
//! the `BENCH_serve.json` throughput rows. The request schedule is a pure
//! function of the mix and the connection index, so two runs against the
//! same server issue byte-identical request streams — warm-cache behavior
//! is reproducible.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flm_sim::RunPolicy;

use crate::client::{Client, ClientError, StatsView};
use crate::query::{self, Theorem};
use crate::rpc::{RefuteParams, Verdict};
use crate::shard;

/// Relative weights of the request kinds in the generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of refute requests.
    pub refute: u32,
    /// Weight of verify requests.
    pub verify: u32,
    /// Weight of audit requests.
    pub audit: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Mix {
            refute: 1,
            verify: 1,
            audit: 1,
        }
    }
}

impl Mix {
    /// Parses a `refute:verify:audit` weight triple, e.g. `2:1:1`.
    ///
    /// # Errors
    ///
    /// Returns a message when the string is not three `:`-separated
    /// non-negative integers with a positive sum.
    pub fn parse(s: &str) -> Result<Mix, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--mix wants REFUTE:VERIFY:AUDIT, got {s:?}"));
        }
        let parse = |p: &str| -> Result<u32, String> {
            p.parse().map_err(|_| format!("--mix: bad weight {p:?}"))
        };
        let mix = Mix {
            refute: parse(parts[0])?,
            verify: parse(parts[1])?,
            audit: parse(parts[2])?,
        };
        if mix.refute + mix.verify + mix.audit == 0 {
            return Err("--mix: at least one weight must be positive".into());
        }
        Ok(mix)
    }

    /// The deterministic request schedule: one kind per slot, weights
    /// interleaved round-robin (`2:1:1` yields `R R V A R R V A …`).
    fn schedule(&self, len: usize) -> Vec<Kind> {
        let mut pattern = Vec::new();
        for _ in 0..self.refute {
            pattern.push(Kind::Refute);
        }
        for _ in 0..self.verify {
            pattern.push(Kind::Verify);
        }
        for _ in 0..self.audit {
            pattern.push(Kind::Audit);
        }
        (0..len).map(|i| pattern[i % pattern.len()]).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Refute,
    Verify,
    Audit,
}

/// What one load run observed, aggregated over every connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests attempted (including retried ones once each).
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Overloaded answers observed (each is followed by a reconnect and a
    /// retry; an overload is shed load, not an error).
    pub overloaded: u64,
    /// Typed error responses.
    pub errors: u64,
    /// Transport failures (connection reset, timeout) — real *dropped*
    /// connections, which a healthy load-shedding server never produces.
    pub transport_errors: u64,
    /// Requests abandoned after exhausting retries.
    pub abandoned: u64,
    /// Response payload bytes received.
    pub bytes_received: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} connections, {} requests in {:.3}s ({:.0} req/s)",
            self.connections,
            self.requests,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
        )?;
        write!(
            f,
            "ok {}, overloaded {}, errors {}, transport errors {}, abandoned {}, {} KiB received",
            self.ok,
            self.overloaded,
            self.errors,
            self.transport_errors,
            self.abandoned,
            self.bytes_received / 1024,
        )
    }
}

/// Retries per logical request before counting it abandoned.
const MAX_ATTEMPTS: u32 = 5;

/// Drives `connections` concurrent clients, each issuing `requests_per_conn`
/// requests drawn from `mix` against `addr`. Refute requests query
/// `theorem`'s canonical defaults; verify/audit requests carry a locally
/// pre-built certificate for the same query, so the server's answer stream
/// exercises all three code paths. Overloaded answers reconnect and retry
/// with linear backoff.
///
/// # Errors
///
/// Returns a message when the local certificate pre-build fails (the server
/// is never contacted in that case).
pub fn run(
    addr: &str,
    connections: usize,
    requests_per_conn: usize,
    mix: Mix,
    theorem: Theorem,
) -> Result<LoadReport, String> {
    // Verify/audit payloads are built locally, once: the same bytes the
    // server would serve for this query (byte-determinism is the whole
    // point), so the load stream needs no warm-up request.
    let cert: Arc<Vec<u8>> = Arc::new(
        query::refute_to_bytes(theorem, None, None, 1, RunPolicy::default())
            .map_err(|e| format!("pre-building the verify/audit payload: {e}"))?,
    );
    let start = Instant::now();
    let worker = |conn_index: usize| -> LoadReport {
        let mut report = LoadReport::default();
        let schedule = mix.schedule(requests_per_conn);
        // Stagger each connection's schedule so simultaneous connections
        // don't issue identical request sequences in lock-step.
        let offset = conn_index % schedule.len().max(1);
        let mut client = None;
        for slot in 0..schedule.len() {
            let kind = schedule[(slot + offset) % schedule.len()];
            report.requests += 1;
            let mut done = false;
            for attempt in 0..MAX_ATTEMPTS {
                let c = match client.as_mut() {
                    Some(c) => c,
                    None => match Client::connect(addr) {
                        // `Option::insert` hands back the borrow directly —
                        // the `.expect("just inserted")` it replaces could
                        // panic the whole campaign instead of counting the
                        // failure like every other path here.
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            report.transport_errors += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(attempt) + 1));
                            continue;
                        }
                    },
                };
                let outcome = match kind {
                    Kind::Refute => c
                        .refute(theorem.name(), None, None, 1, None)
                        .map(|bytes| bytes.len()),
                    Kind::Verify => c.verify(&cert).map(|(verdict, detail)| {
                        if verdict == Verdict::Verified {
                            detail.len()
                        } else {
                            0
                        }
                    }),
                    Kind::Audit => c
                        .audit(&cert)
                        .map(|(_, report, diagnostics)| report.len() + diagnostics.len()),
                };
                match outcome {
                    Ok(bytes) => {
                        report.ok += 1;
                        report.bytes_received += bytes as u64;
                        done = true;
                        break;
                    }
                    Err(ClientError::Overloaded { .. }) => {
                        // Shed: the server answered and closed. Reconnect
                        // with a linear backoff and retry the same request.
                        report.overloaded += 1;
                        client = None;
                        std::thread::sleep(Duration::from_millis(u64::from(attempt) * 2 + 1));
                    }
                    Err(ClientError::ErrorResponse { .. }) => {
                        report.errors += 1;
                        done = true;
                        break;
                    }
                    Err(_) => {
                        report.transport_errors += 1;
                        client = None;
                        std::thread::sleep(Duration::from_millis(u64::from(attempt) + 1));
                    }
                }
            }
            if !done {
                report.abandoned += 1;
            }
        }
        report
    };
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| scope.spawn(move || worker(i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut total = LoadReport {
        connections,
        elapsed: start.elapsed(),
        ..LoadReport::default()
    };
    for r in reports {
        total.requests += r.requests;
        total.ok += r.ok;
        total.overloaded += r.overloaded;
        total.errors += r.errors;
        total.transport_errors += r.transport_errors;
        total.abandoned += r.abandoned;
        total.bytes_received += r.bytes_received;
    }
    Ok(total)
}

/// One key range's traffic in a router run. A "range" is the slice of the
/// key space one shard owns; the theorem families landing in it are listed
/// so the numbers are attributable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeReport {
    /// The owning shard.
    pub shard: u32,
    /// Theorem families whose canonical default query lands in this range.
    pub families: Vec<&'static str>,
    /// Refute requests this run sent into the range.
    pub requests: u64,
    /// Requests answered with certificate bytes.
    pub ok: u64,
    /// Typed `ShardDown` answers (the range's shard was unreachable).
    pub shard_down: u64,
    /// Certificate-store hits (memory + disk tiers) the range's shard
    /// gained during the run, from the before/after cluster stats delta.
    /// Store hits are per *request* — a request either came off the store
    /// or paid a simulation — unlike run-cache hits, which count memoized
    /// sub-runs inside a search and can exceed the request count.
    pub warm_hits_gained: u64,
}

impl RangeReport {
    /// Store hits per answered request — 1.0 means the range served the
    /// whole run off its certificate store without simulating once.
    /// Run-cache warmth shows up as latency, not in this rate, so a
    /// store-less shard reports 0 however warm it runs.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.warm_hits_gained as f64 / self.ok as f64
        }
    }
}

/// What one router-mode load run observed: the flat totals plus a
/// per-key-range breakdown from the cluster-stats delta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterLoadReport {
    /// The flat request totals, same semantics as [`run`].
    pub totals: LoadReport,
    /// Shards the router reported up when the run started.
    pub shards_up: u32,
    /// Shards in the topology.
    pub shard_count: u32,
    /// One row per key range (= per shard), in shard order.
    pub ranges: Vec<RangeReport>,
}

impl fmt::Display for RouterLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.totals)?;
        writeln!(
            f,
            "cluster: {}/{} shards up at start",
            self.shards_up, self.shard_count
        )?;
        writeln!(
            f,
            "{:>5}  {:>8}  {:>6}  {:>10}  {:>8}  families",
            "range", "requests", "ok", "store hits", "hit rate"
        )?;
        for range in &self.ranges {
            writeln!(
                f,
                "{:>5}  {:>8}  {:>6}  {:>10}  {:>7.0}%  {}",
                range.shard,
                range.requests,
                range.ok,
                range.warm_hits_gained,
                range.hit_rate() * 100.0,
                if range.families.is_empty() {
                    "-".to_owned()
                } else {
                    range.families.join(",")
                }
            )?;
        }
        Ok(())
    }
}

/// Router-mode load: drives refute requests for *all seven* theorem
/// families (at canonical defaults) through a router, then reports per-key
/// range — requests, successes, typed `ShardDown` answers, and the store
/// hits each shard gained, read from the router's cluster-stats delta.
///
/// # Errors
///
/// Returns a message when `addr` does not answer Stats with a cluster view
/// (i.e. it is a plain shard, not a router).
pub fn run_router(
    addr: &str,
    connections: usize,
    requests_per_conn: usize,
) -> Result<RouterLoadReport, String> {
    let before = cluster_snapshot(addr)?;
    let shard_count = before.shards.len() as u32;
    // Which range does each family's canonical default query land in?
    let owners: Vec<u32> = Theorem::ALL
        .iter()
        .map(|t| {
            let params = RefuteParams {
                theorem: t.name().into(),
                protocol: None,
                graph: None,
                f: 1,
                policy: None,
            };
            let key = shard::routing_key(&params).expect("canonical family names parse");
            shard::owner_for_count(shard_count.max(1), key.fingerprint())
        })
        .collect();

    let start = Instant::now();
    let worker = |conn_index: usize| -> (LoadReport, Vec<RangeReport>) {
        let mut report = LoadReport::default();
        let mut ranges: Vec<RangeReport> = (0..shard_count)
            .map(|shard| RangeReport {
                shard,
                ..RangeReport::default()
            })
            .collect();
        let offset = conn_index % Theorem::ALL.len();
        let mut client = None;
        for slot in 0..requests_per_conn {
            let family = (slot + offset) % Theorem::ALL.len();
            let theorem = Theorem::ALL[family];
            let range = &mut ranges[owners[family] as usize];
            report.requests += 1;
            range.requests += 1;
            let mut done = false;
            for attempt in 0..MAX_ATTEMPTS {
                let c = match client.as_mut() {
                    Some(c) => c,
                    None => match Client::connect(addr) {
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            report.transport_errors += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(attempt) + 1));
                            continue;
                        }
                    },
                };
                match c.refute(theorem.name(), None, None, 1, None) {
                    Ok(bytes) => {
                        report.ok += 1;
                        report.bytes_received += bytes.len() as u64;
                        range.ok += 1;
                        done = true;
                        break;
                    }
                    Err(ClientError::ShardDown { .. }) => {
                        // The range is degraded; retrying on this
                        // connection is correct (the router heals it).
                        range.shard_down += 1;
                        report.errors += 1;
                        done = true;
                        break;
                    }
                    Err(ClientError::Overloaded { .. }) => {
                        report.overloaded += 1;
                        client = None;
                        std::thread::sleep(Duration::from_millis(u64::from(attempt) * 2 + 1));
                    }
                    Err(ClientError::ErrorResponse { .. } | ClientError::WrongShard { .. }) => {
                        report.errors += 1;
                        done = true;
                        break;
                    }
                    Err(_) => {
                        report.transport_errors += 1;
                        client = None;
                        std::thread::sleep(Duration::from_millis(u64::from(attempt) + 1));
                    }
                }
            }
            if !done {
                report.abandoned += 1;
            }
        }
        (report, ranges)
    };
    let results: Vec<(LoadReport, Vec<RangeReport>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| scope.spawn(move || worker(i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut totals = LoadReport {
        connections,
        elapsed: start.elapsed(),
        ..LoadReport::default()
    };
    let mut ranges: Vec<RangeReport> = (0..shard_count)
        .map(|shard| RangeReport {
            shard,
            families: Theorem::ALL
                .iter()
                .zip(&owners)
                .filter(|(_, &o)| o == shard)
                .map(|(t, _)| t.name())
                .collect(),
            ..RangeReport::default()
        })
        .collect();
    for (r, conn_ranges) in results {
        totals.requests += r.requests;
        totals.ok += r.ok;
        totals.overloaded += r.overloaded;
        totals.errors += r.errors;
        totals.transport_errors += r.transport_errors;
        totals.abandoned += r.abandoned;
        totals.bytes_received += r.bytes_received;
        for (total_range, conn_range) in ranges.iter_mut().zip(conn_ranges) {
            total_range.requests += conn_range.requests;
            total_range.ok += conn_range.ok;
            total_range.shard_down += conn_range.shard_down;
        }
    }
    let after = cluster_snapshot(addr)?;
    for range in &mut ranges {
        // Store tiers only: per-request warmth. The run cache counts
        // memoized sub-runs inside a search and would overshoot the
        // request count on any simulating shard.
        let warm = |snap: &crate::rpc::ClusterStatsReport| {
            snap.shards
                .iter()
                .find(|s| s.shard == range.shard)
                .and_then(|s| s.report.as_ref())
                .map_or(0, |r| r.store_mem_hits + r.store_disk_hits)
        };
        range.warm_hits_gained = warm(&after).saturating_sub(warm(&before));
    }
    Ok(RouterLoadReport {
        totals,
        shards_up: before.shards_up() as u32,
        shard_count,
        ranges,
    })
}

fn cluster_snapshot(addr: &str) -> Result<crate::rpc::ClusterStatsReport, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("connecting to router {addr}: {e}"))?;
    match client.stats_view().map_err(|e| e.to_string())? {
        StatsView::Cluster(report) => Ok(report),
        StatsView::Single(_) => Err(format!(
            "{addr} answered single-server stats; --router mode needs an flm-router address"
        )),
    }
}

/// What one simultaneous-ping wave observed (see [`ping_wave`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PingWaveReport {
    /// Sockets the wave tried to open.
    pub connections: usize,
    /// Pings answered with a correctly echoed pong.
    pub ok: u64,
    /// Typed `Overloaded` answers (shed load, not dropped sockets).
    pub overloaded: u64,
    /// Connect failures, write failures, read failures, or wrong answers —
    /// anything a healthy server must not produce.
    pub transport_errors: u64,
    /// Wall-clock duration of the whole wave.
    pub elapsed: Duration,
}

impl fmt::Display for PingWaveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} simultaneous connections in {:.3}s: ok {}, overloaded {}, transport errors {}",
            self.connections,
            self.elapsed.as_secs_f64(),
            self.ok,
            self.overloaded,
            self.transport_errors,
        )
    }
}

/// Opens `connections` sockets *simultaneously*, writes one zero-hold ping
/// on every socket, then collects every pong. All sockets are held open
/// until the last response arrives, so a server passing this with `ok ==
/// connections` demonstrably served that many concurrent connections
/// without dropping one. The single-threaded write-all-then-read-all shape
/// is sound because ping frames and pongs are tiny: the kernel's socket
/// buffers absorb the whole wave on both sides.
pub fn ping_wave(addr: &str, connections: usize) -> PingWaveReport {
    use crate::frame::{read_frame, write_frame, DEFAULT_MAX_BODY_BYTES};
    use crate::rpc::{Request, Response};

    let start = Instant::now();
    let mut report = PingWaveReport {
        connections,
        ..PingWaveReport::default()
    };
    // Phase 1: connect everything. A slot that never connects (even after
    // linear-backoff retries against a transient accept-backlog overflow)
    // is a counted transport error, not a panic.
    let mut socks: Vec<Option<std::net::TcpStream>> = Vec::with_capacity(connections);
    for _ in 0..connections {
        let mut sock = None;
        for attempt in 0..MAX_ATTEMPTS {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                    sock = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(u64::from(attempt) + 1)),
            }
        }
        if sock.is_none() {
            report.transport_errors += 1;
        }
        socks.push(sock);
    }
    // Phase 2: one ping per socket, all written before any response is read.
    for (i, sock) in socks.iter_mut().enumerate() {
        let Some(s) = sock.as_mut() else { continue };
        let request = Request::Ping {
            payload: (i as u32).to_le_bytes().to_vec(),
            hold_ms: 0,
        };
        if write_frame(s, &request.to_frame()).is_err() {
            report.transport_errors += 1;
            *sock = None;
        }
    }
    // Phase 3: collect every pong; the sockets stay open until all arrive.
    for (i, sock) in socks.iter_mut().enumerate() {
        let Some(s) = sock.as_mut() else { continue };
        let response = read_frame(s, DEFAULT_MAX_BODY_BYTES)
            .ok()
            .and_then(|frame| Response::from_frame(&frame).ok());
        match response {
            Some(Response::Pong { payload }) if payload == (i as u32).to_le_bytes() => {
                report.ok += 1;
            }
            Some(Response::Overloaded { .. }) => report.overloaded += 1,
            _ => report.transport_errors += 1,
        }
    }
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        assert_eq!(
            Mix::parse("2:1:1").unwrap(),
            Mix {
                refute: 2,
                verify: 1,
                audit: 1
            }
        );
        assert!(Mix::parse("1:1").is_err());
        assert!(Mix::parse("0:0:0").is_err());
        assert!(Mix::parse("a:1:1").is_err());
    }

    #[test]
    fn schedule_is_deterministic_and_weighted() {
        let mix = Mix {
            refute: 2,
            verify: 1,
            audit: 1,
        };
        let s = mix.schedule(8);
        assert_eq!(s.len(), 8);
        assert_eq!(s.iter().filter(|k| **k == Kind::Refute).count(), 4);
        assert_eq!(s.iter().filter(|k| **k == Kind::Verify).count(), 2);
        assert_eq!(s.iter().filter(|k| **k == Kind::Audit).count(), 2);
        assert_eq!(s, mix.schedule(8));
    }

    /// Regression for the reconnect path: a server that is never reachable
    /// must yield a report full of counted transport errors and abandoned
    /// requests — the `.expect("just inserted")` this pins against panicked
    /// the generator mid-campaign instead.
    #[test]
    fn unreachable_server_is_counted_not_a_panic() {
        // Port 1 on loopback: nothing listens there, so every connect is
        // refused immediately.
        let report = run("127.0.0.1:1", 2, 2, Mix::default(), Theorem::BaNodes).unwrap();
        assert_eq!(report.ok, 0);
        assert_eq!(report.abandoned, 4, "{report}");
        assert_eq!(
            report.transport_errors,
            u64::from(MAX_ATTEMPTS) * 4,
            "{report}"
        );
    }

    #[test]
    fn report_renders_throughput() {
        let report = LoadReport {
            connections: 2,
            requests: 10,
            ok: 10,
            elapsed: Duration::from_secs(2),
            ..LoadReport::default()
        };
        assert!((report.throughput_rps() - 5.0).abs() < 1e-9);
        assert!(report.to_string().contains("2 connections"));
    }
}
