//! Shard topology: who owns which canonical query key.
//!
//! A cluster is N `flm-serve` processes plus a router, all agreeing on one
//! [`ShardMap`] — an ordered list of shard addresses whose index *is* the
//! shard id. Ownership is rendezvous (highest-random-weight) hashing: for a
//! key fingerprint `fp`, every shard id gets a mixed weight and the highest
//! weight owns the key. Rendezvous gives the two properties the cluster
//! leans on:
//!
//! * **Determinism.** The owner is a pure function of `(shard count, key
//!   bytes)` — no state, no coordination, stable across restarts. The
//!   router and every shard compute it independently and must agree, which
//!   is why the map has a canonical wire encoding ([`ShardMap::encode`]):
//!   byte-identical maps, byte-identical ownership.
//! * **Minimal movement.** Adding or removing one shard reassigns only the
//!   keys whose argmax changed — on average `1/N` of the space — which is
//!   what makes [`rebalance`] shipping proportional to the topology change
//!   rather than to the store size.
//!
//! Refutation requests are routed by [`routing_key`]: the canonical query
//! key computed from the request *as sent* (requested-or-default policy,
//! before the server-side clamp), so the router and the shard agree without
//! sharing policy ceilings. Store entries are owned by their stored key
//! bytes directly ([`ShardMap::owner_of_bytes`]); the two coincide whenever
//! clients run at the default policy, and both are deterministic always.

use std::fmt;
use std::path::Path;

use flm_sim::runcache::{fingerprint, RunKey};
use flm_sim::wire::{Reader, Writer};

use crate::query::{self, QueryError, Theorem};
use crate::rpc::RefuteParams;
use crate::store;

/// Sanity cap on shard count (the wire decode refuses more, so a hostile
/// map cannot force allocation).
pub const MAX_SHARDS: usize = 1 << 16;

/// An ordered shard topology: index = shard id, value = address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    addrs: Vec<String>,
}

impl ShardMap {
    /// Builds a map from addresses in shard-id order.
    ///
    /// # Errors
    ///
    /// Rejects an empty list, more than [`MAX_SHARDS`] entries, and blank
    /// addresses.
    pub fn new(addrs: Vec<String>) -> Result<ShardMap, String> {
        if addrs.is_empty() {
            return Err("a shard map needs at least one shard".into());
        }
        if addrs.len() > MAX_SHARDS {
            return Err(format!(
                "{} shards is past the {MAX_SHARDS} cap",
                addrs.len()
            ));
        }
        if let Some(blank) = addrs.iter().position(|a| a.trim().is_empty()) {
            return Err(format!("shard {blank} has a blank address"));
        }
        Ok(ShardMap { addrs })
    }

    /// Parses a comma-separated peer list (`--peers a:1,b:2,c:3`) into a
    /// map; entry order is shard-id order.
    ///
    /// # Errors
    ///
    /// Same constraints as [`ShardMap::new`].
    pub fn parse_peers(list: &str) -> Result<ShardMap, String> {
        ShardMap::new(list.split(',').map(|s| s.trim().to_owned()).collect())
    }

    /// Number of shards.
    pub fn count(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// The address of one shard.
    pub fn addr(&self, shard: u32) -> &str {
        &self.addrs[shard as usize]
    }

    /// All addresses, in shard-id order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The shard owning a canonical key.
    pub fn owner_of(&self, key: &RunKey) -> u32 {
        owner_for_count(self.count(), key.fingerprint())
    }

    /// The shard owning raw canonical key bytes (a store sidecar, a
    /// FetchCert/PutCert body).
    pub fn owner_of_bytes(&self, key: &[u8]) -> u32 {
        owner_for_count(self.count(), fingerprint(key))
    }

    /// Canonical wire encoding: `u32` count, then each address as a
    /// length-prefixed string. Two processes hold the same topology exactly
    /// when these bytes are identical — the byte-agreement tests pin this.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.count());
        for addr in &self.addrs {
            w.str(addr);
        }
        w.finish()
    }

    /// Decodes [`ShardMap::encode`] bytes.
    ///
    /// # Errors
    ///
    /// Truncated bytes, trailing bytes, or a count past [`MAX_SHARDS`].
    pub fn decode(bytes: &[u8]) -> Result<ShardMap, String> {
        let mut r = Reader::new(bytes);
        let count = r.u32().map_err(|e| format!("shard map count: {e}"))?;
        if count as usize > MAX_SHARDS {
            return Err(format!("{count} shards is past the {MAX_SHARDS} cap"));
        }
        let mut addrs = Vec::with_capacity(count as usize);
        for shard in 0..count {
            addrs.push(
                r.str()
                    .map_err(|e| format!("shard {shard} address: {e}"))?
                    .to_owned(),
            );
        }
        if !r.is_empty() {
            return Err(format!("{} trailing bytes after shard map", r.remaining()));
        }
        ShardMap::new(addrs)
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shards [", self.count())?;
        for (i, addr) in self.addrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}={addr}")?;
        }
        write!(f, "]")
    }
}

/// Rendezvous ownership over shard *ids*: the owner of fingerprint `fp`
/// among `count` shards is the id with the highest mixed weight. Ids (not
/// addresses) carry the hash so ownership survives address changes — a
/// shard restarted on a new port still owns its keys.
pub fn owner_for_count(count: u32, fp: u64) -> u32 {
    assert!(count > 0, "ownership over zero shards");
    (0..count)
        .max_by_key(|&shard| rendezvous_weight(shard, fp))
        .unwrap_or(0)
}

/// The HRW weight of one `(shard, fingerprint)` pair: the fingerprint
/// perturbed by a per-shard odd constant, then finalized with the
/// splitmix64 mixer so single-bit fingerprint differences flip roughly half
/// the weight bits.
fn rendezvous_weight(shard: u32, fp: u64) -> u64 {
    let salt = (u64::from(shard) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut x = fp ^ salt;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The key a refutation request is *routed* by: the canonical query key of
/// the request as sent, with the requested-or-default policy (no
/// server-side clamp — the router cannot know a shard's ceiling, so routing
/// hashes only what is on the wire). Router and shard both call this, which
/// is the agreement that makes `WrongShard` a misconfiguration signal
/// rather than a steady-state cost.
///
/// # Errors
///
/// [`QueryError::UnknownTheorem`] when the family name does not parse.
pub fn routing_key(params: &RefuteParams) -> Result<RunKey, QueryError> {
    let theorem = Theorem::parse(&params.theorem)?;
    let policy = params.policy.unwrap_or_default();
    Ok(query::canonical_query_key(
        theorem,
        params.protocol.as_deref(),
        params.graph.as_ref(),
        params.f as usize,
        &policy,
    ))
}

/// What one [`rebalance`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Committed entries found in the store directory.
    pub examined: u64,
    /// Entries already owned by `local_shard` (left in place).
    pub owned: u64,
    /// Misplaced entries successfully shipped to their owner.
    pub shipped: u64,
    /// Misplaced entries whose ship failed (owner unreachable, rejected).
    pub failed: u64,
    /// Shipped entries removed locally (`remove = true` only).
    pub removed: u64,
}

impl fmt::Display for RebalanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries examined: {} owned, {} shipped, {} failed, {} removed",
            self.examined, self.owned, self.shipped, self.failed, self.removed
        )
    }
}

/// Walks the store directory at `dir` and ships every entry whose owner
/// under `map` is not `local_shard` to its owner via `PutCert` (the
/// receiver verifies before owning — the ship-verify-then-own rule). One
/// connection per destination shard is opened lazily and reused. With
/// `remove`, each successfully shipped entry is deleted locally (sidecar
/// first, so a racing lookup sees a clean miss).
///
/// Failures are counted, not fatal: a down owner leaves its entries in
/// place for the next pass.
///
/// # Errors
///
/// Only the directory walk itself ([`store::walk_entries`]) and a
/// `local_shard` outside the map are errors.
pub fn rebalance(
    dir: &Path,
    map: &ShardMap,
    local_shard: u32,
    remove: bool,
) -> Result<RebalanceReport, String> {
    if local_shard >= map.count() {
        return Err(format!(
            "--shard-id {local_shard} is outside the {}-shard map",
            map.count()
        ));
    }
    let entries =
        store::walk_entries(dir).map_err(|e| format!("walking {}: {e}", dir.display()))?;
    let mut report = RebalanceReport::default();
    let mut clients: Vec<Option<crate::client::Client>> = Vec::new();
    clients.resize_with(map.count() as usize, || None);
    for entry in entries {
        report.examined += 1;
        let owner = map.owner_of_bytes(&entry.key);
        if owner == local_shard {
            report.owned += 1;
            continue;
        }
        let slot = &mut clients[owner as usize];
        if slot.is_none() {
            *slot = crate::client::Client::connect(map.addr(owner)).ok();
        }
        let shipped = match slot.as_mut() {
            Some(client) => client.put_cert(&entry.key, &entry.cert).is_ok(),
            None => false,
        };
        if shipped {
            report.shipped += 1;
            if remove && store::remove_entry(dir, entry.fingerprint).is_ok() {
                report.removed += 1;
            }
        } else {
            // Drop the connection so the next entry for this owner retries
            // from a clean connect instead of a wedged stream.
            *slot = None;
            report.failed += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_sim::RunPolicy;

    fn map3() -> ShardMap {
        ShardMap::parse_peers("127.0.0.1:7416, 127.0.0.1:7417, 127.0.0.1:7418").unwrap()
    }

    #[test]
    fn ownership_is_deterministic_and_address_independent() {
        let map = map3();
        let other_addrs =
            ShardMap::parse_peers("10.0.0.1:9000,10.0.0.2:9000,10.0.0.3:9000").unwrap();
        for tag in 0..200u64 {
            let fp = fingerprint(&tag.to_le_bytes());
            let owner = owner_for_count(3, fp);
            assert_eq!(owner_for_count(3, fp), owner, "unstable for {tag}");
            // Same count, different addresses: same owner — a restart on a
            // new port must not reshuffle the key space.
            assert_eq!(other_addrs.owner_of_bytes(&tag.to_le_bytes()), owner);
            assert_eq!(map.owner_of_bytes(&tag.to_le_bytes()), owner);
        }
    }

    #[test]
    fn ownership_spreads_across_shards() {
        let mut per_shard = [0usize; 3];
        for tag in 0..3000u64 {
            let fp = fingerprint(&tag.to_le_bytes());
            per_shard[owner_for_count(3, fp) as usize] += 1;
        }
        for (shard, &n) in per_shard.iter().enumerate() {
            // Perfectly balanced would be 1000; allow generous slack while
            // still catching a degenerate hash.
            assert!((600..=1400).contains(&n), "shard {shard} owns {n}/3000");
        }
    }

    #[test]
    fn growing_the_map_moves_roughly_one_share_of_keys() {
        let total = 3000u64;
        let moved = (0..total)
            .filter(|tag| {
                let fp = fingerprint(&tag.to_le_bytes());
                owner_for_count(3, fp) != owner_for_count(4, fp)
            })
            .count();
        // Rendezvous moves ~1/4 of keys when a fourth shard joins; a mod-N
        // scheme would move ~3/4. Allow wide slack around 750.
        assert!(
            (450..=1100).contains(&moved),
            "{moved}/{total} keys moved on 3→4 growth"
        );
    }

    #[test]
    fn map_round_trips_byte_for_byte() {
        let map = map3();
        let bytes = map.encode();
        let back = ShardMap::decode(&bytes).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.encode(), bytes);
        // Trailing bytes and oversized counts are rejected.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ShardMap::decode(&trailing).is_err());
        let mut w = Writer::new();
        w.u32((MAX_SHARDS + 1) as u32);
        assert!(ShardMap::decode(&w.finish()).is_err());
    }

    #[test]
    fn parse_peers_validates() {
        assert!(ShardMap::parse_peers("").is_err());
        assert!(ShardMap::parse_peers("a:1,,c:3").is_err());
        assert_eq!(ShardMap::parse_peers("a:1").unwrap().count(), 1);
    }

    #[test]
    fn routing_key_matches_the_spelled_out_query() {
        // "no protocol/graph named" and the fully spelled-out equivalent
        // must route identically — canonical_query_key resolves defaults
        // before hashing, and routing_key inherits that.
        let theorem = Theorem::BaNodes;
        let shorthand = RefuteParams {
            theorem: theorem.name().into(),
            protocol: None,
            graph: None,
            f: 2,
            policy: None,
        };
        let spelled = RefuteParams {
            protocol: Some(theorem.default_protocol(2)),
            graph: Some(theorem.default_graph()),
            policy: Some(RunPolicy::default()),
            ..shorthand.clone()
        };
        let a = routing_key(&shorthand).unwrap();
        let b = routing_key(&spelled).unwrap();
        assert_eq!(a.bytes(), b.bytes());
        // And it is the same key the store indexes by at default policy.
        let store_key = query::canonical_query_key(theorem, None, None, 2, &RunPolicy::default());
        assert_eq!(a.bytes(), store_key.bytes());
        assert!(routing_key(&RefuteParams {
            theorem: "no-such-family".into(),
            ..shorthand
        })
        .is_err());
    }
}
