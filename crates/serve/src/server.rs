//! The `flm-serve` server: a bounded-accept thread-pool TCP server speaking
//! FLMC-RPC.
//!
//! # Architecture
//!
//! One acceptor thread owns the listener; `workers` handler threads own a
//! bounded connection queue. The acceptor is the backpressure valve: a
//! connection arriving while every worker is busy *and* the queue is full is
//! answered with a typed [`Response::Overloaded`] frame and closed — load is
//! shed with an answer, never a silently dropped socket. Everything else is
//! queued and served in arrival order.
//!
//! # Budgets
//!
//! Per-connection hostile-input budgets reuse the hardening from the
//! certificate layer: a frame-body byte cap (checked before allocation), a
//! per-frame read timeout (an idle or trickling peer cannot pin a worker),
//! a per-connection request budget, and a server-side [`RunPolicy`] ceiling
//! clamped onto every refutation request (a query cannot demand a bigger
//! simulation budget than the operator configured).
//!
//! # Cache sharing
//!
//! Workers share the process-global `flm_sim::runcache`, so byte-identical
//! queries from *different* connections are warm hits. That is sound for
//! exactly the reason the cache itself is: a hit requires the full canonical
//! run key to match byte-for-byte, and under the determinism axiom that key
//! fixes the behavior — which client asked is irrelevant. The [`Request::Stats`]
//! RPC exposes the hit counters so the sharing is observable.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use flm_sim::RunPolicy;

use crate::audit;
use crate::frame::{read_frame, write_frame, FrameReadError, DEFAULT_MAX_BODY_BYTES};
use crate::query::{self, Theorem};
use crate::rpc::{ErrorCode, Request, Response, StatsReport};

/// Server configuration. [`ServeConfig::default`] is sized for the loopback
/// quickstart; production deployments tune every knob.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7115` or `127.0.0.1:0` (ephemeral).
    pub addr: String,
    /// Handler threads. Refutations themselves additionally fan out on the
    /// process-wide `flm-par` pool.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor sheds load.
    pub queue_depth: usize,
    /// Frame-body byte cap, enforced before any allocation.
    pub max_body_bytes: usize,
    /// Per-frame read timeout; a connection idle past it is closed.
    pub read_timeout: Duration,
    /// Requests one connection may issue before it is asked to reconnect
    /// (answered with a typed `connection-budget` error).
    pub max_requests_per_conn: u64,
    /// Cap on [`Request::Ping`] worker holds, milliseconds.
    pub max_hold_ms: u32,
    /// Ceiling clamped onto every requested [`RunPolicy`]: a query may
    /// tighten the simulation budget, never raise it past this.
    pub policy_ceiling: RunPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(10),
            max_requests_per_conn: 4096,
            max_hold_ms: 100,
            policy_ceiling: RunPolicy::default(),
        }
    }
}

/// Monotonic service counters, shared across workers and surfaced by the
/// Stats RPC.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    requests_ping: AtomicU64,
    requests_refute: AtomicU64,
    requests_verify: AtomicU64,
    requests_audit: AtomicU64,
    requests_stats: AtomicU64,
    responses_error: AtomicU64,
    malformed_frames: AtomicU64,
}

struct Shared {
    config: ServeConfig,
    counters: Counters,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    busy_workers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn snapshot(&self) -> StatsReport {
        let c = &self.counters;
        let cache = flm_sim::runcache::stats();
        let prefix = flm_sim::prefixcache::stats();
        StatsReport {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_shed: c.connections_shed.load(Ordering::Relaxed),
            requests_ping: c.requests_ping.load(Ordering::Relaxed),
            requests_refute: c.requests_refute.load(Ordering::Relaxed),
            requests_verify: c.requests_verify.load(Ordering::Relaxed),
            requests_audit: c.requests_audit.load(Ordering::Relaxed),
            requests_stats: c.requests_stats.load(Ordering::Relaxed),
            responses_error: c.responses_error.load(Ordering::Relaxed),
            malformed_frames: c.malformed_frames.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            cache_bytes_saved: cache.bytes_saved,
            prefix_hits: prefix.hits,
            prefix_misses: prefix.misses,
            prefix_evictions: prefix.evictions,
            prefix_ticks_saved: prefix.ticks_saved,
            prefix_entries: prefix.entries as u64,
            profile: if flm_core::profile::enabled() {
                flm_core::profile::report()
            } else {
                String::new()
            },
        }
    }
}

/// A running FLMC-RPC server. Dropping without [`Server::shutdown`] leaves
/// the threads serving until the process exits (the `flm-serve` binary's
/// mode); tests call `shutdown` for a clean join.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config: ServeConfig { workers, ..config },
            counters: Counters::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            busy_workers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the service counters and cache statistics —
    /// the same report the Stats RPC returns, without a connection.
    pub fn stats(&self) -> StatsReport {
        self.shared.snapshot()
    }

    /// Workers currently handling a connection. The saturation tests use
    /// this to wait for the pool to be provably busy before expecting
    /// [`Response::Overloaded`].
    pub fn busy_workers(&self) -> usize {
        self.shared.busy_workers.load(Ordering::SeqCst)
    }

    /// Blocks until the server is shut down (never, unless another thread
    /// holds a handle). The `flm-serve` binary parks here.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stops accepting, wakes every thread, and joins them. In-flight
    /// requests complete; queued connections are served before the workers
    /// exit.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        self.shared.available.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor may have queued the wake-up connection; wake workers
        // again so they observe the flag once the queue drains.
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: stop the threads without joining (join may deadlock
        // if drop runs on a worker panic path). `shutdown` is the clean way.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        self.shared.available.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let busy = shared.busy_workers.load(Ordering::SeqCst);
        let saturated = busy >= shared.config.workers && queue.len() >= shared.config.queue_depth;
        if saturated {
            let queued = queue.len() as u32;
            drop(queue);
            shared
                .counters
                .connections_shed
                .fetch_add(1, Ordering::Relaxed);
            shed(stream, queued, shared);
            continue;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        queue.push_back(stream);
        drop(queue);
        shared.available.notify_one();
    }
}

/// Answers a connection the pool cannot take with a typed Overloaded frame,
/// then closes it. Shedding with an answer is the contract: clients always
/// learn *why* the connection ended.
fn shed(mut stream: TcpStream, queued: u32, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let response = Response::Overloaded {
        queued,
        detail: format!(
            "all {} workers busy and {} connections queued; retry later",
            shared.config.workers, queued
        ),
    };
    let _ = write_frame(&mut stream, &response.to_frame());
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        handle_connection(stream, shared);
        shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let mut served: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream, shared.config.max_body_bytes) {
            Ok(frame) => frame,
            Err(FrameReadError::Eof) => return,
            Err(FrameReadError::Io(_)) => return,
            Err(FrameReadError::Frame(e)) => {
                // Bytes arrived but they are not a frame: answer with a
                // typed error, then drop the connection — after a framing
                // violation the stream offset can no longer be trusted.
                shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                respond_error(
                    &mut stream,
                    shared,
                    ErrorCode::MalformedFrame,
                    &e.to_string(),
                );
                // Drain (bounded) whatever else the peer already sent before
                // closing: closing with unread bytes in the receive buffer
                // turns into a TCP RST that can destroy the error frame
                // before the peer reads it.
                drain(&mut stream);
                return;
            }
        };
        if served >= shared.config.max_requests_per_conn {
            respond_error(
                &mut stream,
                shared,
                ErrorCode::ConnectionBudget,
                &format!(
                    "connection exhausted its {}-request budget; reconnect",
                    shared.config.max_requests_per_conn
                ),
            );
            return;
        }
        let request = match Request::from_frame(&frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame was sound but the body was not: typed error,
                // keep the connection (framing is still in sync).
                shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                respond_error(
                    &mut stream,
                    shared,
                    ErrorCode::MalformedFrame,
                    &e.to_string(),
                );
                served += 1;
                continue;
            }
        };
        let response = dispatch(request, shared);
        if matches!(response, Response::Error { .. }) {
            shared
                .counters
                .responses_error
                .fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut stream, &response.to_frame()).is_err() {
            return;
        }
        served += 1;
    }
}

/// Reads and discards up to 64 KiB of leftover input (until EOF, error, or
/// the read timeout), so the subsequent close sends FIN, not RST.
fn drain(stream: &mut TcpStream) {
    use std::io::Read as _;
    let mut buf = [0u8; 4096];
    let mut total = 0;
    while total < 64 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => total += n,
        }
    }
}

fn respond_error(stream: &mut TcpStream, shared: &Shared, code: ErrorCode, detail: &str) {
    shared
        .counters
        .responses_error
        .fetch_add(1, Ordering::Relaxed);
    let response = Response::Error {
        code,
        detail: detail.into(),
    };
    let _ = write_frame(stream, &response.to_frame());
}

fn dispatch(request: Request, shared: &Shared) -> Response {
    let c = &shared.counters;
    match request {
        Request::Ping { payload, hold_ms } => {
            c.requests_ping.fetch_add(1, Ordering::Relaxed);
            let hold = hold_ms.min(shared.config.max_hold_ms);
            if hold > 0 {
                std::thread::sleep(Duration::from_millis(u64::from(hold)));
            }
            Response::Pong { payload }
        }
        Request::Refute(params) => {
            c.requests_refute.fetch_add(1, Ordering::Relaxed);
            let theorem = match Theorem::parse(&params.theorem) {
                Ok(theorem) => theorem,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        detail: e.to_string(),
                    }
                }
            };
            let policy = clamp_policy(params.policy, shared.config.policy_ceiling);
            match query::refute_to_bytes(
                theorem,
                params.protocol.as_deref(),
                params.graph.as_ref(),
                params.f as usize,
                policy,
            ) {
                Ok(bytes) => Response::Certificate { bytes },
                Err(e @ query::QueryError::BadRequest { .. })
                | Err(e @ query::QueryError::UnknownTheorem { .. }) => Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: e.to_string(),
                },
                Err(e @ query::QueryError::Refute { .. }) => Response::Error {
                    code: ErrorCode::RefuteFailed,
                    detail: e.to_string(),
                },
                Err(e @ query::QueryError::SelfCheck { .. }) => Response::Error {
                    code: ErrorCode::Internal,
                    detail: e.to_string(),
                },
            }
        }
        Request::Verify { cert } => {
            c.requests_verify.fetch_add(1, Ordering::Relaxed);
            let (verdict, detail) = audit::verify_bytes(&cert);
            Response::Verify { verdict, detail }
        }
        Request::Audit { cert } => {
            c.requests_audit.fetch_add(1, Ordering::Relaxed);
            let report = audit::audit_bytes(&cert, false);
            Response::Audit {
                exit_code: report.exit_code,
                report: report.report,
                diagnostics: report.diagnostics,
            }
        }
        Request::Stats => {
            c.requests_stats.fetch_add(1, Ordering::Relaxed);
            Response::Stats(shared.snapshot())
        }
    }
}

/// Clamps a requested policy to the server's ceiling, fieldwise: queries may
/// tighten their simulation budget but never exceed the operator's.
fn clamp_policy(requested: Option<RunPolicy>, ceiling: RunPolicy) -> RunPolicy {
    match requested {
        None => ceiling,
        Some(p) => RunPolicy {
            max_payload_bytes: p.max_payload_bytes.min(ceiling.max_payload_bytes),
            max_ticks: p.max_ticks.min(ceiling.max_ticks),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_clamp_is_fieldwise_min() {
        let ceiling = RunPolicy {
            max_payload_bytes: 1000,
            max_ticks: 50,
        };
        assert_eq!(clamp_policy(None, ceiling), ceiling);
        let clamped = clamp_policy(
            Some(RunPolicy {
                max_payload_bytes: 4000,
                max_ticks: 10,
            }),
            ceiling,
        );
        assert_eq!(clamped.max_payload_bytes, 1000);
        assert_eq!(clamped.max_ticks, 10);
    }

    #[test]
    fn server_binds_ephemeral_and_shuts_down() {
        let server = Server::start(ServeConfig {
            workers: 2,
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        })
        .unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.stats().requests_served(), 0);
        server.shutdown();
    }
}
