//! The `flm-serve` server: an event-driven FLMC-RPC server — one reactor
//! thread multiplexing every connection over epoll, a small worker pool for
//! CPU-bound refutation work, and an optional on-disk certificate store.
//!
//! # Architecture
//!
//! The reactor thread owns the nonblocking listener and every connection.
//! Each connection is a small state machine: bytes are accumulated into a
//! read buffer and parsed incrementally with [`Frame::decode`] (a
//! `Truncated` result just means "wait for more bytes"), decoded requests
//! either execute inline on the reactor (zero-hold pings, stats snapshots)
//! or become jobs for the worker pool (refute, verify, audit, held pings),
//! and responses flush through a write buffer that registers `WRITABLE`
//! interest only while bytes remain. Because readiness is level-triggered,
//! a connection that reaches its pipeline cap simply stops being read —
//! TCP backpressure does the rest — and resumes when responses drain.
//!
//! Pipelining is first-class: a connection may send many frames back to
//! back, the reactor tracks an in-flight slot per request, and responses
//! are written in strict request order no matter which worker finishes
//! first. One process therefore serves thousands of concurrent sockets
//! with `workers` threads, instead of one thread per socket.
//!
//! # Shedding
//!
//! Load is shed with an answer, never a silently dropped socket, at two
//! points. Per *request*: a worker-bound request arriving while every
//! worker is busy and the job queue is full is answered with a typed
//! [`Response::Overloaded`] frame and the connection stays open (counted
//! as `requests_shed`; inline requests still serve, so a saturated server
//! remains observable). Per *connection*: an accept beyond
//! `max_connections` is answered with `Overloaded` and closed (counted as
//! `connections_shed`).
//!
//! # Budgets
//!
//! Per-connection hostile-input budgets reuse the hardening from the
//! certificate layer: a frame-body byte cap (checked before allocation), an
//! idle timeout (an idle peer cannot pin a connection slot forever), a
//! per-connection request budget, a pipeline depth cap, and a server-side
//! [`RunPolicy`] ceiling clamped onto every refutation request.
//!
//! # Caching
//!
//! Workers share the process-global `flm_sim::runcache`, so byte-identical
//! queries from *different* connections are warm hits — sound because a hit
//! requires the full canonical run key to match byte-for-byte, and under
//! the determinism axiom that key fixes the behavior. With
//! [`ServeConfig::store_dir`] set, refutations additionally consult a
//! [`CertStore`]: memory → disk → simulate, with every fresh certificate
//! persisted, so warm hits survive restarts. The [`Request::Stats`] RPC
//! exposes every counter so both layers are observable.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flm_sim::RunPolicy;

use flm_sim::runcache::RunKey;

use crate::audit;
use crate::client::Client;
use crate::frame::{Frame, FrameError, DEFAULT_MAX_BODY_BYTES};
use crate::query::{self, Theorem};
use crate::rpc::{ErrorCode, Request, Response, StatsReport};
use crate::shard::{self, ShardMap};
use crate::store::{self, CertStore};
use crate::sys::{self, Interest, Poller};

/// Server configuration. [`ServeConfig::default`] is sized for the loopback
/// quickstart; production deployments tune every knob.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7115` or `127.0.0.1:0` (ephemeral).
    pub addr: String,
    /// Worker threads for CPU-bound work (refute/verify/audit/held pings).
    /// Refutations themselves additionally fan out on the process-wide
    /// `flm-par` pool.
    pub workers: usize,
    /// Worker-bound requests allowed to wait in the job queue before
    /// further worker-bound requests are shed with a typed answer.
    pub queue_depth: usize,
    /// Frame-body byte cap, enforced before any allocation.
    pub max_body_bytes: usize,
    /// Idle timeout: a connection with no in-flight work and no unread
    /// bytes past this is closed. (Under the old blocking server this was
    /// the per-frame read timeout; the event loop needs no read deadline.)
    pub read_timeout: Duration,
    /// Requests one connection may issue before it is asked to reconnect
    /// (answered with a typed `connection-budget` error).
    pub max_requests_per_conn: u64,
    /// Cap on [`Request::Ping`] worker holds, milliseconds.
    pub max_hold_ms: u32,
    /// Ceiling clamped onto every requested [`RunPolicy`]: a query may
    /// tighten the simulation budget, never raise it past this.
    pub policy_ceiling: RunPolicy,
    /// Root directory for the persistent certificate store; `None` serves
    /// from the in-memory caches only (warmth dies with the process).
    pub store_dir: Option<PathBuf>,
    /// Concurrent connections the reactor will hold; accepts beyond this
    /// are answered with [`Response::Overloaded`] and closed.
    pub max_connections: usize,
    /// Unanswered pipelined requests one connection may have in flight
    /// before the reactor stops reading its socket (TCP backpressure).
    pub max_pipelined: usize,
    /// This process's place in a sharded cluster; `None` serves unsharded
    /// (every key is owned locally, no ownership checks).
    pub shard: Option<ShardRole>,
    /// Memory-tier entry capacity for the certificate store; `None` defers
    /// to `FLM_STORE_MEM_CAP` / the built-in default.
    pub store_mem_cap: Option<usize>,
}

/// A shard's identity in the cluster: its id plus the full topology every
/// peer and the router agree on byte-for-byte ([`ShardMap::encode`]).
#[derive(Debug, Clone)]
pub struct ShardRole {
    /// This process's shard id — an index into `map`.
    pub id: u32,
    /// The cluster topology.
    pub map: ShardMap,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(10),
            max_requests_per_conn: 4096,
            max_hold_ms: 100,
            policy_ceiling: RunPolicy::default(),
            store_dir: None,
            max_connections: 2048,
            max_pipelined: 32,
            shard: None,
            store_mem_cap: None,
        }
    }
}

/// Monotonic service counters, shared across threads and surfaced by the
/// Stats RPC.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    requests_ping: AtomicU64,
    requests_refute: AtomicU64,
    requests_verify: AtomicU64,
    requests_audit: AtomicU64,
    requests_stats: AtomicU64,
    requests_shed: AtomicU64,
    responses_error: AtomicU64,
    malformed_frames: AtomicU64,
    requests_fetch: AtomicU64,
    requests_put: AtomicU64,
    wrong_shard: AtomicU64,
    peer_fetches: AtomicU64,
    async_refutes: AtomicU64,
}

/// One unit of CPU-bound work handed from the reactor to the pool.
struct Job {
    conn: u64,
    seq: u64,
    request: Request,
}

/// A finished job on its way back to the reactor.
struct Completion {
    conn: u64,
    seq: u64,
    response: Response,
}

struct Shared {
    config: ServeConfig,
    counters: Counters,
    store: Option<CertStore>,
    jobs: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: sys::Waker,
    busy_workers: AtomicUsize,
    shutdown: AtomicBool,
    /// Set by the reactor once it has stopped parsing requests: the job
    /// queue can only shrink from here, so a worker observing this flag
    /// and an empty queue may exit without orphaning a connection.
    jobs_closed: AtomicBool,
}

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn snapshot(&self) -> StatsReport {
        let c = &self.counters;
        let cache = flm_sim::runcache::stats();
        let prefix = flm_sim::prefixcache::stats();
        let async_stats = flm_core::refute::async_search_stats();
        let store = self
            .store
            .as_ref()
            .map(CertStore::stats)
            .unwrap_or_default();
        StatsReport {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_shed: c.connections_shed.load(Ordering::Relaxed),
            requests_ping: c.requests_ping.load(Ordering::Relaxed),
            requests_refute: c.requests_refute.load(Ordering::Relaxed),
            requests_verify: c.requests_verify.load(Ordering::Relaxed),
            requests_audit: c.requests_audit.load(Ordering::Relaxed),
            requests_stats: c.requests_stats.load(Ordering::Relaxed),
            requests_shed: c.requests_shed.load(Ordering::Relaxed),
            responses_error: c.responses_error.load(Ordering::Relaxed),
            malformed_frames: c.malformed_frames.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            cache_bytes_saved: cache.bytes_saved,
            prefix_hits: prefix.hits,
            prefix_misses: prefix.misses,
            prefix_evictions: prefix.evictions,
            prefix_ticks_saved: prefix.ticks_saved,
            prefix_entries: prefix.entries as u64,
            store_mem_hits: store.mem_hits,
            store_disk_hits: store.disk_hits,
            store_misses: store.misses,
            store_stores: store.stores,
            store_quarantined: store.quarantined,
            store_mem_evictions: store.evictions,
            requests_fetch: c.requests_fetch.load(Ordering::Relaxed),
            requests_put: c.requests_put.load(Ordering::Relaxed),
            wrong_shard: c.wrong_shard.load(Ordering::Relaxed),
            peer_fetches: c.peer_fetches.load(Ordering::Relaxed),
            async_refutes: c.async_refutes.load(Ordering::Relaxed),
            async_schedules_explored: async_stats.0,
            async_bivalent_forks: async_stats.1,
            shard_id: self.config.shard.as_ref().map_or(0, |r| u64::from(r.id)),
            shard_count: self
                .config
                .shard
                .as_ref()
                .map_or(0, |r| u64::from(r.map.count())),
            profile: if flm_core::profile::enabled() {
                flm_core::profile::report()
            } else {
                String::new()
            },
        }
    }
}

/// A running FLMC-RPC server. Dropping without [`Server::shutdown`] leaves
/// the threads serving until the process exits (the `flm-serve` binary's
/// mode); tests call `shutdown` for a clean join.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, builds the poller (and certificate store when
    /// configured), and spawns the reactor and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates bind, poller-creation, and store-open failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let store = match &config.store_dir {
            Some(dir) => {
                let cap = config
                    .store_mem_cap
                    .unwrap_or_else(store::default_memory_capacity);
                Some(
                    CertStore::open_with_capacity(dir.clone(), cap)
                        .map_err(|e| std::io::Error::other(e.to_string()))?,
                )
            }
            None => None,
        };
        let poller = Poller::new()?;
        let (waker, wake_rx) = sys::wake_channel()?;
        poller.register(listener.as_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.as_fd(), TOKEN_WAKER, Interest::READABLE)?;

        let shared = Arc::new(Shared {
            config: ServeConfig { workers, ..config },
            counters: Counters::default(),
            store,
            jobs: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker,
            busy_workers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            jobs_closed: AtomicBool::new(false),
        });

        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                Reactor::new(listener, wake_rx, poller, shared).run();
            })
        };

        Ok(Server {
            local_addr,
            shared,
            reactor: Some(reactor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the service counters and cache statistics —
    /// the same report the Stats RPC returns, without a connection.
    pub fn stats(&self) -> StatsReport {
        self.shared.snapshot()
    }

    /// Workers currently executing a job. The saturation tests use this to
    /// wait for the pool to be provably busy before expecting
    /// [`Response::Overloaded`].
    pub fn busy_workers(&self) -> usize {
        self.shared.busy_workers.load(Ordering::SeqCst)
    }

    /// Drops the certificate store's in-memory layer (a no-op without a
    /// store), forcing the next lookup back to disk. Benches use this to
    /// isolate the disk-warm path from the memory-warm one.
    pub fn drop_store_memory(&self) {
        if let Some(store) = &self.shared.store {
            store.clear_memory();
        }
    }

    /// Blocks until the server is shut down (never, unless another thread
    /// holds a handle). The `flm-serve` binary parks here.
    pub fn wait(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stops accepting, lets in-flight requests complete and flush, and
    /// joins every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        self.shared.job_ready.notify_all();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: stop the threads without joining (join may deadlock
        // if drop runs on a panic path). `shutdown` is the clean way.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        self.shared.job_ready.notify_all();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Bytes of unparseable input discarded after a framing violation before
/// the connection is closed anyway (so the close sends FIN, not a RST that
/// could destroy the typed error frame in flight).
const DISCARD_BUDGET: usize = 64 * 1024;

/// One pending request on a connection: its sequence number and, once some
/// thread produced it, the encoded response frame. Responses leave in slot
/// order no matter which finishes first — that is the pipelining contract.
struct Slot {
    seq: u64,
    response: Option<Vec<u8>>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    inflight: VecDeque<Slot>,
    next_seq: u64,
    served: u64,
    interest: Interest,
    /// Peer sent FIN: no more requests will arrive.
    eof: bool,
    /// Close as soon as the write buffer flushes (framing violation,
    /// exhausted request budget, or shutdown).
    closing: bool,
    /// After a framing violation: keep reading (and discarding) up to
    /// [`DISCARD_BUDGET`] bytes so the peer's in-flight bytes do not turn
    /// our close into a RST.
    discarding: usize,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            inflight: VecDeque::new(),
            next_seq: 0,
            served: 0,
            interest: Interest::READABLE,
            eof: false,
            closing: false,
            discarding: 0,
            last_activity: now,
        }
    }

    /// True when nothing is pending: no queued responses, no unflushed
    /// bytes.
    fn idle(&self) -> bool {
        self.inflight.is_empty() && self.write_buf.is_empty()
    }

    /// True while any request is still with the worker pool (an unfilled
    /// slot can only be filled by a completion; inline responses fill
    /// theirs immediately).
    fn worker_pending(&self) -> bool {
        self.inflight.iter().any(|s| s.response.is_none())
    }
}

struct Reactor {
    listener: TcpListener,
    wake_rx: std::os::unix::net::UnixStream,
    poller: Poller,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    accepting: bool,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        wake_rx: std::os::unix::net::UnixStream,
        poller: Poller,
        shared: Arc<Shared>,
    ) -> Reactor {
        Reactor {
            listener,
            wake_rx,
            poller,
            shared,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            accepting: true,
        }
    }

    fn run(mut self) {
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        let mut shutdown_at: Option<Instant> = None;
        loop {
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(250)))
                .is_err()
            {
                continue;
            }
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting_down && self.accepting {
                // Entering drain mode, in this order: stop accepting, stop
                // parsing (so no job is ever enqueued again), and only then
                // tell the workers the queue can no longer grow — that
                // ordering is what lets a worker exit on "closed + empty"
                // without orphaning a connection mid-pipeline.
                let _ = self.poller.deregister(self.listener.as_fd());
                self.accepting = false;
                for conn in self.conns.values_mut() {
                    conn.closing = true;
                }
                self.shared.jobs_closed.store(true, Ordering::SeqCst);
                self.shared.job_ready.notify_all();
                shutdown_at = Some(Instant::now());
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => sys::drain_wakes(&self.wake_rx),
                    token => self.conn_event(token, ev.readable, ev.writable, ev.hangup),
                }
            }
            self.apply_completions();
            let now = Instant::now();
            if now.duration_since(last_sweep) >= Duration::from_secs(1) {
                last_sweep = now;
                self.sweep_idle(now);
            }
            if shutting_down {
                // Close everything with no pending work; connections still
                // waiting on workers drain first (in-flight requests
                // complete and flush before the reactor exits).
                let tokens: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| c.idle())
                    .map(|(&t, _)| t)
                    .collect();
                for token in tokens {
                    self.close(token);
                }
                let deadline_passed =
                    shutdown_at.is_some_and(|t| now.duration_since(t) > Duration::from_secs(5));
                if self.conns.is_empty() || deadline_passed {
                    return;
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let _ = stream.set_nodelay(true);
            if self.conns.len() >= self.shared.config.max_connections {
                self.shed_connection(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(stream.as_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.shared
                .counters
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            self.conns.insert(token, Conn::new(stream, Instant::now()));
        }
    }

    /// Answers a connection the reactor cannot hold with a typed Overloaded
    /// frame, then closes it. Shedding with an answer is the contract:
    /// clients always learn *why* the connection ended.
    fn shed_connection(&self, mut stream: TcpStream) {
        self.shared
            .counters
            .connections_shed
            .fetch_add(1, Ordering::Relaxed);
        let response = Response::Overloaded {
            queued: self.conns.len() as u32,
            detail: format!(
                "serving {} connections (cap {}); retry later",
                self.conns.len(),
                self.shared.config.max_connections
            ),
        };
        // The socket is fresh, so this tiny frame lands in the empty send
        // buffer; a 1s timeout bounds the pathological case.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if let Ok(bytes) = response.to_frame().encode() {
            let _ = stream.write_all(&bytes);
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        // Stale event for a connection closed earlier in this batch.
        if !self.conns.contains_key(&token) {
            return;
        }
        if hangup {
            self.close(token);
            return;
        }
        if writable && !self.flush(token) {
            return;
        }
        if readable {
            self.readable(token);
        }
    }

    /// Reads everything available, advances the parser, executes or
    /// enqueues complete requests.
    fn readable(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        let cap = self.shared.config.max_pipelined;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Respect the pipeline cap *before* reading: level-triggered
            // readiness will re-report the bytes once responses drain.
            let want_read =
                conn.discarding > 0 || (!conn.eof && !conn.closing && conn.inflight.len() < cap);
            if !want_read {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    // No more bytes will ever arrive; any discard budget is
                    // moot and must not hold the connection open.
                    conn.discarding = 0;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if conn.discarding > 0 {
                        conn.discarding = conn.discarding.saturating_sub(n);
                        continue;
                    }
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if !self.parse_available(token) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.advance(token);
    }

    /// Settles a connection after IO or completions: re-parse anything the
    /// pipeline cap deferred, resolve EOF, flush, re-derive interest.
    fn advance(&mut self, token: u64) {
        if !self.parse_available(token) {
            return;
        }
        let cap = self.shared.config.max_pipelined;
        let mut close_now = false;
        let mut leftover_garbage = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.eof && !conn.closing {
                if conn.read_buf.is_empty() {
                    if conn.idle() {
                        close_now = true;
                    } else {
                        // Serve out the pipeline, then close.
                        conn.closing = true;
                    }
                } else if conn.inflight.len() < cap {
                    // The parser stopped on Truncated (not on the pipeline
                    // cap) and no more bytes can ever arrive: the peer
                    // half-closed mid-frame. A framing violation, answered
                    // like any other (the truncation fuzz tests pin this).
                    leftover_garbage = true;
                }
                // Else: complete frames may still be sitting behind the
                // cap; completions will re-enter here and re-parse.
            }
        } else {
            return;
        }
        if close_now {
            self.close(token);
            return;
        }
        if leftover_garbage {
            self.shared
                .counters
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            let detail = FrameError::Truncated.to_string();
            self.queue_error(token, ErrorCode::MalformedFrame, &detail);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_buf.clear();
                conn.closing = true;
            }
        }
        if !self.flush(token) {
            return;
        }
        self.update_interest(token);
    }

    /// Parses every complete frame in the read buffer. Returns false when
    /// the connection was closed.
    fn parse_available(&mut self, token: u64) -> bool {
        let mut consumed = 0;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.closing || conn.inflight.len() >= self.shared.config.max_pipelined {
                break;
            }
            let max_body = self.shared.config.max_body_bytes;
            match Frame::decode(&conn.read_buf[consumed..], max_body) {
                Ok((frame, n)) => {
                    consumed += n;
                    conn.last_activity = Instant::now();
                    self.request_frame(token, &frame);
                }
                Err(FrameError::Truncated) => break,
                Err(e) => {
                    // The bytes are not a frame: typed error, then close —
                    // after a framing violation the stream offset can no
                    // longer be trusted. Discard what the peer already sent
                    // so the close sends FIN, not RST.
                    self.shared
                        .counters
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                    let detail = e.to_string();
                    self.queue_error(token, ErrorCode::MalformedFrame, &detail);
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.read_buf.clear();
                        conn.closing = true;
                        conn.discarding = DISCARD_BUDGET;
                    }
                    return true;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.read_buf.drain(..consumed);
        }
        true
    }

    /// Routes one well-framed request: budget check, decode, then inline
    /// execution, worker hand-off, or request-level shed.
    fn request_frame(&mut self, token: u64, frame: &Frame) {
        let config_budget = self.shared.config.max_requests_per_conn;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.served >= config_budget {
            let detail =
                format!("connection exhausted its {config_budget}-request budget; reconnect");
            self.queue_error(token, ErrorCode::ConnectionBudget, &detail);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            return;
        }
        conn.served += 1;
        let request = match Request::from_frame(frame) {
            Ok(request) => request,
            Err(e) => {
                // The frame was sound but the body was not: typed error,
                // keep the connection (framing is still in sync).
                self.shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                let detail = e.to_string();
                self.queue_error(token, ErrorCode::MalformedFrame, &detail);
                return;
            }
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight.push_back(Slot {
            seq,
            response: None,
        });

        let c = &self.shared.counters;
        match request {
            // Zero-hold pings and stats snapshots are reactor-inline: they
            // cost microseconds and must keep answering while the worker
            // pool is saturated (that is what makes saturation observable).
            Request::Ping { payload, hold_ms }
                if hold_ms.min(self.shared.config.max_hold_ms) == 0 =>
            {
                c.requests_ping.fetch_add(1, Ordering::Relaxed);
                self.fill_slot(token, seq, &Response::Pong { payload });
            }
            Request::Stats => {
                c.requests_stats.fetch_add(1, Ordering::Relaxed);
                let snapshot = self.shared.snapshot();
                self.fill_slot(token, seq, &Response::Stats(snapshot));
            }
            request => {
                let mut jobs = relock(self.shared.jobs.lock());
                let busy = self.shared.busy_workers.load(Ordering::SeqCst);
                let saturated = busy >= self.shared.config.workers
                    && jobs.len() >= self.shared.config.queue_depth;
                if saturated {
                    let queued = jobs.len() as u32;
                    drop(jobs);
                    c.requests_shed.fetch_add(1, Ordering::Relaxed);
                    let response = Response::Overloaded {
                        queued,
                        detail: format!(
                            "all {} workers busy and {} requests queued; retry later",
                            self.shared.config.workers, queued
                        ),
                    };
                    self.fill_slot(token, seq, &response);
                    return;
                }
                jobs.push_back(Job {
                    conn: token,
                    seq,
                    request,
                });
                drop(jobs);
                self.shared.job_ready.notify_one();
            }
        }
    }

    /// Queues a typed error response into the next slot (allocating one).
    fn queue_error(&mut self, token: u64, code: ErrorCode, detail: &str) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight.push_back(Slot {
            seq,
            response: None,
        });
        let response = Response::Error {
            code,
            detail: detail.into(),
        };
        self.fill_slot(token, seq, &response);
    }

    /// Delivers a response into its slot, then moves every response that is
    /// now at the front of the pipeline into the write buffer.
    fn fill_slot(&mut self, token: u64, seq: u64, response: &Response) {
        if matches!(response, Response::Error { .. }) {
            self.shared
                .counters
                .responses_error
                .fetch_add(1, Ordering::Relaxed);
        }
        let Ok(bytes) = response.to_frame().encode() else {
            // A response too large for the frame format (>4 GiB) cannot be
            // sent; the only sound recovery is a fresh connection.
            self.close(token);
            return;
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if let Some(slot) = conn.inflight.iter_mut().find(|s| s.seq == seq) {
            slot.response = Some(bytes);
        }
        while let Some(front) = conn.inflight.front_mut() {
            match front.response.take() {
                Some(bytes) => {
                    conn.write_buf.extend_from_slice(&bytes);
                    conn.inflight.pop_front();
                }
                None => break,
            }
        }
    }

    /// Writes as much of the write buffer as the socket accepts. Returns
    /// false when the connection was closed.
    fn flush(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.write_buf.is_empty() {
                break;
            }
            match conn.stream.write(&conn.write_buf) {
                Ok(0) => {
                    self.close(token);
                    return false;
                }
                Ok(n) => {
                    conn.write_buf.drain(..n);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return false;
                }
            }
        }
        let close_now = self
            .conns
            .get(&token)
            .is_some_and(|c| c.closing && c.idle() && c.discarding == 0);
        if close_now {
            self.close(token);
            return false;
        }
        self.update_interest(token);
        true
    }

    /// Re-derives epoll interest from connection state and applies it if
    /// it changed.
    fn update_interest(&mut self, token: u64) {
        let config_cap = self.shared.config.max_pipelined;
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wanted = Interest {
            readable: conn.discarding > 0
                || (!conn.eof && !conn.closing && conn.inflight.len() < config_cap),
            writable: !conn.write_buf.is_empty(),
        };
        let mut modify_failed = false;
        if wanted != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_fd(), token, wanted)
                .is_ok()
            {
                conn.interest = wanted;
            } else {
                modify_failed = true;
            }
        }
        if modify_failed {
            self.close(token);
        }
    }

    /// Drains the completion queue: fill slots, then settle each touched
    /// connection (which also re-parses frames the pipeline cap deferred).
    fn apply_completions(&mut self) {
        let done = std::mem::take(&mut *relock(self.shared.completions.lock()));
        for completion in done {
            self.fill_slot(completion.conn, completion.seq, &completion.response);
            self.advance(completion.conn);
        }
    }

    /// Closes connections that made no IO progress past the configured
    /// timeout. A connection still waiting on a worker is never timed out —
    /// a slow refutation is not idleness — but an idle or write-stuck peer
    /// cannot pin a connection slot forever.
    fn sweep_idle(&mut self, now: Instant) {
        let timeout = self.shared.config.read_timeout;
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.worker_pending() && now.duration_since(c.last_activity) > timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            // Dropping the stream closes the fd, which also removes it from
            // the epoll set; the explicit deregister covers the (benign)
            // case of the kernel delaying that removal.
            let _ = self.poller.deregister(conn.stream.as_fd());
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = relock(shared.jobs.lock());
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                // Exit only once the reactor has promised no more jobs
                // (`jobs_closed`), not on the shutdown flag alone — a
                // worker that quits while the reactor is still parsing
                // would orphan a connection mid-pipeline.
                if shared.jobs_closed.load(Ordering::SeqCst) {
                    return;
                }
                jobs = relock(shared.job_ready.wait(jobs));
            }
        };
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        let response = dispatch(job.request, shared);
        shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
        relock(shared.completions.lock()).push(Completion {
            conn: job.conn,
            seq: job.seq,
            response,
        });
        shared.waker.wake();
    }
}

/// Executes one CPU-bound request. Inline kinds (zero-hold pings, stats)
/// normally never reach here, but the handling is kept complete so a job is
/// a job regardless of routing.
fn dispatch(request: Request, shared: &Shared) -> Response {
    let c = &shared.counters;
    match request {
        Request::Ping { payload, hold_ms } => {
            c.requests_ping.fetch_add(1, Ordering::Relaxed);
            let hold = hold_ms.min(shared.config.max_hold_ms);
            if hold > 0 {
                std::thread::sleep(Duration::from_millis(u64::from(hold)));
            }
            Response::Pong { payload }
        }
        Request::Refute(params) => {
            c.requests_refute.fetch_add(1, Ordering::Relaxed);
            // Sharded: an off-owner request is answered with the owner's
            // address, never silently double-simulated. The routing key
            // hashes the request as sent (requested-or-default policy),
            // exactly what the router hashes — agreement by construction.
            if let Some(role) = &shared.config.shard {
                match shard::routing_key(&params) {
                    Ok(rkey) => {
                        let owner = role.map.owner_of(&rkey);
                        if owner != role.id {
                            c.wrong_shard.fetch_add(1, Ordering::Relaxed);
                            return Response::WrongShard {
                                owner,
                                addr: role.map.addr(owner).to_owned(),
                            };
                        }
                    }
                    Err(e) => {
                        return Response::Error {
                            code: ErrorCode::BadRequest,
                            detail: e.to_string(),
                        }
                    }
                }
            }
            let theorem = match Theorem::parse(&params.theorem) {
                Ok(theorem) => theorem,
                Err(e) => {
                    return Response::Error {
                        code: ErrorCode::BadRequest,
                        detail: e.to_string(),
                    }
                }
            };
            if theorem == Theorem::FlpAsync {
                c.async_refutes.fetch_add(1, Ordering::Relaxed);
            }
            let policy = clamp_policy(params.policy, shared.config.policy_ceiling);
            let protocol = params.protocol.as_deref();
            let graph = params.graph.as_ref();
            let f = params.f as usize;

            // Durable layer first: memory → disk → simulate. A stored hit
            // is byte-identical to a fresh run of the same canonical key
            // (determinism axiom), so which layer answered is invisible to
            // the client.
            let key = shared
                .store
                .as_ref()
                .map(|_| query::canonical_query_key(theorem, protocol, graph, f, &policy));
            if let (Some(store), Some(key)) = (&shared.store, &key) {
                if let Some(bytes) = store.lookup(key) {
                    return Response::Certificate { bytes };
                }
                // Owned key, cold store: before paying for a simulation,
                // ask the peer shards — after a topology change the
                // previous owner's disk still holds the certificate.
                if let Some(bytes) = fetch_from_peers(shared, key) {
                    store.store(key, &bytes);
                    return Response::Certificate { bytes };
                }
            }
            match query::refute_to_bytes(theorem, protocol, graph, f, policy) {
                Ok(bytes) => {
                    if let (Some(store), Some(key)) = (&shared.store, &key) {
                        store.store(key, &bytes);
                    }
                    Response::Certificate { bytes }
                }
                Err(e @ query::QueryError::BadRequest { .. })
                | Err(e @ query::QueryError::UnknownTheorem { .. }) => Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: e.to_string(),
                },
                Err(e @ query::QueryError::Refute { .. }) => Response::Error {
                    code: ErrorCode::RefuteFailed,
                    detail: e.to_string(),
                },
                Err(e @ query::QueryError::SelfCheck { .. }) => Response::Error {
                    code: ErrorCode::Internal,
                    detail: e.to_string(),
                },
            }
        }
        Request::Verify { cert } => {
            c.requests_verify.fetch_add(1, Ordering::Relaxed);
            let (verdict, detail) = audit::verify_bytes(&cert);
            Response::Verify { verdict, detail }
        }
        Request::Audit { cert } => {
            c.requests_audit.fetch_add(1, Ordering::Relaxed);
            let report = audit::audit_bytes(&cert, false);
            Response::Audit {
                exit_code: report.exit_code,
                report: report.report,
                diagnostics: report.diagnostics,
            }
        }
        Request::Stats => {
            c.requests_stats.fetch_add(1, Ordering::Relaxed);
            Response::Stats(shared.snapshot())
        }
        Request::FetchCert { key } => {
            c.requests_fetch.fetch_add(1, Ordering::Relaxed);
            // Deliberately *not* ownership-checked: the caller is a shard
            // that owns this key now and is asking the previous owner.
            let cert = shared
                .store
                .as_ref()
                .and_then(|store| store.lookup(&RunKey::from_bytes(key)));
            Response::FetchCert { cert }
        }
        Request::PutCert { key, cert } => {
            c.requests_put.fetch_add(1, Ordering::Relaxed);
            // Ownership-checked: certificates are shipped *to* their owner.
            if let Some(role) = &shared.config.shard {
                let owner = role.map.owner_of_bytes(&key);
                if owner != role.id {
                    c.wrong_shard.fetch_add(1, Ordering::Relaxed);
                    return Response::WrongShard {
                        owner,
                        addr: role.map.addr(owner).to_owned(),
                    };
                }
            }
            let Some(store) = &shared.store else {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: "this server has no store directory; nowhere to keep the certificate"
                        .into(),
                };
            };
            // Ship-verify-then-own: shipped bytes pass the same decode +
            // canonical re-encode gate a disk load does before this store
            // will ever serve them.
            if !store::verified_cert_bytes(&cert) {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: "shipped bytes are not a canonically-encoded FLMC certificate".into(),
                };
            }
            store.store(&RunKey::from_bytes(key), &cert);
            Response::PutCert
        }
    }
}

/// Peer-connect budget for fetch-on-miss: a down peer costs at most this
/// long before the shard falls back to simulating.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_millis(200);
/// Peer-read budget for fetch-on-miss: a lookup is a disk read, not a
/// simulation, so a healthy peer answers in microseconds.
const PEER_READ_TIMEOUT: Duration = Duration::from_secs(2);

/// After a local store miss on an owned key, asks each peer shard's store
/// for the certificate (the pull half of topology-change recovery).
/// Received bytes are adopted only after the ship-verify-then-own gate.
fn fetch_from_peers(shared: &Shared, key: &RunKey) -> Option<Vec<u8>> {
    let role = shared.config.shard.as_ref()?;
    for (peer, addr) in role.map.addrs().iter().enumerate() {
        if peer as u32 == role.id {
            continue;
        }
        let Ok(mut client) = Client::connect_timeout(addr, PEER_CONNECT_TIMEOUT) else {
            continue;
        };
        if client.set_read_timeout(Some(PEER_READ_TIMEOUT)).is_err() {
            continue;
        }
        let Ok(Some(bytes)) = client.fetch_cert(key.bytes()) else {
            continue;
        };
        if store::verified_cert_bytes(&bytes) {
            shared.counters.peer_fetches.fetch_add(1, Ordering::Relaxed);
            return Some(bytes);
        }
    }
    None
}

/// Writes a bound address to a port file atomically — temp file in the
/// same directory, then rename, the `CertStore` discipline — so a
/// concurrently polling reader (the shard-spawning scripts and tests) sees
/// either no file or a complete `host:port\n`, never a half-written one.
///
/// # Errors
///
/// Propagates filesystem failures; the temp file is removed on error.
pub fn write_port_file(path: &Path, addr: SocketAddr) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".port-tmp-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, format!("{addr}\n"))?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Clamps a requested policy to the server's ceiling, fieldwise: queries may
/// tighten their simulation budget but never exceed the operator's.
fn clamp_policy(requested: Option<RunPolicy>, ceiling: RunPolicy) -> RunPolicy {
    match requested {
        None => ceiling,
        Some(p) => RunPolicy {
            max_payload_bytes: p.max_payload_bytes.min(ceiling.max_payload_bytes),
            max_ticks: p.max_ticks.min(ceiling.max_ticks),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_clamp_is_fieldwise_min() {
        let ceiling = RunPolicy {
            max_payload_bytes: 1000,
            max_ticks: 50,
        };
        assert_eq!(clamp_policy(None, ceiling), ceiling);
        let clamped = clamp_policy(
            Some(RunPolicy {
                max_payload_bytes: 4000,
                max_ticks: 10,
            }),
            ceiling,
        );
        assert_eq!(clamped.max_payload_bytes, 1000);
        assert_eq!(clamped.max_ticks, 10);
    }

    #[test]
    fn port_file_write_is_atomic_under_a_concurrent_reader() {
        let dir = std::env::temp_dir().join(format!(
            "flm-portfile-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("port");
        let addr: SocketAddr = "127.0.0.1:7415".parse().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let (path, stop) = (path.clone(), Arc::clone(&stop));
            std::thread::spawn(move || {
                // Poll like the shard-spawning scripts do: any observed
                // content must be a complete address, never a prefix.
                while !stop.load(Ordering::SeqCst) {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        assert_eq!(text, "127.0.0.1:7415\n", "partial port file observed");
                    }
                }
            })
        };
        for _ in 0..200 {
            write_port_file(&path, addr).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        reader.join().unwrap();
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".port-tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_binds_ephemeral_and_shuts_down() {
        let server = Server::start(ServeConfig {
            workers: 2,
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        })
        .unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.stats().requests_served(), 0);
        server.shutdown();
    }
}
