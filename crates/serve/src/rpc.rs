//! The FLMC-RPC message vocabulary: typed requests and responses encoded
//! into [`crate::frame`] bodies with the same [`flm_sim::wire`] codec the
//! certificate format uses.
//!
//! A request names a theorem family, a protocol (through the
//! `flm-protocols` registry grammar), a graph (as `Graph::to_bytes`), and a
//! fault budget; the matching response carries a portable `FLMC`
//! certificate, so anything a server returns can be piped straight into
//! `flm-audit`. Malformed bodies decode to a structured
//! [`RpcDecodeError`] — the server answers those with a typed
//! [`Response::Error`] frame, never a dropped socket.
//!
//! Kind bytes: requests occupy `0x01..=0x07`, successful responses mirror
//! them at `0x81..=0x87` (plus `0x88` for a router's aggregated cluster
//! stats), and the failure responses live at `0xE0` (error), `0xE1`
//! (overloaded — the load-shedding answer), `0xE2` (wrong shard, with an
//! owner hint), and `0xE3` (shard down behind a router).

use std::fmt;

use flm_graph::Graph;
use flm_sim::wire::{Reader, Writer};
use flm_sim::RunPolicy;

use crate::frame::Frame;

/// Request kind bytes.
pub mod kind {
    /// Liveness probe / load-generator pacing primitive.
    pub const REQ_PING: u8 = 0x01;
    /// Run a refuter, answer with a certificate.
    pub const REQ_REFUTE: u8 = 0x02;
    /// Re-verify a certificate's violation.
    pub const REQ_VERIFY: u8 = 0x03;
    /// Full audit path (decode, canonicality, resolve, re-verify).
    pub const REQ_AUDIT: u8 = 0x04;
    /// Server counters and cache statistics.
    pub const REQ_STATS: u8 = 0x05;
    /// Pull a stored certificate (plus its key sidecar semantics) out of a
    /// peer shard's `CertStore` — the cross-shard shipping primitive.
    pub const REQ_FETCH_CERT: u8 = 0x06;
    /// Push a certificate into the owning shard's `CertStore` (verified on
    /// receive before it is owned).
    pub const REQ_PUT_CERT: u8 = 0x07;
    /// Response to [`REQ_PING`].
    pub const RESP_PONG: u8 = 0x81;
    /// Response to [`REQ_REFUTE`]: a portable `FLMC` certificate.
    pub const RESP_CERTIFICATE: u8 = 0x82;
    /// Response to [`REQ_VERIFY`].
    pub const RESP_VERIFY: u8 = 0x83;
    /// Response to [`REQ_AUDIT`].
    pub const RESP_AUDIT: u8 = 0x84;
    /// Response to [`REQ_STATS`].
    pub const RESP_STATS: u8 = 0x85;
    /// Response to [`REQ_FETCH_CERT`].
    pub const RESP_FETCH_CERT: u8 = 0x86;
    /// Response to [`REQ_PUT_CERT`].
    pub const RESP_PUT_CERT: u8 = 0x87;
    /// Response to [`REQ_STATS`] from a router: the aggregated per-shard
    /// cluster view instead of one server's counters.
    pub const RESP_CLUSTER_STATS: u8 = 0x88;
    /// Typed failure response.
    pub const RESP_ERROR: u8 = 0xE0;
    /// Load-shedding response: the server is saturated, try again later.
    pub const RESP_OVERLOADED: u8 = 0xE1;
    /// The request's canonical key is owned by a different shard; the body
    /// carries the owner's identity as a hint.
    pub const RESP_WRONG_SHARD: u8 = 0xE2;
    /// The shard owning the request's key range is unreachable through the
    /// router; other key ranges keep serving.
    pub const RESP_SHARD_DOWN: u8 = 0xE3;
}

/// Structured decode failure for RPC bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcDecodeError {
    /// The frame kind byte names no known message.
    UnknownKind(u8),
    /// The body ran out of bytes or had an invalid tag in the named field.
    Corrupt {
        /// Which field was being decoded.
        context: &'static str,
    },
    /// The bytes decoded but describe an impossible value.
    Invalid {
        /// Which field was being decoded.
        context: &'static str,
        /// Why the value is impossible.
        reason: String,
    },
    /// Well-formed message followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for RpcDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcDecodeError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02X}"),
            RpcDecodeError::Corrupt { context } => {
                write!(f, "corrupt message: truncated or bad tag in {context}")
            }
            RpcDecodeError::Invalid { context, reason } => {
                write!(f, "invalid message: {context}: {reason}")
            }
            RpcDecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after message body")
            }
        }
    }
}

impl std::error::Error for RpcDecodeError {}

fn corrupt(context: &'static str) -> impl Fn(flm_sim::wire::DecodeError) -> RpcDecodeError {
    move |_| RpcDecodeError::Corrupt { context }
}

fn finish(r: &Reader<'_>) -> Result<(), RpcDecodeError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(RpcDecodeError::TrailingBytes {
            count: r.remaining(),
        })
    }
}

/// A refutation query: everything `regen --refute` takes, over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RefuteParams {
    /// Theorem family name (`ba-nodes`, …, `clock-sync`); the grammar of
    /// [`crate::query::Theorem::parse`].
    pub theorem: String,
    /// Protocol name for the registry; `None` uses the family's canonical
    /// default.
    pub protocol: Option<String>,
    /// Base graph; `None` uses the family's canonical default.
    pub graph: Option<Graph>,
    /// Fault budget.
    pub f: u32,
    /// Requested run policy; the server clamps it to its configured
    /// ceiling. `None` means "server default".
    pub policy: Option<RunPolicy>,
}

/// One FLMC-RPC request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Echo `payload` after holding a worker for `hold_ms` milliseconds
    /// (clamped by the server's configured cap). The hold is the load
    /// generator's knob for simulating expensive work and the saturation
    /// tests' knob for provoking load-shedding.
    Ping {
        /// Bytes echoed back in the pong.
        payload: Vec<u8>,
        /// Requested worker-hold duration in milliseconds.
        hold_ms: u32,
    },
    /// Run a refuter and return the resulting certificate.
    Refute(RefuteParams),
    /// Re-verify the violation recorded in the given certificate bytes.
    Verify {
        /// A portable `FLMC` certificate file image.
        cert: Vec<u8>,
    },
    /// Full `flm-audit` path over the given certificate bytes.
    Audit {
        /// A portable `FLMC` certificate file image.
        cert: Vec<u8>,
    },
    /// Fetch server counters, cache statistics, and per-phase timings.
    Stats,
    /// Pull the certificate stored under the given canonical query key
    /// bytes out of this server's `CertStore`. Never ownership-checked:
    /// after a topology change the *new* owner asks the *old* owner, who is
    /// by definition no longer the owner.
    FetchCert {
        /// Full canonical query key bytes (`RunKey::bytes`), not just the
        /// fingerprint — fingerprints index, bytes decide.
        key: Vec<u8>,
    },
    /// Ship a certificate into this server's `CertStore` under the given
    /// key. The receiver verifies the bytes decode and re-encode
    /// canonically before owning them (the same soundness rule as a store
    /// load), and rejects keys it does not own when sharded.
    PutCert {
        /// Full canonical query key bytes.
        key: Vec<u8>,
        /// Portable `FLMC` certificate bytes.
        cert: Vec<u8>,
    },
}

impl Request {
    /// Encodes the request into its frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = Writer::new();
        let kind = match self {
            Request::Ping { payload, hold_ms } => {
                w.bytes(payload).u32(*hold_ms);
                kind::REQ_PING
            }
            Request::Refute(p) => {
                w.str(&p.theorem);
                match &p.protocol {
                    Some(name) => w.bool(true).str(name),
                    None => w.bool(false),
                };
                match &p.graph {
                    Some(g) => w.bool(true).bytes(&g.to_bytes()),
                    None => w.bool(false),
                };
                w.u32(p.f);
                match &p.policy {
                    Some(policy) => {
                        w.bool(true);
                        policy.encode(&mut w);
                    }
                    None => {
                        w.bool(false);
                    }
                };
                kind::REQ_REFUTE
            }
            Request::Verify { cert } => {
                w.bytes(cert);
                kind::REQ_VERIFY
            }
            Request::Audit { cert } => {
                w.bytes(cert);
                kind::REQ_AUDIT
            }
            Request::Stats => kind::REQ_STATS,
            Request::FetchCert { key } => {
                w.bytes(key);
                kind::REQ_FETCH_CERT
            }
            Request::PutCert { key, cert } => {
                w.bytes(key).bytes(cert);
                kind::REQ_PUT_CERT
            }
        };
        Frame::new(kind, w.finish())
    }

    /// Decodes a request from a frame.
    ///
    /// # Errors
    ///
    /// Returns a structured [`RpcDecodeError`] on unknown kinds, truncated
    /// or invalid bodies (including graphs rejected by
    /// [`Graph::from_bytes`]), and trailing bytes.
    pub fn from_frame(frame: &Frame) -> Result<Request, RpcDecodeError> {
        let mut r = Reader::new(&frame.body);
        let req = match frame.kind {
            kind::REQ_PING => Request::Ping {
                payload: r.bytes().map_err(corrupt("ping.payload"))?.to_vec(),
                hold_ms: r.u32().map_err(corrupt("ping.hold_ms"))?,
            },
            kind::REQ_REFUTE => {
                let theorem = r.str().map_err(corrupt("refute.theorem"))?.to_owned();
                let protocol = if r.bool().map_err(corrupt("refute.protocol tag"))? {
                    Some(r.str().map_err(corrupt("refute.protocol"))?.to_owned())
                } else {
                    None
                };
                let graph = if r.bool().map_err(corrupt("refute.graph tag"))? {
                    let bytes = r.bytes().map_err(corrupt("refute.graph"))?;
                    Some(
                        Graph::from_bytes(bytes).map_err(|e| RpcDecodeError::Invalid {
                            context: "refute.graph",
                            reason: e.to_string(),
                        })?,
                    )
                } else {
                    None
                };
                let f = r.u32().map_err(corrupt("refute.f"))?;
                let policy = if r.bool().map_err(corrupt("refute.policy tag"))? {
                    Some(RunPolicy::decode(&mut r).map_err(corrupt("refute.policy"))?)
                } else {
                    None
                };
                Request::Refute(RefuteParams {
                    theorem,
                    protocol,
                    graph,
                    f,
                    policy,
                })
            }
            kind::REQ_VERIFY => Request::Verify {
                cert: r.bytes().map_err(corrupt("verify.cert"))?.to_vec(),
            },
            kind::REQ_AUDIT => Request::Audit {
                cert: r.bytes().map_err(corrupt("audit.cert"))?.to_vec(),
            },
            kind::REQ_STATS => Request::Stats,
            kind::REQ_FETCH_CERT => Request::FetchCert {
                key: r.bytes().map_err(corrupt("fetch_cert.key"))?.to_vec(),
            },
            kind::REQ_PUT_CERT => Request::PutCert {
                key: r.bytes().map_err(corrupt("put_cert.key"))?.to_vec(),
                cert: r.bytes().map_err(corrupt("put_cert.cert"))?.to_vec(),
            },
            other => return Err(RpcDecodeError::UnknownKind(other)),
        };
        finish(&r)?;
        Ok(req)
    }
}

/// Verification verdict, mirroring `flm-audit`'s exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Certificate decoded and the violation reproduced (exit 0).
    Verified,
    /// Certificate decoded but the violation did not reproduce (exit 1).
    NotReproduced,
    /// Bytes malformed or protocol unresolvable (exit 2).
    Malformed,
}

impl Verdict {
    /// The `flm-audit` exit code this verdict maps to.
    pub fn exit_code(self) -> u8 {
        match self {
            Verdict::Verified => 0,
            Verdict::NotReproduced => 1,
            Verdict::Malformed => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Verdict> {
        match v {
            0 => Some(Verdict::Verified),
            1 => Some(Verdict::NotReproduced),
            2 => Some(Verdict::Malformed),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => write!(f, "VERIFIED"),
            Verdict::NotReproduced => write!(f, "NOT REPRODUCED"),
            Verdict::Malformed => write!(f, "MALFORMED"),
        }
    }
}

/// Typed failure codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its body failed to decode.
    MalformedFrame,
    /// The request decoded but names something the server cannot serve
    /// (unknown theorem, unresolvable protocol, bad graph).
    BadRequest,
    /// The refuter itself declined (adequate graph, model violation, …).
    RefuteFailed,
    /// The connection exhausted its per-connection request budget.
    ConnectionBudget,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::RefuteFailed => 3,
            ErrorCode::ConnectionBudget => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::MalformedFrame),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::RefuteFailed),
            4 => Some(ErrorCode::ConnectionBudget),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::RefuteFailed => "refute-failed",
            ErrorCode::ConnectionBudget => "connection-budget",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// Declares the stats counter table exactly once: the struct fields, the
/// wire order, and the length-tagged codec are all generated from the same
/// list, so adding a counter is a single-site change that cannot drift
/// between the encoder and the decoder. On the wire the table travels as a
/// `u32` entry count followed by that many `u64` values — a peer built with
/// a different table answers with a structured [`RpcDecodeError::Invalid`]
/// instead of silently misaligned reads.
macro_rules! stats_counter_table {
    ($( $(#[$doc:meta])* $name:ident ),+ $(,)?) => {
        /// Server counters and cache statistics, the body of
        /// [`Response::Stats`]. The numeric counters are one length-tagged
        /// table on the wire (see [`stats_counter_table!`]); `profile`
        /// follows the table as a plain string.
        #[derive(Debug, Clone, Default, PartialEq)]
        pub struct StatsReport {
            $( $(#[$doc])* pub $name: u64, )+
            /// `flm_core::profile::report()` output when `FLM_PROFILE` is
            /// enabled in the server process; empty otherwise.
            pub profile: String,
        }

        impl StatsReport {
            /// How many `u64` counters this build's table carries; the
            /// length tag every encoded report leads with.
            pub const COUNTER_COUNT: u32 =
                [$(stringify!($name)),+].len() as u32;

            fn encode_into(&self, w: &mut Writer) {
                w.u32(Self::COUNTER_COUNT);
                $( w.u64(self.$name); )+
                w.str(&self.profile);
            }

            fn decode_from(r: &mut Reader<'_>) -> Result<StatsReport, RpcDecodeError> {
                let count = r.u32().map_err(corrupt("stats.counter_count"))?;
                if count != Self::COUNTER_COUNT {
                    return Err(RpcDecodeError::Invalid {
                        context: "stats.counter_count",
                        reason: format!(
                            "counter table has {count} entries, this build speaks {}",
                            Self::COUNTER_COUNT
                        ),
                    });
                }
                Ok(StatsReport {
                    $( $name: r
                        .u64()
                        .map_err(corrupt(concat!("stats.", stringify!($name))))?, )+
                    profile: r.str().map_err(corrupt("stats.profile"))?.to_owned(),
                })
            }
        }
    };
}

stats_counter_table! {
    /// Connections the acceptor admitted to the pool.
    connections_accepted,
    /// Connections answered with [`Response::Overloaded`] instead of being
    /// queued.
    connections_shed,
    /// Ping requests served.
    requests_ping,
    /// Refute requests served (successfully or not).
    requests_refute,
    /// Verify requests served.
    requests_verify,
    /// Audit requests served.
    requests_audit,
    /// Stats requests served.
    requests_stats,
    /// Typed error responses sent.
    responses_error,
    /// Frames (or bodies) rejected as malformed.
    malformed_frames,
    /// Process-global run-cache hits (see `flm_sim::runcache::stats`).
    cache_hits,
    /// Process-global run-cache misses.
    cache_misses,
    /// Behaviors currently stored in the run cache.
    cache_entries,
    /// Approximate behavior bytes served from the cache instead of re-run.
    cache_bytes_saved,
    /// Process-global prefix-trie hits — runs resumed from a stored tick
    /// snapshot (see `flm_sim::prefixcache::stats`).
    prefix_hits,
    /// Prefix-trie misses — runs simulated from tick 0.
    prefix_misses,
    /// Snapshots dropped by the prefix trie's LRU bound.
    prefix_evictions,
    /// Ticks skipped by resuming from snapshots instead of re-simulating.
    prefix_ticks_saved,
    /// Snapshots currently stored in the prefix trie.
    prefix_entries,
    /// Requests answered with [`Response::Overloaded`] while the worker
    /// pool and its queue were saturated (the connection stays open).
    requests_shed,
    /// Certificate-store hits served from its in-memory layer.
    store_mem_hits,
    /// Certificate-store hits served from disk (verified on load).
    store_disk_hits,
    /// Certificate-store lookups that fell through to a simulation.
    store_misses,
    /// Fresh certificates persisted to the store.
    store_stores,
    /// Damaged store entries quarantined instead of served.
    store_quarantined,
    /// Entries evicted from the store's bounded in-memory tier (the tier
    /// whose capacity `--store-mem-cap` / `FLM_STORE_MEM_CAP` sets).
    store_mem_evictions,
    /// FetchCert requests served.
    requests_fetch,
    /// PutCert requests served.
    requests_put,
    /// Requests answered with a typed `WrongShard` (the key's canonical
    /// owner is a different shard).
    wrong_shard,
    /// Certificates pulled from a peer shard's store on a local miss
    /// (verified on receive before being owned).
    peer_fetches,
    /// Refute requests for the asynchronous (`flp-async`) family, a subset
    /// of `requests_refute`.
    async_refutes,
    /// Process-global schedules explored by the asynchronous bivalence
    /// search (see `flm_core::refute::async_search_stats`).
    async_schedules_explored,
    /// Process-global bivalence look-ahead forks taken by the adversarial
    /// scheduler while choosing which delivery keeps the run undecided.
    async_bivalent_forks,
    /// This server's shard id; meaningful only when `shard_count > 0`.
    shard_id,
    /// Shards in the topology this server is part of; `0` means unsharded.
    shard_count,
}

impl StatsReport {
    /// Total requests served across every kind.
    pub fn requests_served(&self) -> u64 {
        self.requests_ping
            + self.requests_refute
            + self.requests_verify
            + self.requests_audit
            + self.requests_stats
            + self.requests_fetch
            + self.requests_put
    }

    /// Run-cache hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Warm answers across every cache layer: run cache plus both store
    /// tiers. The per-shard cluster table reports this as the hit column.
    pub fn warm_hits(&self) -> u64 {
        self.cache_hits + self.store_mem_hits + self.store_disk_hits
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "connections: {} accepted, {} shed",
            self.connections_accepted, self.connections_shed
        )?;
        writeln!(
            f,
            "requests: {} served (ping {}, refute {}, verify {}, audit {}, stats {})",
            self.requests_served(),
            self.requests_ping,
            self.requests_refute,
            self.requests_verify,
            self.requests_audit,
            self.requests_stats,
        )?;
        writeln!(
            f,
            "rejections: {} typed errors, {} malformed frames, {} requests shed",
            self.responses_error, self.malformed_frames, self.requests_shed
        )?;
        writeln!(
            f,
            "run cache: {} hits / {} misses ({:.1}% hit rate), {} entries, ~{} KiB reused",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_entries,
            self.cache_bytes_saved / 1024,
        )?;
        writeln!(
            f,
            "prefix trie: {} hits / {} misses, {} ticks skipped, {} snapshots, {} evictions",
            self.prefix_hits,
            self.prefix_misses,
            self.prefix_ticks_saved,
            self.prefix_entries,
            self.prefix_evictions,
        )?;
        write!(
            f,
            "cert store: {} mem hits / {} disk hits / {} misses, {} stored, {} quarantined, {} mem evictions",
            self.store_mem_hits,
            self.store_disk_hits,
            self.store_misses,
            self.store_stores,
            self.store_quarantined,
            self.store_mem_evictions,
        )?;
        if self.async_refutes > 0 || self.async_schedules_explored > 0 {
            write!(
                f,
                "\nasync: {} refutes, {} schedules explored, {} bivalent forks",
                self.async_refutes, self.async_schedules_explored, self.async_bivalent_forks,
            )?;
        }
        if self.shard_count > 0 {
            write!(
                f,
                "\nshard: {} of {} ({} fetch, {} put, {} wrong-shard, {} peer fetches)",
                self.shard_id,
                self.shard_count,
                self.requests_fetch,
                self.requests_put,
                self.wrong_shard,
                self.peer_fetches,
            )?;
        }
        if !self.profile.is_empty() {
            write!(f, "\n{}", self.profile.trim_end())?;
        }
        Ok(())
    }
}

/// Router-local counters carried in a [`ClusterStatsReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStatsReport {
    /// Front connections the router admitted.
    pub connections_accepted: u64,
    /// Front connections answered `Overloaded` and closed at the cap.
    pub connections_shed: u64,
    /// Requests forwarded to a backend shard.
    pub requests_routed: u64,
    /// Requests answered on the router itself (pings, cluster stats).
    pub requests_local: u64,
    /// Requests shed with `Overloaded` because the owning backend's
    /// pipeline was full.
    pub requests_shed: u64,
    /// Typed error responses the router itself produced.
    pub responses_error: u64,
    /// Frames (or bodies) the router rejected as malformed.
    pub malformed_frames: u64,
    /// Requests answered with a typed `ShardDown`.
    pub shard_down_answers: u64,
    /// Successful backend reconnects after a shard came back.
    pub backend_reconnects: u64,
}

impl RouterStatsReport {
    fn encode_into(&self, w: &mut Writer) {
        w.u64(self.connections_accepted)
            .u64(self.connections_shed)
            .u64(self.requests_routed)
            .u64(self.requests_local)
            .u64(self.requests_shed)
            .u64(self.responses_error)
            .u64(self.malformed_frames)
            .u64(self.shard_down_answers)
            .u64(self.backend_reconnects);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<RouterStatsReport, RpcDecodeError> {
        let mut next = |context: &'static str| r.u64().map_err(corrupt(context));
        Ok(RouterStatsReport {
            connections_accepted: next("router.connections_accepted")?,
            connections_shed: next("router.connections_shed")?,
            requests_routed: next("router.requests_routed")?,
            requests_local: next("router.requests_local")?,
            requests_shed: next("router.requests_shed")?,
            responses_error: next("router.responses_error")?,
            malformed_frames: next("router.malformed_frames")?,
            shard_down_answers: next("router.shard_down_answers")?,
            backend_reconnects: next("router.backend_reconnects")?,
        })
    }
}

/// One shard's row in a [`ClusterStatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// Shard id (its index in the `ShardMap`).
    pub shard: u32,
    /// The shard's backend address as the router dials it.
    pub addr: String,
    /// Whether the router's backend connection was up when the view was
    /// assembled.
    pub up: bool,
    /// Requests the router has forwarded to this shard since start.
    pub routed: u64,
    /// The shard's own counters; `None` when the shard was unreachable.
    pub report: Option<StatsReport>,
}

/// The aggregated cluster view a router answers `Stats` with: its own
/// counters plus one row per shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStatsReport {
    /// The router's front-plane counters.
    pub router: RouterStatsReport,
    /// Per-shard rows in shard-id order.
    pub shards: Vec<ShardStatus>,
}

impl ClusterStatsReport {
    /// Shards whose backend connection was up.
    pub fn shards_up(&self) -> usize {
        self.shards.iter().filter(|s| s.up).count()
    }
}

impl fmt::Display for ClusterStatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = &self.router;
        writeln!(
            f,
            "router: {} accepted / {} shed connections, {} routed, {} local, {} shed, \
             {} shard-down, {} reconnects",
            r.connections_accepted,
            r.connections_shed,
            r.requests_routed,
            r.requests_local,
            r.requests_shed,
            r.shard_down_answers,
            r.backend_reconnects,
        )?;
        writeln!(
            f,
            "cluster: {}/{} shards up",
            self.shards_up(),
            self.shards.len()
        )?;
        writeln!(
            f,
            "{:>5}  {:<21}  {:<4}  {:>8}  {:>8}  {:>9}  {:>8}  {:>7}",
            "shard", "addr", "up", "routed", "refutes", "warm hits", "stored", "evicted"
        )?;
        for s in &self.shards {
            let (refutes, warm, stored, evicted) = match &s.report {
                Some(rep) => (
                    rep.requests_refute.to_string(),
                    rep.warm_hits().to_string(),
                    rep.store_stores.to_string(),
                    rep.store_mem_evictions.to_string(),
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            writeln!(
                f,
                "{:>5}  {:<21}  {:<4}  {:>8}  {:>8}  {:>9}  {:>8}  {:>7}",
                s.shard,
                s.addr,
                if s.up { "yes" } else { "no" },
                s.routed,
                refutes,
                warm,
                stored,
                evicted,
            )?;
        }
        Ok(())
    }
}

/// One FLMC-RPC response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The echoed payload.
        payload: Vec<u8>,
    },
    /// A successful refutation: portable `FLMC` certificate bytes, ready
    /// for `flm-audit`.
    Certificate {
        /// The certificate file image.
        bytes: Vec<u8>,
    },
    /// Outcome of a [`Request::Verify`].
    Verify {
        /// The verdict.
        verdict: Verdict,
        /// Human-readable detail (failure reason, or the protocol name on
        /// success).
        detail: String,
    },
    /// Outcome of a [`Request::Audit`]: what `flm-audit` would have done.
    Audit {
        /// The `flm-audit` exit code (0 verified, 1 not reproduced, 2
        /// malformed).
        exit_code: u8,
        /// What the binary would print to stdout.
        report: String,
        /// What the binary would print to stderr.
        diagnostics: String,
    },
    /// Server statistics.
    Stats(StatsReport),
    /// Aggregated cluster statistics (a router answering for its shards).
    ClusterStats(ClusterStatsReport),
    /// Outcome of a [`Request::FetchCert`].
    FetchCert {
        /// The stored certificate bytes, or `None` when this server's store
        /// has no (valid) entry under that key.
        cert: Option<Vec<u8>>,
    },
    /// Acknowledgement of a [`Request::PutCert`]: the certificate verified
    /// and was persisted.
    PutCert,
    /// The request's canonical key is owned by a different shard; retry at
    /// the hinted owner.
    WrongShard {
        /// The owning shard's id.
        owner: u32,
        /// The owning shard's address (from the responding shard's
        /// `ShardMap`).
        addr: String,
    },
    /// The shard owning this key range is unreachable through the router;
    /// other key ranges keep serving.
    ShardDown {
        /// The unreachable shard's id.
        shard: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// Typed failure.
    Error {
        /// Failure classification.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Load-shedding answer: the pool and queue are full. The connection is
    /// closed after this frame, but it is *answered*, never silently
    /// dropped.
    Overloaded {
        /// Connections waiting in the accept queue when this was sent.
        queued: u32,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Encodes the response into its frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = Writer::new();
        let kind = match self {
            Response::Pong { payload } => {
                w.bytes(payload);
                kind::RESP_PONG
            }
            Response::Certificate { bytes } => {
                w.bytes(bytes);
                kind::RESP_CERTIFICATE
            }
            Response::Verify { verdict, detail } => {
                w.u8(verdict.exit_code()).str(detail);
                kind::RESP_VERIFY
            }
            Response::Audit {
                exit_code,
                report,
                diagnostics,
            } => {
                w.u8(*exit_code).str(report).str(diagnostics);
                kind::RESP_AUDIT
            }
            Response::Stats(s) => {
                s.encode_into(&mut w);
                kind::RESP_STATS
            }
            Response::ClusterStats(c) => {
                c.router.encode_into(&mut w);
                w.u32(c.shards.len() as u32);
                for s in &c.shards {
                    w.u32(s.shard).str(&s.addr).bool(s.up).u64(s.routed);
                    match &s.report {
                        Some(report) => {
                            w.bool(true);
                            report.encode_into(&mut w);
                        }
                        None => {
                            w.bool(false);
                        }
                    }
                }
                kind::RESP_CLUSTER_STATS
            }
            Response::FetchCert { cert } => {
                match cert {
                    Some(bytes) => w.bool(true).bytes(bytes),
                    None => w.bool(false),
                };
                kind::RESP_FETCH_CERT
            }
            Response::PutCert => kind::RESP_PUT_CERT,
            Response::WrongShard { owner, addr } => {
                w.u32(*owner).str(addr);
                kind::RESP_WRONG_SHARD
            }
            Response::ShardDown { shard, detail } => {
                w.u32(*shard).str(detail);
                kind::RESP_SHARD_DOWN
            }
            Response::Error { code, detail } => {
                w.u8(code.to_u8()).str(detail);
                kind::RESP_ERROR
            }
            Response::Overloaded { queued, detail } => {
                w.u32(*queued).str(detail);
                kind::RESP_OVERLOADED
            }
        };
        Frame::new(kind, w.finish())
    }

    /// Decodes a response from a frame.
    ///
    /// # Errors
    ///
    /// Returns a structured [`RpcDecodeError`] on unknown kinds, truncated
    /// or invalid bodies, and trailing bytes.
    pub fn from_frame(frame: &Frame) -> Result<Response, RpcDecodeError> {
        let mut r = Reader::new(&frame.body);
        let resp = match frame.kind {
            kind::RESP_PONG => Response::Pong {
                payload: r.bytes().map_err(corrupt("pong.payload"))?.to_vec(),
            },
            kind::RESP_CERTIFICATE => Response::Certificate {
                bytes: r.bytes().map_err(corrupt("certificate.bytes"))?.to_vec(),
            },
            kind::RESP_VERIFY => {
                let raw = r.u8().map_err(corrupt("verify.verdict"))?;
                let verdict = Verdict::from_u8(raw).ok_or(RpcDecodeError::Invalid {
                    context: "verify.verdict",
                    reason: format!("unknown verdict tag {raw}"),
                })?;
                Response::Verify {
                    verdict,
                    detail: r.str().map_err(corrupt("verify.detail"))?.to_owned(),
                }
            }
            kind::RESP_AUDIT => Response::Audit {
                exit_code: r.u8().map_err(corrupt("audit.exit_code"))?,
                report: r.str().map_err(corrupt("audit.report"))?.to_owned(),
                diagnostics: r.str().map_err(corrupt("audit.diagnostics"))?.to_owned(),
            },
            kind::RESP_STATS => Response::Stats(StatsReport::decode_from(&mut r)?),
            kind::RESP_CLUSTER_STATS => {
                let router = RouterStatsReport::decode_from(&mut r)?;
                let count = r.u32().map_err(corrupt("cluster.shard_count"))?;
                if count as usize > 1 << 16 {
                    return Err(RpcDecodeError::Invalid {
                        context: "cluster.shard_count",
                        reason: format!("{count} shards is past the sanity cap"),
                    });
                }
                let mut shards = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let shard = r.u32().map_err(corrupt("cluster.shard"))?;
                    let addr = r.str().map_err(corrupt("cluster.addr"))?.to_owned();
                    let up = r.bool().map_err(corrupt("cluster.up"))?;
                    let routed = r.u64().map_err(corrupt("cluster.routed"))?;
                    let report = if r.bool().map_err(corrupt("cluster.report tag"))? {
                        Some(StatsReport::decode_from(&mut r)?)
                    } else {
                        None
                    };
                    shards.push(ShardStatus {
                        shard,
                        addr,
                        up,
                        routed,
                        report,
                    });
                }
                Response::ClusterStats(ClusterStatsReport { router, shards })
            }
            kind::RESP_FETCH_CERT => Response::FetchCert {
                cert: if r.bool().map_err(corrupt("fetch_cert.tag"))? {
                    Some(r.bytes().map_err(corrupt("fetch_cert.cert"))?.to_vec())
                } else {
                    None
                },
            },
            kind::RESP_PUT_CERT => Response::PutCert,
            kind::RESP_WRONG_SHARD => Response::WrongShard {
                owner: r.u32().map_err(corrupt("wrong_shard.owner"))?,
                addr: r.str().map_err(corrupt("wrong_shard.addr"))?.to_owned(),
            },
            kind::RESP_SHARD_DOWN => Response::ShardDown {
                shard: r.u32().map_err(corrupt("shard_down.shard"))?,
                detail: r.str().map_err(corrupt("shard_down.detail"))?.to_owned(),
            },
            kind::RESP_ERROR => {
                let raw = r.u8().map_err(corrupt("error.code"))?;
                let code = ErrorCode::from_u8(raw).ok_or(RpcDecodeError::Invalid {
                    context: "error.code",
                    reason: format!("unknown error code {raw}"),
                })?;
                Response::Error {
                    code,
                    detail: r.str().map_err(corrupt("error.detail"))?.to_owned(),
                }
            }
            kind::RESP_OVERLOADED => Response::Overloaded {
                queued: r.u32().map_err(corrupt("overloaded.queued"))?,
                detail: r.str().map_err(corrupt("overloaded.detail"))?.to_owned(),
            },
            other => return Err(RpcDecodeError::UnknownKind(other)),
        };
        finish(&r)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    fn round_trip_request(req: Request) {
        let frame = req.to_frame();
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
        // Canonical: re-encoding the decoded value yields the same frame.
        assert_eq!(Request::from_frame(&frame).unwrap().to_frame(), frame);
    }

    fn round_trip_response(resp: Response) {
        let frame = resp.to_frame();
        assert_eq!(Response::from_frame(&frame).unwrap(), resp);
        assert_eq!(Response::from_frame(&frame).unwrap().to_frame(), frame);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping {
            payload: b"hello".to_vec(),
            hold_ms: 25,
        });
        round_trip_request(Request::Refute(RefuteParams {
            theorem: "ba-nodes".into(),
            protocol: Some("EIG(f=1)".into()),
            graph: Some(builders::triangle()),
            f: 1,
            policy: Some(RunPolicy::default()),
        }));
        round_trip_request(Request::Refute(RefuteParams {
            theorem: "clock-sync".into(),
            protocol: None,
            graph: None,
            f: 1,
            policy: None,
        }));
        round_trip_request(Request::Verify {
            cert: vec![1, 2, 3],
        });
        round_trip_request(Request::Audit { cert: vec![] });
        round_trip_request(Request::Stats);
        round_trip_request(Request::FetchCert {
            key: b"serve-query\0payload".to_vec(),
        });
        round_trip_request(Request::PutCert {
            key: b"serve-query\0payload".to_vec(),
            cert: vec![7; 32],
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong {
            payload: b"hello".to_vec(),
        });
        round_trip_response(Response::Certificate { bytes: vec![9; 64] });
        round_trip_response(Response::Verify {
            verdict: Verdict::NotReproduced,
            detail: "decision mismatch".into(),
        });
        round_trip_response(Response::Audit {
            exit_code: 2,
            report: String::new(),
            diagnostics: "bad magic".into(),
        });
        round_trip_response(Response::Stats(StatsReport {
            connections_accepted: 3,
            requests_refute: 2,
            cache_hits: 40,
            cache_misses: 2,
            prefix_hits: 7,
            prefix_misses: 5,
            prefix_ticks_saved: 93,
            prefix_entries: 12,
            requests_shed: 4,
            store_mem_hits: 9,
            store_disk_hits: 6,
            store_misses: 3,
            store_stores: 3,
            store_quarantined: 1,
            profile: "phase table".into(),
            ..StatsReport::default()
        }));
        round_trip_response(Response::Error {
            code: ErrorCode::BadRequest,
            detail: "unknown theorem".into(),
        });
        round_trip_response(Response::Overloaded {
            queued: 16,
            detail: "pool saturated".into(),
        });
        round_trip_response(Response::FetchCert { cert: None });
        round_trip_response(Response::FetchCert {
            cert: Some(vec![3; 48]),
        });
        round_trip_response(Response::PutCert);
        round_trip_response(Response::WrongShard {
            owner: 2,
            addr: "127.0.0.1:7417".into(),
        });
        round_trip_response(Response::ShardDown {
            shard: 1,
            detail: "backend unreachable".into(),
        });
        round_trip_response(Response::ClusterStats(ClusterStatsReport {
            router: RouterStatsReport {
                connections_accepted: 12,
                requests_routed: 90,
                requests_local: 3,
                shard_down_answers: 1,
                backend_reconnects: 2,
                ..RouterStatsReport::default()
            },
            shards: vec![
                ShardStatus {
                    shard: 0,
                    addr: "127.0.0.1:7416".into(),
                    up: true,
                    routed: 60,
                    report: Some(StatsReport {
                        requests_refute: 60,
                        store_mem_evictions: 4,
                        shard_id: 0,
                        shard_count: 2,
                        ..StatsReport::default()
                    }),
                },
                ShardStatus {
                    shard: 1,
                    addr: "127.0.0.1:7417".into(),
                    up: false,
                    routed: 30,
                    report: None,
                },
            ],
        }));
    }

    #[test]
    fn new_stats_fields_survive_the_wire_and_render() {
        let report = StatsReport {
            store_mem_evictions: 11,
            requests_fetch: 5,
            requests_put: 4,
            wrong_shard: 2,
            peer_fetches: 3,
            shard_id: 1,
            shard_count: 3,
            ..StatsReport::default()
        };
        let frame = Response::Stats(report.clone()).to_frame();
        let Response::Stats(back) = Response::from_frame(&frame).unwrap() else {
            panic!("stats came back as a different kind");
        };
        assert_eq!(back, report);
        assert_eq!(report.requests_served(), 9);
        let rendered = report.to_string();
        assert!(rendered.contains("shard: 1 of 3"), "{rendered}");
        assert!(rendered.contains("11 mem evictions"), "{rendered}");
    }

    #[test]
    fn cluster_stats_render_one_row_per_shard() {
        let view = ClusterStatsReport {
            router: RouterStatsReport::default(),
            shards: vec![
                ShardStatus {
                    shard: 0,
                    addr: "a:1".into(),
                    up: true,
                    routed: 5,
                    report: Some(StatsReport::default()),
                },
                ShardStatus {
                    shard: 1,
                    addr: "b:2".into(),
                    up: false,
                    routed: 0,
                    report: None,
                },
            ],
        };
        assert_eq!(view.shards_up(), 1);
        let rendered = view.to_string();
        assert!(rendered.contains("1/2 shards up"), "{rendered}");
        // One header line plus one line per shard, dashes for the down one.
        assert_eq!(rendered.lines().count(), 5, "{rendered}");
        assert!(rendered.lines().last().unwrap().contains('-'), "{rendered}");
    }

    #[test]
    fn stats_counter_table_is_length_tagged() {
        // The first wire field of a stats body is the table length; a peer
        // built with a different counter list fails structurally instead of
        // reading misaligned u64s.
        let frame = Response::Stats(StatsReport::default()).to_frame();
        let mut r = Reader::new(&frame.body);
        assert_eq!(r.u32().unwrap(), StatsReport::COUNTER_COUNT);

        let mut w = Writer::new();
        w.u32(StatsReport::COUNTER_COUNT - 1);
        for _ in 0..StatsReport::COUNTER_COUNT - 1 {
            w.u64(0);
        }
        w.str("");
        let forged = Frame::new(kind::RESP_STATS, w.finish());
        match Response::from_frame(&forged) {
            Err(RpcDecodeError::Invalid { context, .. }) => {
                assert_eq!(context, "stats.counter_count");
            }
            other => panic!("mis-sized counter table accepted: {other:?}"),
        }
    }

    #[test]
    fn async_counters_survive_the_wire_and_render() {
        let report = StatsReport {
            async_refutes: 2,
            async_schedules_explored: 17,
            async_bivalent_forks: 41,
            ..StatsReport::default()
        };
        let frame = Response::Stats(report.clone()).to_frame();
        let Response::Stats(back) = Response::from_frame(&frame).unwrap() else {
            panic!("stats came back as a different kind");
        };
        assert_eq!(back, report);
        let rendered = report.to_string();
        assert!(
            rendered.contains("async: 2 refutes, 17 schedules explored, 41 bivalent forks"),
            "{rendered}"
        );
        // The async line only appears once the family has been exercised.
        assert!(!StatsReport::default().to_string().contains("async:"));
    }

    #[test]
    fn unknown_kind_is_structured() {
        let frame = Frame::new(0x7F, vec![]);
        assert_eq!(
            Request::from_frame(&frame),
            Err(RpcDecodeError::UnknownKind(0x7F))
        );
        assert_eq!(
            Response::from_frame(&frame),
            Err(RpcDecodeError::UnknownKind(0x7F))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Request::Stats.to_frame();
        frame.body.extend_from_slice(b"junk");
        assert_eq!(
            Request::from_frame(&frame),
            Err(RpcDecodeError::TrailingBytes { count: 4 })
        );
    }

    #[test]
    fn hostile_graph_bytes_rejected_structurally() {
        // A refute request whose embedded graph claims 2^31 nodes must be
        // rejected by Graph::from_bytes's caps, not by an allocation.
        let mut w = Writer::new();
        w.str("ba-nodes").bool(false).bool(true);
        let mut g = Writer::new();
        g.u32(1 << 31);
        w.bytes(&g.finish()).u32(1).bool(false);
        let frame = Frame::new(kind::REQ_REFUTE, w.finish());
        match Request::from_frame(&frame) {
            Err(RpcDecodeError::Invalid { context, .. }) => {
                assert_eq!(context, "refute.graph");
            }
            other => panic!("hostile graph accepted: {other:?}"),
        }
    }

    #[test]
    fn stats_report_totals_and_hit_rate() {
        let s = StatsReport {
            requests_ping: 1,
            requests_refute: 2,
            requests_verify: 3,
            requests_audit: 4,
            requests_stats: 5,
            cache_hits: 3,
            cache_misses: 1,
            ..StatsReport::default()
        };
        assert_eq!(s.requests_served(), 15);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(StatsReport::default().cache_hit_rate(), 0.0);
    }
}
