//! The FLMC-RPC message vocabulary: typed requests and responses encoded
//! into [`crate::frame`] bodies with the same [`flm_sim::wire`] codec the
//! certificate format uses.
//!
//! A request names a theorem family, a protocol (through the
//! `flm-protocols` registry grammar), a graph (as `Graph::to_bytes`), and a
//! fault budget; the matching response carries a portable `FLMC`
//! certificate, so anything a server returns can be piped straight into
//! `flm-audit`. Malformed bodies decode to a structured
//! [`RpcDecodeError`] — the server answers those with a typed
//! [`Response::Error`] frame, never a dropped socket.
//!
//! Kind bytes: requests occupy `0x01..=0x05`, successful responses mirror
//! them at `0x81..=0x85`, and the two failure responses live at `0xE0`
//! (error) and `0xE1` (overloaded — the load-shedding answer).

use std::fmt;

use flm_graph::Graph;
use flm_sim::wire::{Reader, Writer};
use flm_sim::RunPolicy;

use crate::frame::Frame;

/// Request kind bytes.
pub mod kind {
    /// Liveness probe / load-generator pacing primitive.
    pub const REQ_PING: u8 = 0x01;
    /// Run a refuter, answer with a certificate.
    pub const REQ_REFUTE: u8 = 0x02;
    /// Re-verify a certificate's violation.
    pub const REQ_VERIFY: u8 = 0x03;
    /// Full audit path (decode, canonicality, resolve, re-verify).
    pub const REQ_AUDIT: u8 = 0x04;
    /// Server counters and cache statistics.
    pub const REQ_STATS: u8 = 0x05;
    /// Response to [`REQ_PING`].
    pub const RESP_PONG: u8 = 0x81;
    /// Response to [`REQ_REFUTE`]: a portable `FLMC` certificate.
    pub const RESP_CERTIFICATE: u8 = 0x82;
    /// Response to [`REQ_VERIFY`].
    pub const RESP_VERIFY: u8 = 0x83;
    /// Response to [`REQ_AUDIT`].
    pub const RESP_AUDIT: u8 = 0x84;
    /// Response to [`REQ_STATS`].
    pub const RESP_STATS: u8 = 0x85;
    /// Typed failure response.
    pub const RESP_ERROR: u8 = 0xE0;
    /// Load-shedding response: the server is saturated, try again later.
    pub const RESP_OVERLOADED: u8 = 0xE1;
}

/// Structured decode failure for RPC bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcDecodeError {
    /// The frame kind byte names no known message.
    UnknownKind(u8),
    /// The body ran out of bytes or had an invalid tag in the named field.
    Corrupt {
        /// Which field was being decoded.
        context: &'static str,
    },
    /// The bytes decoded but describe an impossible value.
    Invalid {
        /// Which field was being decoded.
        context: &'static str,
        /// Why the value is impossible.
        reason: String,
    },
    /// Well-formed message followed by extra bytes.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for RpcDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcDecodeError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02X}"),
            RpcDecodeError::Corrupt { context } => {
                write!(f, "corrupt message: truncated or bad tag in {context}")
            }
            RpcDecodeError::Invalid { context, reason } => {
                write!(f, "invalid message: {context}: {reason}")
            }
            RpcDecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after message body")
            }
        }
    }
}

impl std::error::Error for RpcDecodeError {}

fn corrupt(context: &'static str) -> impl Fn(flm_sim::wire::DecodeError) -> RpcDecodeError {
    move |_| RpcDecodeError::Corrupt { context }
}

fn finish(r: &Reader<'_>) -> Result<(), RpcDecodeError> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(RpcDecodeError::TrailingBytes {
            count: r.remaining(),
        })
    }
}

/// A refutation query: everything `regen --refute` takes, over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RefuteParams {
    /// Theorem family name (`ba-nodes`, …, `clock-sync`); the grammar of
    /// [`crate::query::Theorem::parse`].
    pub theorem: String,
    /// Protocol name for the registry; `None` uses the family's canonical
    /// default.
    pub protocol: Option<String>,
    /// Base graph; `None` uses the family's canonical default.
    pub graph: Option<Graph>,
    /// Fault budget.
    pub f: u32,
    /// Requested run policy; the server clamps it to its configured
    /// ceiling. `None` means "server default".
    pub policy: Option<RunPolicy>,
}

/// One FLMC-RPC request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Echo `payload` after holding a worker for `hold_ms` milliseconds
    /// (clamped by the server's configured cap). The hold is the load
    /// generator's knob for simulating expensive work and the saturation
    /// tests' knob for provoking load-shedding.
    Ping {
        /// Bytes echoed back in the pong.
        payload: Vec<u8>,
        /// Requested worker-hold duration in milliseconds.
        hold_ms: u32,
    },
    /// Run a refuter and return the resulting certificate.
    Refute(RefuteParams),
    /// Re-verify the violation recorded in the given certificate bytes.
    Verify {
        /// A portable `FLMC` certificate file image.
        cert: Vec<u8>,
    },
    /// Full `flm-audit` path over the given certificate bytes.
    Audit {
        /// A portable `FLMC` certificate file image.
        cert: Vec<u8>,
    },
    /// Fetch server counters, cache statistics, and per-phase timings.
    Stats,
}

impl Request {
    /// Encodes the request into its frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = Writer::new();
        let kind = match self {
            Request::Ping { payload, hold_ms } => {
                w.bytes(payload).u32(*hold_ms);
                kind::REQ_PING
            }
            Request::Refute(p) => {
                w.str(&p.theorem);
                match &p.protocol {
                    Some(name) => w.bool(true).str(name),
                    None => w.bool(false),
                };
                match &p.graph {
                    Some(g) => w.bool(true).bytes(&g.to_bytes()),
                    None => w.bool(false),
                };
                w.u32(p.f);
                match &p.policy {
                    Some(policy) => {
                        w.bool(true);
                        policy.encode(&mut w);
                    }
                    None => {
                        w.bool(false);
                    }
                };
                kind::REQ_REFUTE
            }
            Request::Verify { cert } => {
                w.bytes(cert);
                kind::REQ_VERIFY
            }
            Request::Audit { cert } => {
                w.bytes(cert);
                kind::REQ_AUDIT
            }
            Request::Stats => kind::REQ_STATS,
        };
        Frame::new(kind, w.finish())
    }

    /// Decodes a request from a frame.
    ///
    /// # Errors
    ///
    /// Returns a structured [`RpcDecodeError`] on unknown kinds, truncated
    /// or invalid bodies (including graphs rejected by
    /// [`Graph::from_bytes`]), and trailing bytes.
    pub fn from_frame(frame: &Frame) -> Result<Request, RpcDecodeError> {
        let mut r = Reader::new(&frame.body);
        let req = match frame.kind {
            kind::REQ_PING => Request::Ping {
                payload: r.bytes().map_err(corrupt("ping.payload"))?.to_vec(),
                hold_ms: r.u32().map_err(corrupt("ping.hold_ms"))?,
            },
            kind::REQ_REFUTE => {
                let theorem = r.str().map_err(corrupt("refute.theorem"))?.to_owned();
                let protocol = if r.bool().map_err(corrupt("refute.protocol tag"))? {
                    Some(r.str().map_err(corrupt("refute.protocol"))?.to_owned())
                } else {
                    None
                };
                let graph = if r.bool().map_err(corrupt("refute.graph tag"))? {
                    let bytes = r.bytes().map_err(corrupt("refute.graph"))?;
                    Some(
                        Graph::from_bytes(bytes).map_err(|e| RpcDecodeError::Invalid {
                            context: "refute.graph",
                            reason: e.to_string(),
                        })?,
                    )
                } else {
                    None
                };
                let f = r.u32().map_err(corrupt("refute.f"))?;
                let policy = if r.bool().map_err(corrupt("refute.policy tag"))? {
                    Some(RunPolicy::decode(&mut r).map_err(corrupt("refute.policy"))?)
                } else {
                    None
                };
                Request::Refute(RefuteParams {
                    theorem,
                    protocol,
                    graph,
                    f,
                    policy,
                })
            }
            kind::REQ_VERIFY => Request::Verify {
                cert: r.bytes().map_err(corrupt("verify.cert"))?.to_vec(),
            },
            kind::REQ_AUDIT => Request::Audit {
                cert: r.bytes().map_err(corrupt("audit.cert"))?.to_vec(),
            },
            kind::REQ_STATS => Request::Stats,
            other => return Err(RpcDecodeError::UnknownKind(other)),
        };
        finish(&r)?;
        Ok(req)
    }
}

/// Verification verdict, mirroring `flm-audit`'s exit codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Certificate decoded and the violation reproduced (exit 0).
    Verified,
    /// Certificate decoded but the violation did not reproduce (exit 1).
    NotReproduced,
    /// Bytes malformed or protocol unresolvable (exit 2).
    Malformed,
}

impl Verdict {
    /// The `flm-audit` exit code this verdict maps to.
    pub fn exit_code(self) -> u8 {
        match self {
            Verdict::Verified => 0,
            Verdict::NotReproduced => 1,
            Verdict::Malformed => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Verdict> {
        match v {
            0 => Some(Verdict::Verified),
            1 => Some(Verdict::NotReproduced),
            2 => Some(Verdict::Malformed),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified => write!(f, "VERIFIED"),
            Verdict::NotReproduced => write!(f, "NOT REPRODUCED"),
            Verdict::Malformed => write!(f, "MALFORMED"),
        }
    }
}

/// Typed failure codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its body failed to decode.
    MalformedFrame,
    /// The request decoded but names something the server cannot serve
    /// (unknown theorem, unresolvable protocol, bad graph).
    BadRequest,
    /// The refuter itself declined (adequate graph, model violation, …).
    RefuteFailed,
    /// The connection exhausted its per-connection request budget.
    ConnectionBudget,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::MalformedFrame => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::RefuteFailed => 3,
            ErrorCode::ConnectionBudget => 4,
            ErrorCode::Internal => 5,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::MalformedFrame),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::RefuteFailed),
            4 => Some(ErrorCode::ConnectionBudget),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::RefuteFailed => "refute-failed",
            ErrorCode::ConnectionBudget => "connection-budget",
            ErrorCode::Internal => "internal",
        };
        write!(f, "{name}")
    }
}

/// Server counters and cache statistics, the body of [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    /// Connections the acceptor admitted to the pool.
    pub connections_accepted: u64,
    /// Connections answered with [`Response::Overloaded`] instead of being
    /// queued.
    pub connections_shed: u64,
    /// Ping requests served.
    pub requests_ping: u64,
    /// Refute requests served (successfully or not).
    pub requests_refute: u64,
    /// Verify requests served.
    pub requests_verify: u64,
    /// Audit requests served.
    pub requests_audit: u64,
    /// Stats requests served.
    pub requests_stats: u64,
    /// Typed error responses sent.
    pub responses_error: u64,
    /// Frames (or bodies) rejected as malformed.
    pub malformed_frames: u64,
    /// Process-global run-cache hits (see `flm_sim::runcache::stats`).
    pub cache_hits: u64,
    /// Process-global run-cache misses.
    pub cache_misses: u64,
    /// Behaviors currently stored in the run cache.
    pub cache_entries: u64,
    /// Approximate behavior bytes served from the cache instead of re-run.
    pub cache_bytes_saved: u64,
    /// Process-global prefix-trie hits — runs resumed from a stored tick
    /// snapshot (see `flm_sim::prefixcache::stats`).
    pub prefix_hits: u64,
    /// Prefix-trie misses — runs simulated from tick 0.
    pub prefix_misses: u64,
    /// Snapshots dropped by the prefix trie's LRU bound.
    pub prefix_evictions: u64,
    /// Ticks skipped by resuming from snapshots instead of re-simulating.
    pub prefix_ticks_saved: u64,
    /// Snapshots currently stored in the prefix trie.
    pub prefix_entries: u64,
    /// Requests answered with [`Response::Overloaded`] while the worker
    /// pool and its queue were saturated (the connection stays open).
    pub requests_shed: u64,
    /// Certificate-store hits served from its in-memory layer.
    pub store_mem_hits: u64,
    /// Certificate-store hits served from disk (verified on load).
    pub store_disk_hits: u64,
    /// Certificate-store lookups that fell through to a simulation.
    pub store_misses: u64,
    /// Fresh certificates persisted to the store.
    pub store_stores: u64,
    /// Damaged store entries quarantined instead of served.
    pub store_quarantined: u64,
    /// `flm_core::profile::report()` output when `FLM_PROFILE` is enabled
    /// in the server process; empty otherwise.
    pub profile: String,
}

impl StatsReport {
    /// Total requests served across every kind.
    pub fn requests_served(&self) -> u64 {
        self.requests_ping
            + self.requests_refute
            + self.requests_verify
            + self.requests_audit
            + self.requests_stats
    }

    /// Run-cache hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "connections: {} accepted, {} shed",
            self.connections_accepted, self.connections_shed
        )?;
        writeln!(
            f,
            "requests: {} served (ping {}, refute {}, verify {}, audit {}, stats {})",
            self.requests_served(),
            self.requests_ping,
            self.requests_refute,
            self.requests_verify,
            self.requests_audit,
            self.requests_stats,
        )?;
        writeln!(
            f,
            "rejections: {} typed errors, {} malformed frames, {} requests shed",
            self.responses_error, self.malformed_frames, self.requests_shed
        )?;
        writeln!(
            f,
            "run cache: {} hits / {} misses ({:.1}% hit rate), {} entries, ~{} KiB reused",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_entries,
            self.cache_bytes_saved / 1024,
        )?;
        writeln!(
            f,
            "prefix trie: {} hits / {} misses, {} ticks skipped, {} snapshots, {} evictions",
            self.prefix_hits,
            self.prefix_misses,
            self.prefix_ticks_saved,
            self.prefix_entries,
            self.prefix_evictions,
        )?;
        write!(
            f,
            "cert store: {} mem hits / {} disk hits / {} misses, {} stored, {} quarantined",
            self.store_mem_hits,
            self.store_disk_hits,
            self.store_misses,
            self.store_stores,
            self.store_quarantined,
        )?;
        if !self.profile.is_empty() {
            write!(f, "\n{}", self.profile.trim_end())?;
        }
        Ok(())
    }
}

/// One FLMC-RPC response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The echoed payload.
        payload: Vec<u8>,
    },
    /// A successful refutation: portable `FLMC` certificate bytes, ready
    /// for `flm-audit`.
    Certificate {
        /// The certificate file image.
        bytes: Vec<u8>,
    },
    /// Outcome of a [`Request::Verify`].
    Verify {
        /// The verdict.
        verdict: Verdict,
        /// Human-readable detail (failure reason, or the protocol name on
        /// success).
        detail: String,
    },
    /// Outcome of a [`Request::Audit`]: what `flm-audit` would have done.
    Audit {
        /// The `flm-audit` exit code (0 verified, 1 not reproduced, 2
        /// malformed).
        exit_code: u8,
        /// What the binary would print to stdout.
        report: String,
        /// What the binary would print to stderr.
        diagnostics: String,
    },
    /// Server statistics.
    Stats(StatsReport),
    /// Typed failure.
    Error {
        /// Failure classification.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Load-shedding answer: the pool and queue are full. The connection is
    /// closed after this frame, but it is *answered*, never silently
    /// dropped.
    Overloaded {
        /// Connections waiting in the accept queue when this was sent.
        queued: u32,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Encodes the response into its frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = Writer::new();
        let kind = match self {
            Response::Pong { payload } => {
                w.bytes(payload);
                kind::RESP_PONG
            }
            Response::Certificate { bytes } => {
                w.bytes(bytes);
                kind::RESP_CERTIFICATE
            }
            Response::Verify { verdict, detail } => {
                w.u8(verdict.exit_code()).str(detail);
                kind::RESP_VERIFY
            }
            Response::Audit {
                exit_code,
                report,
                diagnostics,
            } => {
                w.u8(*exit_code).str(report).str(diagnostics);
                kind::RESP_AUDIT
            }
            Response::Stats(s) => {
                w.u64(s.connections_accepted)
                    .u64(s.connections_shed)
                    .u64(s.requests_ping)
                    .u64(s.requests_refute)
                    .u64(s.requests_verify)
                    .u64(s.requests_audit)
                    .u64(s.requests_stats)
                    .u64(s.responses_error)
                    .u64(s.malformed_frames)
                    .u64(s.cache_hits)
                    .u64(s.cache_misses)
                    .u64(s.cache_entries)
                    .u64(s.cache_bytes_saved)
                    .u64(s.prefix_hits)
                    .u64(s.prefix_misses)
                    .u64(s.prefix_evictions)
                    .u64(s.prefix_ticks_saved)
                    .u64(s.prefix_entries)
                    .u64(s.requests_shed)
                    .u64(s.store_mem_hits)
                    .u64(s.store_disk_hits)
                    .u64(s.store_misses)
                    .u64(s.store_stores)
                    .u64(s.store_quarantined)
                    .str(&s.profile);
                kind::RESP_STATS
            }
            Response::Error { code, detail } => {
                w.u8(code.to_u8()).str(detail);
                kind::RESP_ERROR
            }
            Response::Overloaded { queued, detail } => {
                w.u32(*queued).str(detail);
                kind::RESP_OVERLOADED
            }
        };
        Frame::new(kind, w.finish())
    }

    /// Decodes a response from a frame.
    ///
    /// # Errors
    ///
    /// Returns a structured [`RpcDecodeError`] on unknown kinds, truncated
    /// or invalid bodies, and trailing bytes.
    pub fn from_frame(frame: &Frame) -> Result<Response, RpcDecodeError> {
        let mut r = Reader::new(&frame.body);
        let resp = match frame.kind {
            kind::RESP_PONG => Response::Pong {
                payload: r.bytes().map_err(corrupt("pong.payload"))?.to_vec(),
            },
            kind::RESP_CERTIFICATE => Response::Certificate {
                bytes: r.bytes().map_err(corrupt("certificate.bytes"))?.to_vec(),
            },
            kind::RESP_VERIFY => {
                let raw = r.u8().map_err(corrupt("verify.verdict"))?;
                let verdict = Verdict::from_u8(raw).ok_or(RpcDecodeError::Invalid {
                    context: "verify.verdict",
                    reason: format!("unknown verdict tag {raw}"),
                })?;
                Response::Verify {
                    verdict,
                    detail: r.str().map_err(corrupt("verify.detail"))?.to_owned(),
                }
            }
            kind::RESP_AUDIT => Response::Audit {
                exit_code: r.u8().map_err(corrupt("audit.exit_code"))?,
                report: r.str().map_err(corrupt("audit.report"))?.to_owned(),
                diagnostics: r.str().map_err(corrupt("audit.diagnostics"))?.to_owned(),
            },
            kind::RESP_STATS => {
                let mut next = |context: &'static str| r.u64().map_err(corrupt(context));
                let s = StatsReport {
                    connections_accepted: next("stats.connections_accepted")?,
                    connections_shed: next("stats.connections_shed")?,
                    requests_ping: next("stats.requests_ping")?,
                    requests_refute: next("stats.requests_refute")?,
                    requests_verify: next("stats.requests_verify")?,
                    requests_audit: next("stats.requests_audit")?,
                    requests_stats: next("stats.requests_stats")?,
                    responses_error: next("stats.responses_error")?,
                    malformed_frames: next("stats.malformed_frames")?,
                    cache_hits: next("stats.cache_hits")?,
                    cache_misses: next("stats.cache_misses")?,
                    cache_entries: next("stats.cache_entries")?,
                    cache_bytes_saved: next("stats.cache_bytes_saved")?,
                    prefix_hits: next("stats.prefix_hits")?,
                    prefix_misses: next("stats.prefix_misses")?,
                    prefix_evictions: next("stats.prefix_evictions")?,
                    prefix_ticks_saved: next("stats.prefix_ticks_saved")?,
                    prefix_entries: next("stats.prefix_entries")?,
                    requests_shed: next("stats.requests_shed")?,
                    store_mem_hits: next("stats.store_mem_hits")?,
                    store_disk_hits: next("stats.store_disk_hits")?,
                    store_misses: next("stats.store_misses")?,
                    store_stores: next("stats.store_stores")?,
                    store_quarantined: next("stats.store_quarantined")?,
                    profile: String::new(),
                };
                let profile = r.str().map_err(corrupt("stats.profile"))?.to_owned();
                Response::Stats(StatsReport { profile, ..s })
            }
            kind::RESP_ERROR => {
                let raw = r.u8().map_err(corrupt("error.code"))?;
                let code = ErrorCode::from_u8(raw).ok_or(RpcDecodeError::Invalid {
                    context: "error.code",
                    reason: format!("unknown error code {raw}"),
                })?;
                Response::Error {
                    code,
                    detail: r.str().map_err(corrupt("error.detail"))?.to_owned(),
                }
            }
            kind::RESP_OVERLOADED => Response::Overloaded {
                queued: r.u32().map_err(corrupt("overloaded.queued"))?,
                detail: r.str().map_err(corrupt("overloaded.detail"))?.to_owned(),
            },
            other => return Err(RpcDecodeError::UnknownKind(other)),
        };
        finish(&r)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flm_graph::builders;

    fn round_trip_request(req: Request) {
        let frame = req.to_frame();
        assert_eq!(Request::from_frame(&frame).unwrap(), req);
        // Canonical: re-encoding the decoded value yields the same frame.
        assert_eq!(Request::from_frame(&frame).unwrap().to_frame(), frame);
    }

    fn round_trip_response(resp: Response) {
        let frame = resp.to_frame();
        assert_eq!(Response::from_frame(&frame).unwrap(), resp);
        assert_eq!(Response::from_frame(&frame).unwrap().to_frame(), frame);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping {
            payload: b"hello".to_vec(),
            hold_ms: 25,
        });
        round_trip_request(Request::Refute(RefuteParams {
            theorem: "ba-nodes".into(),
            protocol: Some("EIG(f=1)".into()),
            graph: Some(builders::triangle()),
            f: 1,
            policy: Some(RunPolicy::default()),
        }));
        round_trip_request(Request::Refute(RefuteParams {
            theorem: "clock-sync".into(),
            protocol: None,
            graph: None,
            f: 1,
            policy: None,
        }));
        round_trip_request(Request::Verify {
            cert: vec![1, 2, 3],
        });
        round_trip_request(Request::Audit { cert: vec![] });
        round_trip_request(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong {
            payload: b"hello".to_vec(),
        });
        round_trip_response(Response::Certificate { bytes: vec![9; 64] });
        round_trip_response(Response::Verify {
            verdict: Verdict::NotReproduced,
            detail: "decision mismatch".into(),
        });
        round_trip_response(Response::Audit {
            exit_code: 2,
            report: String::new(),
            diagnostics: "bad magic".into(),
        });
        round_trip_response(Response::Stats(StatsReport {
            connections_accepted: 3,
            requests_refute: 2,
            cache_hits: 40,
            cache_misses: 2,
            prefix_hits: 7,
            prefix_misses: 5,
            prefix_ticks_saved: 93,
            prefix_entries: 12,
            requests_shed: 4,
            store_mem_hits: 9,
            store_disk_hits: 6,
            store_misses: 3,
            store_stores: 3,
            store_quarantined: 1,
            profile: "phase table".into(),
            ..StatsReport::default()
        }));
        round_trip_response(Response::Error {
            code: ErrorCode::BadRequest,
            detail: "unknown theorem".into(),
        });
        round_trip_response(Response::Overloaded {
            queued: 16,
            detail: "pool saturated".into(),
        });
    }

    #[test]
    fn unknown_kind_is_structured() {
        let frame = Frame::new(0x7F, vec![]);
        assert_eq!(
            Request::from_frame(&frame),
            Err(RpcDecodeError::UnknownKind(0x7F))
        );
        assert_eq!(
            Response::from_frame(&frame),
            Err(RpcDecodeError::UnknownKind(0x7F))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Request::Stats.to_frame();
        frame.body.extend_from_slice(b"junk");
        assert_eq!(
            Request::from_frame(&frame),
            Err(RpcDecodeError::TrailingBytes { count: 4 })
        );
    }

    #[test]
    fn hostile_graph_bytes_rejected_structurally() {
        // A refute request whose embedded graph claims 2^31 nodes must be
        // rejected by Graph::from_bytes's caps, not by an allocation.
        let mut w = Writer::new();
        w.str("ba-nodes").bool(false).bool(true);
        let mut g = Writer::new();
        g.u32(1 << 31);
        w.bytes(&g.finish()).u32(1).bool(false);
        let frame = Frame::new(kind::REQ_REFUTE, w.finish());
        match Request::from_frame(&frame) {
            Err(RpcDecodeError::Invalid { context, .. }) => {
                assert_eq!(context, "refute.graph");
            }
            other => panic!("hostile graph accepted: {other:?}"),
        }
    }

    #[test]
    fn stats_report_totals_and_hit_rate() {
        let s = StatsReport {
            requests_ping: 1,
            requests_refute: 2,
            requests_verify: 3,
            requests_audit: 4,
            requests_stats: 5,
            cache_hits: 3,
            cache_misses: 1,
            ..StatsReport::default()
        };
        assert_eq!(s.requests_served(), 15);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(StatsReport::default().cache_hit_rate(), 0.0);
    }
}
