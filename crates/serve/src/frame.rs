//! FLMC-RPC framing: length-prefixed, versioned message envelopes.
//!
//! Every message on an `flm-serve` connection — request or response — is one
//! frame:
//!
//! ```text
//! "FLMR" | version: u8 (= 1) | kind: u8 | len: u32 BE | body[len]
//! ```
//!
//! The layer is deliberately dumb: it moves an opaque `(kind, body)` pair and
//! enforces exactly three things — the magic, the version, and a body-size
//! cap. Everything semantic (which kinds exist, how bodies decode) lives in
//! [`crate::rpc`], built on [`flm_sim::wire`] just like the `FLMC`
//! certificate format it transports.
//!
//! Decoding is hardened the same way `flm_core::codec` is: a hostile length
//! prefix can never provoke an oversized allocation. [`Frame::decode`]
//! checks the claimed length against both the configured cap and the bytes
//! actually present before touching memory, and [`read_frame`] streams the
//! body through [`std::io::Read::take`], so a peer claiming a huge body that
//! never arrives costs at most the bytes it really sent.

use std::fmt;
use std::io::{self, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: &[u8; 4] = b"FLMR";

/// Current framing version.
pub const VERSION: u8 = 1;

/// Fixed header size: magic + version + kind + body length.
pub const HEADER_BYTES: usize = 10;

/// Default body-size cap. Certificates for every in-tree refutation are a
/// few KiB; 4 MiB leaves generous headroom without letting one connection
/// stage an allocation attack.
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 << 20;

/// The largest body the wire format can carry at all: the length prefix is
/// a `u32`, so anything longer cannot be framed, only rejected.
pub const MAX_ENCODABLE_BODY_BYTES: usize = u32::MAX as usize;

/// One framed message: an opaque kind byte plus body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind; the RPC layer assigns meaning (see [`crate::rpc`]).
    pub kind: u8,
    /// Opaque body bytes.
    pub body: Vec<u8>,
}

/// Structured framing failure. Mirrors `CertDecodeError`'s philosophy:
/// hostile bytes yield a typed error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The input does not start with the `FLMR` magic.
    BadMagic,
    /// The version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// The input ended before the full header or body arrived.
    Truncated,
    /// The length prefix exceeds the configured body cap.
    Oversize {
        /// The claimed body length.
        len: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// The body is too large for the `u32` length prefix to represent —
    /// an encode-side failure: framing it would silently truncate the
    /// length and desynchronize the stream.
    BodyTooLarge {
        /// The unencodable body length.
        len: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not an FLMC-RPC frame (bad magic)"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::BodyTooLarge { len } => {
                write!(f, "frame body of {len} bytes exceeds the u32 length prefix")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Failure while reading a frame from a stream: either the transport broke
/// or the bytes that arrived are not a valid frame.
#[derive(Debug)]
pub enum FrameReadError {
    /// The peer closed the connection cleanly before any frame byte.
    Eof,
    /// Transport-level failure (includes read timeouts).
    Io(io::Error),
    /// The bytes read are not a well-formed frame.
    Frame(FrameError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Eof => write!(f, "connection closed"),
            FrameReadError::Io(e) => write!(f, "transport error: {e}"),
            FrameReadError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<FrameError> for FrameReadError {
    fn from(e: FrameError) -> Self {
        FrameReadError::Frame(e)
    }
}

impl Frame {
    /// Builds a frame from a kind byte and body bytes.
    pub fn new(kind: u8, body: Vec<u8>) -> Frame {
        Frame { kind, body }
    }

    /// Encodes the frame to its canonical bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError::BodyTooLarge`] when the body does not fit the `u32`
    /// length prefix. The cast this replaces silently truncated the length
    /// for bodies over 4 GiB, mis-framing every byte after the header.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let len = encodable_body_len(self.body.len())?;
        let mut out = Vec::with_capacity(HEADER_BYTES + self.body.len());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.kind);
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&self.body);
        Ok(out)
    }

    /// Decodes one frame from the front of `bytes`, returning the frame and
    /// the number of bytes consumed. The claimed body length is checked
    /// against both `max_body` and the bytes actually present before any
    /// allocation, so hostile prefixes are cheap to reject.
    ///
    /// # Errors
    ///
    /// Returns a structured [`FrameError`] on bad magic, an unsupported
    /// version, a truncated header or body, or an oversized length prefix.
    pub fn decode(bytes: &[u8], max_body: usize) -> Result<(Frame, usize), FrameError> {
        if bytes.len() < HEADER_BYTES {
            // Partial magic is still reported as truncation only when the
            // prefix matches; garbage is BadMagic immediately.
            let lead = bytes.len().min(MAGIC.len());
            if bytes[..lead] != MAGIC[..lead] {
                return Err(FrameError::BadMagic);
            }
            return Err(FrameError::Truncated);
        }
        if &bytes[..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(FrameError::UnsupportedVersion(bytes[4]));
        }
        let kind = bytes[5];
        let len = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        if len > max_body {
            return Err(FrameError::Oversize {
                len: len as u64,
                max: max_body,
            });
        }
        let rest = &bytes[HEADER_BYTES..];
        if rest.len() < len {
            return Err(FrameError::Truncated);
        }
        Ok((
            Frame {
                kind,
                body: rest[..len].to_vec(),
            },
            HEADER_BYTES + len,
        ))
    }
}

/// Reads one frame from a stream, enforcing the `max_body` cap *before*
/// allocating for the body, and streaming the body in so a lying length
/// prefix costs only the bytes the peer really sends.
///
/// # Errors
///
/// [`FrameReadError::Eof`] when the peer closes cleanly between frames,
/// [`FrameReadError::Io`] on transport failures (including read timeouts),
/// and [`FrameReadError::Frame`] when the bytes are not a valid frame.
pub fn read_frame(r: &mut impl Read, max_body: usize) -> Result<Frame, FrameReadError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameReadError::Eof),
            Ok(0) => return Err(FrameError::Truncated.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    if &header[..4] != MAGIC {
        return Err(FrameError::BadMagic.into());
    }
    if header[4] != VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]).into());
    }
    let kind = header[5];
    let len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > max_body {
        return Err(FrameError::Oversize {
            len: len as u64,
            max: max_body,
        }
        .into());
    }
    // `take` bounds what a hostile peer can make us buffer; `read_to_end`
    // grows the vector only as bytes actually arrive.
    let mut body = Vec::new();
    match r.take(len as u64).read_to_end(&mut body) {
        Ok(n) if n == len => Ok(Frame { kind, body }),
        Ok(_) => Err(FrameError::Truncated.into()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated.into()),
        Err(e) => Err(FrameReadError::Io(e)),
    }
}

/// Checks that a body length fits the wire's `u32` length prefix, returning
/// the prefix value. This is the single place the encode-side cap lives —
/// [`Frame::encode`] and anything staging bodies for a write buffer route
/// through it.
///
/// # Errors
///
/// [`FrameError::BodyTooLarge`] past [`MAX_ENCODABLE_BODY_BYTES`].
pub fn encodable_body_len(len: usize) -> Result<u32, FrameError> {
    u32::try_from(len).map_err(|_| FrameError::BodyTooLarge { len: len as u64 })
}

/// Writes one frame to a stream and flushes it.
///
/// # Errors
///
/// Propagates the underlying [`io::Error`]; an unencodable body surfaces as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = frame
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    w.write_all(&bytes)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let frame = Frame::new(0x42, b"hello frame".to_vec());
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY_BYTES).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn decode_is_canonical() {
        let frame = Frame::new(7, vec![1, 2, 3]);
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, 1024).unwrap();
        assert_eq!(decoded.encode().unwrap(), bytes[..consumed]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Frame::decode(b"NOPE\x01\x00\x00\x00\x00\x00", 1024),
            Err(FrameError::BadMagic)
        );
        // A short prefix that cannot be the magic is BadMagic, not Truncated.
        assert_eq!(Frame::decode(b"XY", 1024), Err(FrameError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Frame::new(1, vec![]).encode().unwrap();
        bytes[4] = 9;
        assert_eq!(
            Frame::decode(&bytes, 1024),
            Err(FrameError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocation() {
        let mut bytes = Frame::new(1, vec![]).encode().unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            Frame::decode(&bytes, 1024),
            Err(FrameError::Oversize {
                len: u64::from(u32::MAX),
                max: 1024,
            })
        );
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = Frame::new(1, vec![9; 8]).encode().unwrap();
        assert_eq!(
            Frame::decode(&bytes[..bytes.len() - 1], 1024),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn encode_rejects_bodies_past_the_u32_prefix() {
        // The boundary check itself — a real 4 GiB body is not allocatable
        // in a unit test, so the cap is pinned where encode enforces it.
        assert_eq!(encodable_body_len(0).unwrap(), 0);
        assert_eq!(
            encodable_body_len(MAX_ENCODABLE_BODY_BYTES).unwrap(),
            u32::MAX
        );
        assert_eq!(
            encodable_body_len(MAX_ENCODABLE_BODY_BYTES + 1),
            Err(FrameError::BodyTooLarge {
                len: u64::from(u32::MAX) + 1
            })
        );
        let message = FrameError::BodyTooLarge { len: 1 << 33 }.to_string();
        assert!(message.contains("u32 length prefix"), "{message}");
    }

    #[test]
    fn stream_read_round_trip_and_eof() {
        let frame = Frame::new(3, b"abc".to_vec());
        let bytes = frame.encode().unwrap();
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), frame);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameReadError::Eof)
        ));
    }

    #[test]
    fn stream_read_truncated_body_is_structured() {
        let frame = Frame::new(3, vec![7; 32]);
        let bytes = frame.encode().unwrap();
        let mut cursor = std::io::Cursor::new(&bytes[..bytes.len() - 5]);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameReadError::Frame(FrameError::Truncated))
        ));
    }
}
