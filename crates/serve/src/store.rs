//! A content-addressed on-disk certificate store: warm hits that survive
//! restarts.
//!
//! The in-memory runcache dies with the process; this store is the durable
//! layer behind it. Each entry is one portable `FLMC` file named by the
//! FNV-1a fingerprint of its canonical query key
//! ([`crate::query::canonical_query_key`]), with the full key bytes in a
//! sidecar so probes compare whole keys — fingerprints index, bytes decide,
//! the same collision discipline as `flm_sim::runcache`. The `.flmc` file
//! is the certificate bytes and nothing else, so any stored entry can be
//! fed straight to `flm-audit`.
//!
//! # Crash atomicity
//!
//! Writes go to a temp file in the store directory and land via
//! [`fs::rename`] (atomic on POSIX). The certificate is renamed into place
//! *before* the key sidecar: the sidecar is the commit point, so a crash
//! between the two leaves an orphaned `.flmc` (invisible to lookups —
//! overwritten by the next store of that key) and never a keyed entry
//! without its certificate.
//!
//! # Verify-on-load soundness
//!
//! Disk bytes are untrusted. Every hit is decoded through
//! `flm_core::codec::decode_any` and re-encoded — the identical path
//! `flm-audit` runs on files it is handed — and served only if the bytes
//! round-trip canonically. Anything else (truncation, bit flips, stray
//! files) is a *miss*: the damaged pair is moved into `quarantine/` for
//! post-mortem and the caller falls through to a fresh simulation, which
//! then overwrites the entry. Corruption can cost time, never correctness,
//! and never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use flm_sim::runcache::RunKey;

/// How many hot entries the store keeps decoded in memory in front of the
/// disk layer (tiny: certificates are a few KiB and the real memory layer
/// is the process-global runcache upstream of this store).
pub const MEMORY_ENTRIES: usize = 256;

/// Counter snapshot for one store (all monotone since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hits served from the in-memory layer.
    pub mem_hits: u64,
    /// Hits served from disk (decoded and verified on load).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Fresh certificates persisted.
    pub stores: u64,
    /// Damaged entries moved to `quarantine/` instead of being served.
    pub quarantined: u64,
}

/// Why the store could not be opened.
#[derive(Debug)]
pub enum StoreError {
    /// The directory could not be created or probed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "certificate store at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

struct MemoryLayer {
    /// fingerprint → (key bytes, certificate bytes); bounded FIFO.
    entries: HashMap<u64, (Vec<u8>, Vec<u8>)>,
    order: std::collections::VecDeque<u64>,
}

/// A content-addressed certificate store rooted at one directory.
///
/// Thread-safe: lookups and stores may race freely across server workers —
/// the rename protocol makes concurrent stores of the same key last-writer-
/// wins with both writers leaving a valid entry.
pub struct CertStore {
    dir: PathBuf,
    memory: Mutex<MemoryLayer>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    temp_seq: AtomicU64,
}

impl fmt::Debug for CertStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CertStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

fn cert_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("q{fp:016x}.flmc"))
}

fn key_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("q{fp:016x}.key"))
}

impl CertStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CertStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(CertStore {
            dir,
            memory: Mutex::new(MemoryLayer {
                entries: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up: memory first, then disk (verified on load). Returns
    /// the certificate bytes, or `None` on a miss — including any form of
    /// on-disk damage, which is quarantined rather than served.
    pub fn lookup(&self, key: &RunKey) -> Option<Vec<u8>> {
        let fp = key.fingerprint();
        {
            let memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((stored_key, cert)) = memory.entries.get(&fp) {
                if stored_key == key.bytes() {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(cert.clone());
                }
            }
        }
        match self.lookup_disk(fp, key.bytes()) {
            Some(cert) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.remember(fp, key.bytes().to_vec(), cert.clone());
                Some(cert)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a fresh certificate under `key`, atomically, and seeds the
    /// memory layer. Persistence failures are swallowed after counting a
    /// miss-shaped outcome is pointless — the caller already has the bytes;
    /// a store that cannot write simply stays cold.
    pub fn store(&self, key: &RunKey, cert: &[u8]) {
        let fp = key.fingerprint();
        if self.write_entry(fp, key.bytes(), cert).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
        self.remember(fp, key.bytes().to_vec(), cert.to_vec());
    }

    /// Drops the in-memory layer (counters keep running). The disk-warm
    /// bench legs use this to force every hit through the decode-and-verify
    /// disk path.
    pub fn clear_memory(&self) {
        let mut memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
        memory.entries.clear();
        memory.order.clear();
    }

    /// Reads the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    fn remember(&self, fp: u64, key: Vec<u8>, cert: Vec<u8>) {
        let mut memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
        if memory.entries.insert(fp, (key, cert)).is_none() {
            memory.order.push_back(fp);
            while memory.order.len() > MEMORY_ENTRIES {
                if let Some(old) = memory.order.pop_front() {
                    memory.entries.remove(&old);
                }
            }
        }
    }

    fn lookup_disk(&self, fp: u64, key: &[u8]) -> Option<Vec<u8>> {
        // The sidecar is the commit point: no key file, no entry.
        let stored_key = fs::read(key_path(&self.dir, fp)).ok()?;
        if stored_key != key {
            // A real FNV collision (or a foreign file): not our entry.
            return None;
        }
        let bytes = match fs::read(cert_path(&self.dir, fp)) {
            Ok(bytes) => bytes,
            Err(_) => {
                // Keyed entry without its certificate — the rename protocol
                // never produces this, so the directory was damaged.
                self.quarantine(fp);
                return None;
            }
        };
        // Verify on load through the same decode path flm-audit uses; a
        // served hit must round-trip canonically.
        match flm_core::codec::decode_any(&bytes) {
            Ok(cert) if cert.to_bytes() == bytes => Some(bytes),
            _ => {
                self.quarantine(fp);
                None
            }
        }
    }

    /// Moves a damaged entry (both files) into `quarantine/`, preserving
    /// the bytes for post-mortem while guaranteeing the next lookup misses
    /// cleanly and the next store rebuilds the entry.
    fn quarantine(&self, fp: u64) {
        let qdir = self.dir.join("quarantine");
        let _ = fs::create_dir_all(&qdir);
        for path in [cert_path(&self.dir, fp), key_path(&self.dir, fp)] {
            if let Some(name) = path.file_name() {
                let _ = fs::rename(&path, qdir.join(name));
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    fn write_entry(&self, fp: u64, key: &[u8], cert: &[u8]) -> io::Result<()> {
        // Certificate first, sidecar last: the sidecar commits the entry.
        self.write_atomic(&cert_path(&self.dir, fp), cert)?;
        self.write_atomic(&key_path(&self.dir, fp), key)
    }

    fn write_atomic(&self, dest: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        // Unique per (process, store, write): concurrent writers of the
        // same key each land a complete file; rename picks a winner.
        let tmp = self.dir.join(format!(".tmp-{}-{seq}", std::process::id()));
        let mut file = fs::File::create(&tmp)?;
        let written = file.write_all(bytes).and_then(|()| file.sync_all());
        drop(file);
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        match fs::rename(&tmp, dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flm-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_cert() -> Vec<u8> {
        crate::query::refute_to_bytes(
            crate::query::Theorem::BaNodes,
            None,
            None,
            1,
            flm_sim::RunPolicy::default(),
        )
        .unwrap()
    }

    fn sample_key(tag: u64) -> RunKey {
        let mut w = flm_sim::wire::Writer::new();
        w.u64(tag);
        RunKey::new("store-test", w.finish())
    }

    #[test]
    fn store_then_lookup_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let cert = sample_cert();
        let key = sample_key(1);

        let store = CertStore::open(&dir).unwrap();
        assert_eq!(store.lookup(&key), None);
        store.store(&key, &cert);
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        let stats = store.stats();
        assert_eq!((stats.misses, stats.stores, stats.mem_hits), (1, 1, 1));

        // Force the disk path, then a whole new store over the same dir
        // (the restart case).
        store.clear_memory();
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        assert_eq!(store.stats().disk_hits, 1);
        drop(store);
        let reopened = CertStore::open(&dir).unwrap();
        assert_eq!(reopened.lookup(&key).as_deref(), Some(&cert[..]));
        assert_eq!(reopened.stats().disk_hits, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_collisions_fall_back_to_key_bytes() {
        let dir = temp_dir("collide");
        let cert = sample_cert();
        let key = sample_key(2);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);

        // A foreign key under the same fingerprint: simulate a collision by
        // rewriting the sidecar with different key bytes.
        fs::write(key_path(&dir, key.fingerprint()), b"other key").unwrap();
        store.clear_memory();
        assert_eq!(store.lookup(&key), None, "served a colliding entry");
        // Not corruption — just not our entry — so nothing is quarantined.
        assert_eq!(store.stats().quarantined, 0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_certificates_are_quarantined_misses() {
        for (label, damage) in [
            (
                "truncated",
                Box::new(|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() / 2))
                    as Box<dyn Fn(&mut Vec<u8>)>,
            ),
            // Flip a structural byte (the magic): the decode path can only
            // see damage that breaks decoding or canonicality — a flip
            // inside, say, a protocol-name string decodes fine and is the
            // downstream verifier's to reject.
            (
                "bit-flipped",
                Box::new(|bytes: &mut Vec<u8>| bytes[0] ^= 0x40),
            ),
            ("emptied", Box::new(|bytes: &mut Vec<u8>| bytes.clear())),
        ] {
            let dir = temp_dir(&format!("damage-{label}"));
            let cert = sample_cert();
            let key = sample_key(3);
            let store = CertStore::open(&dir).unwrap();
            store.store(&key, &cert);

            let path = cert_path(&dir, key.fingerprint());
            let mut bytes = fs::read(&path).unwrap();
            damage(&mut bytes);
            fs::write(&path, &bytes).unwrap();

            store.clear_memory();
            assert_eq!(store.lookup(&key), None, "{label}: served damaged bytes");
            let stats = store.stats();
            assert_eq!(stats.quarantined, 1, "{label}");
            assert!(!path.exists(), "{label}: damaged file left in place");
            let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine"))
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            assert_eq!(quarantined.len(), 2, "{label}: {quarantined:?}");

            // A fresh store rebuilds the entry cleanly.
            store.store(&key, &cert);
            store.clear_memory();
            assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]), "{label}");

            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn orphaned_certificate_without_sidecar_is_a_plain_miss() {
        // The crash window: cert renamed into place, sidecar not yet — the
        // entry must be invisible, not quarantined (the next store of the
        // key completes it).
        let dir = temp_dir("orphan");
        let cert = sample_cert();
        let key = sample_key(4);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);
        fs::remove_file(key_path(&dir, key.fingerprint())).unwrap();
        store.clear_memory();
        assert_eq!(store.lookup(&key), None);
        assert_eq!(store.stats().quarantined, 0);
        store.store(&key, &cert);
        store.clear_memory();
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_entry_is_a_portable_flmc_artifact() {
        // The .flmc file must be exactly the certificate bytes — auditable
        // directly, no container format.
        let dir = temp_dir("portable");
        let cert = sample_cert();
        let key = sample_key(5);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);
        let on_disk = fs::read(cert_path(&dir, key.fingerprint())).unwrap();
        assert_eq!(on_disk, cert);
        let decoded = flm_core::codec::decode_any(&on_disk).unwrap();
        assert_eq!(decoded.to_bytes(), on_disk);
        let _ = fs::remove_dir_all(&dir);
    }
}
