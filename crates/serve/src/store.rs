//! A content-addressed on-disk certificate store: warm hits that survive
//! restarts.
//!
//! The in-memory runcache dies with the process; this store is the durable
//! layer behind it. Each entry is one portable `FLMC` file named by the
//! FNV-1a fingerprint of its canonical query key
//! ([`crate::query::canonical_query_key`]), with the full key bytes in a
//! sidecar so probes compare whole keys — fingerprints index, bytes decide,
//! the same collision discipline as `flm_sim::runcache`. The `.flmc` file
//! is the certificate bytes and nothing else, so any stored entry can be
//! fed straight to `flm-audit`.
//!
//! # Crash atomicity
//!
//! Writes go to a temp file in the store directory and land via
//! [`fs::rename`] (atomic on POSIX). The certificate is renamed into place
//! *before* the key sidecar: the sidecar is the commit point, so a crash
//! between the two leaves an orphaned `.flmc` (invisible to lookups —
//! overwritten by the next store of that key) and never a keyed entry
//! without its certificate.
//!
//! # Verify-on-load soundness
//!
//! Disk bytes are untrusted. Every hit is decoded through
//! `flm_core::codec::decode_any` and re-encoded — the identical path
//! `flm-audit` runs on files it is handed — and served only if the bytes
//! round-trip canonically. Anything else (truncation, bit flips, stray
//! files) is a *miss*: the damaged pair is moved into `quarantine/` for
//! post-mortem and the caller falls through to a fresh simulation, which
//! then overwrites the entry. Corruption can cost time, never correctness,
//! and never a panic.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use flm_sim::runcache::RunKey;

/// Default capacity of the in-memory tier in front of the disk layer
/// (tiny: certificates are a few KiB and the real memory layer is the
/// process-global runcache upstream of this store).
pub const MEMORY_ENTRIES: usize = 256;

/// The effective default memory-tier capacity: `FLM_STORE_MEM_CAP` if set
/// to a positive integer, else [`MEMORY_ENTRIES`] — the same env-cap
/// convention as `FLM_RUNCACHE_CAP`. [`CertStore::open_with_capacity`]
/// overrides both.
pub fn default_memory_capacity() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FLM_STORE_MEM_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(MEMORY_ENTRIES)
    })
}

/// Counter snapshot for one store (all monotone since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hits served from the in-memory layer.
    pub mem_hits: u64,
    /// Hits served from disk (decoded and verified on load).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Fresh certificates persisted.
    pub stores: u64,
    /// Damaged entries moved to `quarantine/` instead of being served.
    pub quarantined: u64,
    /// Entries pushed out of the bounded in-memory tier (disk copies are
    /// untouched; an evicted entry just pays one verified disk read on its
    /// next hit).
    pub evictions: u64,
}

/// Why the store could not be opened.
#[derive(Debug)]
pub enum StoreError {
    /// The directory could not be created or probed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "certificate store at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

struct MemoryLayer {
    /// fingerprint → (key bytes, certificate bytes); bounded FIFO.
    entries: HashMap<u64, (Vec<u8>, Vec<u8>)>,
    order: std::collections::VecDeque<u64>,
}

/// A content-addressed certificate store rooted at one directory.
///
/// Thread-safe: lookups and stores may race freely across server workers —
/// the rename protocol makes concurrent stores of the same key last-writer-
/// wins with both writers leaving a valid entry.
pub struct CertStore {
    dir: PathBuf,
    mem_capacity: usize,
    memory: Mutex<MemoryLayer>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    evictions: AtomicU64,
    temp_seq: AtomicU64,
}

impl fmt::Debug for CertStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CertStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

fn cert_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("q{fp:016x}.flmc"))
}

fn key_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("q{fp:016x}.key"))
}

impl CertStore {
    /// Opens (creating if needed) a store rooted at `dir`, with the
    /// default memory-tier capacity ([`default_memory_capacity`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CertStore, StoreError> {
        Self::open_with_capacity(dir, default_memory_capacity())
    }

    /// Opens a store with an explicit memory-tier capacity (`--store-mem-cap`).
    /// A capacity of zero is clamped to one: a tier that cannot hold even
    /// the entry just stored would turn every hit into a disk read.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open_with_capacity(
        dir: impl Into<PathBuf>,
        mem_capacity: usize,
    ) -> Result<CertStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(CertStore {
            dir,
            mem_capacity: mem_capacity.max(1),
            memory: Mutex::new(MemoryLayer {
                entries: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up: memory first, then disk (verified on load). Returns
    /// the certificate bytes, or `None` on a miss — including any form of
    /// on-disk damage, which is quarantined rather than served.
    pub fn lookup(&self, key: &RunKey) -> Option<Vec<u8>> {
        let fp = key.fingerprint();
        {
            let memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((stored_key, cert)) = memory.entries.get(&fp) {
                if stored_key == key.bytes() {
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(cert.clone());
                }
            }
        }
        match self.lookup_disk(fp, key.bytes()) {
            Some(cert) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.remember(fp, key.bytes().to_vec(), cert.clone());
                Some(cert)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a fresh certificate under `key`, atomically, and seeds the
    /// memory layer. Persistence failures are swallowed after counting a
    /// miss-shaped outcome is pointless — the caller already has the bytes;
    /// a store that cannot write simply stays cold.
    pub fn store(&self, key: &RunKey, cert: &[u8]) {
        let fp = key.fingerprint();
        if self.write_entry(fp, key.bytes(), cert).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
        self.remember(fp, key.bytes().to_vec(), cert.to_vec());
    }

    /// Drops the in-memory layer (counters keep running). The disk-warm
    /// bench legs use this to force every hit through the decode-and-verify
    /// disk path.
    pub fn clear_memory(&self) {
        let mut memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
        memory.entries.clear();
        memory.order.clear();
    }

    /// The memory-tier capacity this store was opened with.
    pub fn memory_capacity(&self) -> usize {
        self.mem_capacity
    }

    /// Reads the counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn remember(&self, fp: u64, key: Vec<u8>, cert: Vec<u8>) {
        let mut memory = self.memory.lock().unwrap_or_else(|p| p.into_inner());
        if memory.entries.insert(fp, (key, cert)).is_none() {
            memory.order.push_back(fp);
            while memory.order.len() > self.mem_capacity {
                if let Some(old) = memory.order.pop_front() {
                    memory.entries.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn lookup_disk(&self, fp: u64, key: &[u8]) -> Option<Vec<u8>> {
        // The sidecar is the commit point: no key file, no entry.
        let stored_key = fs::read(key_path(&self.dir, fp)).ok()?;
        if stored_key != key {
            // A real FNV collision (or a foreign file): not our entry.
            return None;
        }
        let bytes = match fs::read(cert_path(&self.dir, fp)) {
            Ok(bytes) => bytes,
            Err(_) => {
                // Keyed entry without its certificate — the rename protocol
                // never produces this, so the directory was damaged.
                self.quarantine(fp);
                return None;
            }
        };
        // Verify on load through the same decode path flm-audit uses; a
        // served hit must round-trip canonically.
        if verified_cert_bytes(&bytes) {
            Some(bytes)
        } else {
            self.quarantine(fp);
            None
        }
    }

    /// Moves a damaged entry (both files) into `quarantine/`, preserving
    /// the bytes for post-mortem while guaranteeing the next lookup misses
    /// cleanly and the next store rebuilds the entry.
    fn quarantine(&self, fp: u64) {
        let qdir = self.dir.join("quarantine");
        let _ = fs::create_dir_all(&qdir);
        for path in [cert_path(&self.dir, fp), key_path(&self.dir, fp)] {
            if let Some(name) = path.file_name() {
                let _ = fs::rename(&path, qdir.join(name));
            }
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    fn write_entry(&self, fp: u64, key: &[u8], cert: &[u8]) -> io::Result<()> {
        // Certificate first, sidecar last: the sidecar commits the entry.
        self.write_atomic(&cert_path(&self.dir, fp), cert)?;
        self.write_atomic(&key_path(&self.dir, fp), key)
    }

    fn write_atomic(&self, dest: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        // Unique per (process, store, write): concurrent writers of the
        // same key each land a complete file; rename picks a winner.
        let tmp = self.dir.join(format!(".tmp-{}-{seq}", std::process::id()));
        let mut file = fs::File::create(&tmp)?;
        let written = file.write_all(bytes).and_then(|()| file.sync_all());
        drop(file);
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        match fs::rename(&tmp, dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// The soundness gate for certificate bytes arriving from outside the
/// process — a disk load, a shipped `PutCert`, a peer fetch: they must
/// decode through the audit path (`flm_core::codec::decode_any`) and
/// re-encode to the identical bytes. One rule, every entry point.
pub fn verified_cert_bytes(bytes: &[u8]) -> bool {
    matches!(flm_core::codec::decode_any(bytes), Ok(cert) if cert.to_bytes() == bytes)
}

/// One committed entry found by [`walk_entries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredEntry {
    /// The fingerprint the entry's files are named by.
    pub fingerprint: u64,
    /// The full canonical query key bytes from the sidecar.
    pub key: Vec<u8>,
    /// The certificate bytes (*not* re-verified here — shipping verifies on
    /// the receiving side, the same trust boundary as a store load).
    pub cert: Vec<u8>,
}

/// Walks a store directory and returns every *committed* entry: a `.key`
/// sidecar naming a fingerprint that matches its filename, next to a
/// readable `.flmc`. Orphans, temp files, and the `quarantine/` directory
/// are skipped. This is the `flm-client rebalance` enumeration primitive —
/// it deliberately needs no open [`CertStore`], so an operator can walk a
/// stopped shard's directory.
///
/// # Errors
///
/// Propagates the directory read failure; unreadable individual entries
/// are skipped, not fatal.
pub fn walk_entries(dir: &Path) -> io::Result<Vec<StoredEntry>> {
    let mut entries = Vec::new();
    for entry in fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        // The sidecar is the commit point, so enumerate by sidecars.
        let Some(hex) = name.strip_prefix('q').and_then(|n| n.strip_suffix(".key")) else {
            continue;
        };
        let Ok(fingerprint) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        let Ok(key) = fs::read(entry.path()) else {
            continue;
        };
        if flm_sim::runcache::fingerprint(&key) != fingerprint {
            // Foreign or damaged sidecar; not an entry of this store.
            continue;
        }
        let Ok(cert) = fs::read(cert_path(dir, fingerprint)) else {
            continue;
        };
        entries.push(StoredEntry {
            fingerprint,
            key,
            cert,
        });
    }
    entries.sort_by_key(|e| e.fingerprint);
    Ok(entries)
}

/// Removes one committed entry (sidecar first, so a racing lookup sees a
/// clean miss, then the certificate). Used by `rebalance --remove` after a
/// successful ship.
pub fn remove_entry(dir: &Path, fingerprint: u64) -> io::Result<()> {
    fs::remove_file(key_path(dir, fingerprint))?;
    fs::remove_file(cert_path(dir, fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flm-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_cert() -> Vec<u8> {
        crate::query::refute_to_bytes(
            crate::query::Theorem::BaNodes,
            None,
            None,
            1,
            flm_sim::RunPolicy::default(),
        )
        .unwrap()
    }

    fn sample_key(tag: u64) -> RunKey {
        let mut w = flm_sim::wire::Writer::new();
        w.u64(tag);
        RunKey::new("store-test", w.finish())
    }

    #[test]
    fn store_then_lookup_round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let cert = sample_cert();
        let key = sample_key(1);

        let store = CertStore::open(&dir).unwrap();
        assert_eq!(store.lookup(&key), None);
        store.store(&key, &cert);
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        let stats = store.stats();
        assert_eq!((stats.misses, stats.stores, stats.mem_hits), (1, 1, 1));

        // Force the disk path, then a whole new store over the same dir
        // (the restart case).
        store.clear_memory();
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        assert_eq!(store.stats().disk_hits, 1);
        drop(store);
        let reopened = CertStore::open(&dir).unwrap();
        assert_eq!(reopened.lookup(&key).as_deref(), Some(&cert[..]));
        assert_eq!(reopened.stats().disk_hits, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_collisions_fall_back_to_key_bytes() {
        let dir = temp_dir("collide");
        let cert = sample_cert();
        let key = sample_key(2);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);

        // A foreign key under the same fingerprint: simulate a collision by
        // rewriting the sidecar with different key bytes.
        fs::write(key_path(&dir, key.fingerprint()), b"other key").unwrap();
        store.clear_memory();
        assert_eq!(store.lookup(&key), None, "served a colliding entry");
        // Not corruption — just not our entry — so nothing is quarantined.
        assert_eq!(store.stats().quarantined, 0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_certificates_are_quarantined_misses() {
        for (label, damage) in [
            (
                "truncated",
                Box::new(|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() / 2))
                    as Box<dyn Fn(&mut Vec<u8>)>,
            ),
            // Flip a structural byte (the magic): the decode path can only
            // see damage that breaks decoding or canonicality — a flip
            // inside, say, a protocol-name string decodes fine and is the
            // downstream verifier's to reject.
            (
                "bit-flipped",
                Box::new(|bytes: &mut Vec<u8>| bytes[0] ^= 0x40),
            ),
            ("emptied", Box::new(|bytes: &mut Vec<u8>| bytes.clear())),
        ] {
            let dir = temp_dir(&format!("damage-{label}"));
            let cert = sample_cert();
            let key = sample_key(3);
            let store = CertStore::open(&dir).unwrap();
            store.store(&key, &cert);

            let path = cert_path(&dir, key.fingerprint());
            let mut bytes = fs::read(&path).unwrap();
            damage(&mut bytes);
            fs::write(&path, &bytes).unwrap();

            store.clear_memory();
            assert_eq!(store.lookup(&key), None, "{label}: served damaged bytes");
            let stats = store.stats();
            assert_eq!(stats.quarantined, 1, "{label}");
            assert!(!path.exists(), "{label}: damaged file left in place");
            let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine"))
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            assert_eq!(quarantined.len(), 2, "{label}: {quarantined:?}");

            // A fresh store rebuilds the entry cleanly.
            store.store(&key, &cert);
            store.clear_memory();
            assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]), "{label}");

            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn orphaned_certificate_without_sidecar_is_a_plain_miss() {
        // The crash window: cert renamed into place, sidecar not yet — the
        // entry must be invisible, not quarantined (the next store of the
        // key completes it).
        let dir = temp_dir("orphan");
        let cert = sample_cert();
        let key = sample_key(4);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);
        fs::remove_file(key_path(&dir, key.fingerprint())).unwrap();
        store.clear_memory();
        assert_eq!(store.lookup(&key), None);
        assert_eq!(store.stats().quarantined, 0);
        store.store(&key, &cert);
        store.clear_memory();
        assert_eq!(store.lookup(&key).as_deref(), Some(&cert[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_tier_capacity_bounds_entries_and_counts_evictions() {
        let dir = temp_dir("cap");
        let cert = sample_cert();
        let store = CertStore::open_with_capacity(&dir, 2).unwrap();
        assert_eq!(store.memory_capacity(), 2);
        for tag in 0..5 {
            store.store(&sample_key(100 + tag), &cert);
        }
        // Capacity 2, five inserts: three FIFO evictions.
        assert_eq!(store.stats().evictions, 3);
        // The two newest entries answer from memory, the evicted ones from
        // disk (still correct, just slower).
        assert_eq!(store.lookup(&sample_key(104)).as_deref(), Some(&cert[..]));
        assert_eq!(store.stats().mem_hits, 1);
        assert_eq!(store.lookup(&sample_key(100)).as_deref(), Some(&cert[..]));
        assert_eq!(store.stats().disk_hits, 1);
        // Zero is clamped: the tier always holds at least the last entry.
        let clamped = CertStore::open_with_capacity(&dir, 0).unwrap();
        assert_eq!(clamped.memory_capacity(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn walk_entries_lists_committed_entries_only() {
        let dir = temp_dir("walk");
        let cert = sample_cert();
        let store = CertStore::open(&dir).unwrap();
        let keys: Vec<RunKey> = (0..3).map(|t| sample_key(200 + t)).collect();
        for key in &keys {
            store.store(key, &cert);
        }
        // An orphaned certificate (no sidecar), a stray temp file, and a
        // quarantine dir must all be invisible to the walk.
        let orphan = sample_key(299);
        store.store(&orphan, &cert);
        fs::remove_file(key_path(&dir, orphan.fingerprint())).unwrap();
        fs::write(dir.join(".tmp-999-0"), b"partial").unwrap();
        fs::create_dir_all(dir.join("quarantine")).unwrap();
        fs::write(dir.join("quarantine").join("q00.key"), b"junk").unwrap();

        let walked = walk_entries(&dir).unwrap();
        assert_eq!(walked.len(), 3);
        for key in &keys {
            let found = walked
                .iter()
                .find(|e| e.fingerprint == key.fingerprint())
                .unwrap();
            assert_eq!(found.key, key.bytes());
            assert_eq!(found.cert, cert);
        }
        // remove_entry deletes exactly one committed pair.
        remove_entry(&dir, keys[0].fingerprint()).unwrap();
        assert_eq!(walk_entries(&dir).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_entry_is_a_portable_flmc_artifact() {
        // The .flmc file must be exactly the certificate bytes — auditable
        // directly, no container format.
        let dir = temp_dir("portable");
        let cert = sample_cert();
        let key = sample_key(5);
        let store = CertStore::open(&dir).unwrap();
        store.store(&key, &cert);
        let on_disk = fs::read(cert_path(&dir, key.fingerprint())).unwrap();
        assert_eq!(on_disk, cert);
        let decoded = flm_core::codec::decode_any(&on_disk).unwrap();
        assert_eq!(decoded.to_bytes(), on_disk);
        let _ = fs::remove_dir_all(&dir);
    }
}
