//! flm-serve: refutation-as-a-service over framed FLMC-RPC.
//!
//! A small, std-only network subsystem that serves the repository's
//! impossibility refutations over TCP. Requests name a theorem family, a
//! protocol (via [`flm_protocols::resolve`]), and a graph; responses carry
//! portable `FLMC` certificate bytes that pipe straight into `flm-audit`.
//!
//! The layering, bottom to top:
//!
//! * [`sys`] — a thin readiness shim over Linux `epoll`, built on
//!   [`std::os::fd`] with no external crates; the only module allowed to
//!   contain `unsafe` (the crate is `deny(unsafe_code)` elsewhere).
//! * [`frame`] — the `FLMR` length-prefixed frame: magic, version, kind
//!   byte, `u32` body length. Bounded reads; hostile prefixes cannot force
//!   allocation, and bodies past the `u32` prefix are a typed encode error,
//!   never a truncated length.
//! * [`rpc`] — request/response bodies encoded with [`flm_sim::wire`], the
//!   same primitives the certificate codec uses.
//! * [`query`] — the theorem-family grammar, the canonical query key, and
//!   the single refutation code path shared with `regen --refute`.
//! * [`audit`] — the `flm-audit` verdict logic as a library, so the Audit
//!   RPC and the binary cannot drift.
//! * [`store`] — the content-addressed on-disk certificate store: one
//!   `FLMC` file per canonical query key, written atomically, verified on
//!   load, quarantined on damage. Warm hits survive restarts.
//! * [`server`] — the event-driven serve plane: one reactor thread
//!   multiplexing pipelined connections over [`sys`], a worker pool for
//!   CPU-bound refutations, and typed load shedding — a saturated server
//!   answers [`rpc::Response::Overloaded`] instead of dropping the socket.
//! * [`shard`] — the cluster topology: a [`shard::ShardMap`] with a
//!   canonical wire encoding, rendezvous ownership over canonical query
//!   keys, and the store-rebalance walk that ships misplaced certificates
//!   to their owners.
//! * [`router`] — the sharded front: a second reactor on [`sys`] that
//!   routes each keyed request to its owning shard over persistent
//!   pipelined backend connections, fans Stats out into a cluster view,
//!   and degrades a dead shard to typed [`rpc::Response::ShardDown`]
//!   answers for that key range only.
//! * [`client`] / [`loadgen`] — the blocking client and the deterministic
//!   load generator behind `flm-client` and `BENCH_serve.json`.
//!
//! Every worker shares the process-global run cache, so a certificate one
//! connection paid to compute is a warm hit for every later connection
//! asking the same canonical query — and, with a store directory
//! configured, for every later *process* asking it. Sharding extends the
//! same economics across machines: rendezvous hashing gives each canonical
//! query exactly one owner, so the cluster simulates each universe once.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod query;
pub mod router;
pub mod rpc;
pub mod server;
pub mod shard;
pub mod store;
#[allow(unsafe_code)]
pub mod sys;
