//! Theorem-family queries: the shared vocabulary between `regen --refute`,
//! the `flm-serve` RPC handler, and the load generator.
//!
//! A refutation query is "a theorem family, a protocol name, a graph, and a
//! fault budget". This module owns the family grammar (the same strings
//! `regen --refute` accepts), the canonical per-family defaults, and
//! [`refute_to_bytes`] — run the family's refuter, self-verify the fresh
//! certificate, and return its portable `FLMC` bytes. Keeping this in one
//! place guarantees a certificate served over the wire is built by exactly
//! the code path the local binaries use, which is what makes the loopback
//! byte-identity tests meaningful.

use std::fmt;

use flm_core::problems::ClockSyncClaim;
use flm_core::refute;
use flm_graph::{builders, Graph};
use flm_protocols::{resolve, resolve_clock};
use flm_sim::clock::TimeFn;
use flm_sim::RunPolicy;

/// The eight refutable theorem families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Theorem {
    /// Theorem 1: Byzantine agreement needs `n ≥ 3f + 1` nodes.
    BaNodes,
    /// Theorem 2: Byzantine agreement needs connectivity `κ ≥ 2f + 1`.
    BaConnectivity,
    /// Theorem 4: weak agreement bounds.
    WeakAgreement,
    /// Theorem 5: the Byzantine firing squad.
    FiringSquad,
    /// Theorem 6 (simple form): approximate agreement.
    SimpleApprox,
    /// Theorem 6 (full (ε, δ, γ) form).
    EpsDeltaGamma,
    /// Theorem 8: clock synchronization.
    ClockSync,
    /// The FLP-style asynchronous family: termination under adversarial
    /// message scheduling.
    FlpAsync,
}

impl Theorem {
    /// Every family, in the canonical order the test suites sweep.
    pub const ALL: [Theorem; 8] = [
        Theorem::BaNodes,
        Theorem::BaConnectivity,
        Theorem::WeakAgreement,
        Theorem::FiringSquad,
        Theorem::SimpleApprox,
        Theorem::EpsDeltaGamma,
        Theorem::ClockSync,
        Theorem::FlpAsync,
    ];

    /// The family's command-line / wire name.
    pub fn name(self) -> &'static str {
        match self {
            Theorem::BaNodes => "ba-nodes",
            Theorem::BaConnectivity => "ba-connectivity",
            Theorem::WeakAgreement => "weak-agreement",
            Theorem::FiringSquad => "firing-squad",
            Theorem::SimpleApprox => "simple-approx",
            Theorem::EpsDeltaGamma => "eps-delta-gamma",
            Theorem::ClockSync => "clock-sync",
            Theorem::FlpAsync => "flp-async",
        }
    }

    /// Parses a family name (the inverse of [`Theorem::name`]). The
    /// asynchronous family also answers to its underscore spelling
    /// `flp_async` — the form the FLP literature (and muscle memory)
    /// produces.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::UnknownTheorem`] for anything else.
    pub fn parse(name: &str) -> Result<Theorem, QueryError> {
        if name == "flp_async" {
            return Ok(Theorem::FlpAsync);
        }
        Theorem::ALL
            .into_iter()
            .find(|t| t.name() == name)
            .ok_or_else(|| QueryError::UnknownTheorem { name: name.into() })
    }

    /// The canonical protocol name refuted when a query names none, for
    /// fault budget `f`.
    pub fn default_protocol(self, f: usize) -> String {
        match self {
            Theorem::BaNodes => format!("EIG(f={f})"),
            Theorem::BaConnectivity => "NaiveMajority".into(),
            Theorem::WeakAgreement => format!("WeakViaBA(EIG(f={f}))"),
            Theorem::FiringSquad => format!("FiringSquadViaBA(f={f})"),
            Theorem::SimpleApprox | Theorem::EpsDeltaGamma => format!("DLPSW(f={f}, R=4)"),
            Theorem::ClockSync => "TrivialClockSync".into(),
            Theorem::FlpAsync => "WaitForAll".into(),
        }
    }

    /// The canonical graph refuted on when a query names none.
    pub fn default_graph(self) -> Graph {
        match self {
            Theorem::BaConnectivity => builders::cycle(4),
            Theorem::FlpAsync => builders::complete(4),
            _ => builders::triangle(),
        }
    }
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Failure from a refutation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The theorem family name matches none of the seven.
    UnknownTheorem {
        /// The unparseable name.
        name: String,
    },
    /// The protocol name did not resolve through the registry, or the
    /// graph name was invalid.
    BadRequest {
        /// Explanation.
        reason: String,
    },
    /// The refuter itself declined (adequate graph, model violation, …).
    Refute {
        /// The refuter's explanation.
        reason: String,
    },
    /// The freshly built certificate failed its own verification — a bug,
    /// reported rather than served.
    SelfCheck {
        /// The verifier's explanation.
        reason: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTheorem { name } => write!(
                f,
                "unknown theorem {name:?} (want ba-nodes, ba-connectivity, weak-agreement, \
                 firing-squad, simple-approx, eps-delta-gamma, clock-sync, or flp-async)"
            ),
            QueryError::BadRequest { reason } => write!(f, "{reason}"),
            QueryError::Refute { reason } => write!(f, "{reason}"),
            QueryError::SelfCheck { reason } => {
                write!(f, "fresh certificate failed verification: {reason}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The canonical clock-sync claim every in-tree entry point refutes against
/// (hardware clocks between identity and rate 2, envelope `[t, 2t + 8]`,
/// claimed improvement `α = 2` from `t' = 1`).
pub fn canonical_clock_claim() -> ClockSyncClaim {
    ClockSyncClaim {
        p: TimeFn::identity(),
        q: TimeFn::linear(2.0),
        l: TimeFn::identity(),
        u: TimeFn::affine(2.0, 8.0),
        alpha: 2.0,
        t_prime: 1.0,
    }
}

/// Parses a graph name (`triangle`, `cycleN`, `completeN`, `pathN` with
/// `2 ≤ N ≤ 64`) — the grammar `regen --refute --graph` and
/// `flm-client refute --graph` share.
///
/// # Errors
///
/// Returns [`QueryError::BadRequest`] for unknown names or out-of-range
/// sizes.
pub fn parse_graph(name: &str) -> Result<Graph, QueryError> {
    if name == "triangle" {
        return Ok(builders::triangle());
    }
    for (prefix, build) in [
        ("cycle", builders::cycle as fn(usize) -> Graph),
        ("complete", builders::complete),
        ("path", builders::path),
    ] {
        if let Some(n) = name.strip_prefix(prefix) {
            let n: usize = n.parse().map_err(|_| QueryError::BadRequest {
                reason: format!("--graph: bad size in {name:?}"),
            })?;
            if !(2..=64).contains(&n) {
                return Err(QueryError::BadRequest {
                    reason: format!("--graph: size {n} out of range (2..=64)"),
                });
            }
            return Ok(build(n));
        }
    }
    Err(QueryError::BadRequest {
        reason: format!(
            "--graph: unknown graph {name:?} (want triangle, cycleN, completeN, or pathN)"
        ),
    })
}

/// The canonical cache key for a refutation query: the full resolved
/// ingredients of [`refute_to_bytes`], with per-family defaults already
/// applied so "no protocol named" and "the default protocol named
/// explicitly" share one entry. This is the key the certificate store
/// indexes by — determinism of the refuters (the same axiom the runcache
/// leans on) is what makes a stored certificate byte-identical to a fresh
/// run of the same key.
pub fn canonical_query_key(
    theorem: Theorem,
    protocol: Option<&str>,
    graph: Option<&Graph>,
    f: usize,
    policy: &RunPolicy,
) -> flm_sim::runcache::RunKey {
    let own_graph;
    let g = match graph {
        Some(g) => g,
        None => {
            own_graph = theorem.default_graph();
            &own_graph
        }
    };
    let default_name;
    let name = match protocol {
        Some(name) => name,
        None => {
            default_name = theorem.default_protocol(f);
            &default_name
        }
    };
    let mut w = flm_sim::wire::Writer::new();
    w.str(theorem.name());
    w.str(name);
    w.bytes(&g.to_bytes());
    w.u32(f as u32);
    policy.encode(&mut w);
    flm_sim::runcache::RunKey::new("serve-query", w.finish())
}

/// Runs the family's refuter for `(protocol, graph, f)` under `policy`,
/// self-verifies the fresh certificate, and returns its portable `FLMC`
/// bytes. `protocol`/`graph` default per family when `None`.
///
/// This is *the* refutation path: `regen --refute`, the `flm-serve` RPC
/// handler, and the load generator all funnel through here, so a
/// certificate is the same bytes whichever entry point asked for it.
///
/// # Errors
///
/// [`QueryError::BadRequest`] when the protocol does not resolve,
/// [`QueryError::Refute`] when the refuter declines, and
/// [`QueryError::SelfCheck`] if the fresh certificate fails verification.
pub fn refute_to_bytes(
    theorem: Theorem,
    protocol: Option<&str>,
    graph: Option<&Graph>,
    f: usize,
    policy: RunPolicy,
) -> Result<Vec<u8>, QueryError> {
    let bad = |e: flm_protocols::RegistryError| QueryError::BadRequest {
        reason: e.to_string(),
    };
    let declined = |e: flm_core::RefuteError| QueryError::Refute {
        reason: e.to_string(),
    };
    let own_graph;
    let g = match graph {
        Some(g) => g,
        None => {
            own_graph = theorem.default_graph();
            &own_graph
        }
    };
    let default_name;
    let name = match protocol {
        Some(name) => name,
        None => {
            default_name = theorem.default_protocol(f);
            &default_name
        }
    };

    if theorem == Theorem::FlpAsync {
        // The asynchronous family has no fault budget: the adversary is the
        // scheduler, not a set of Byzantine nodes. `f` still participates in
        // the query key so cached entries stay distinct per request shape.
        let protocol = resolve(name).map_err(bad)?;
        let cert =
            flm_core::with_policy(policy, || refute::flp_async(&*protocol, g)).map_err(declined)?;
        cert.verify(&*protocol).map_err(|e| QueryError::SelfCheck {
            reason: e.to_string(),
        })?;
        return Ok(cert.to_bytes());
    }

    if theorem == Theorem::ClockSync {
        let protocol = resolve_clock(name).map_err(bad)?;
        let claim = canonical_clock_claim();
        let cert = flm_core::with_policy(policy, || refute::clock_sync(&*protocol, g, f, &claim))
            .map_err(declined)?;
        cert.verify(&*protocol).map_err(|e| QueryError::SelfCheck {
            reason: e.to_string(),
        })?;
        return Ok(cert.to_bytes());
    }

    let protocol = resolve(name).map_err(bad)?;
    let cert = flm_core::with_policy(policy, || match theorem {
        Theorem::BaNodes => refute::ba_nodes(&*protocol, g, f),
        Theorem::BaConnectivity => refute::ba_connectivity(&*protocol, g, f),
        Theorem::WeakAgreement => refute::weak_agreement(&*protocol, g, f),
        Theorem::FiringSquad => refute::firing_squad(&*protocol, g, f),
        Theorem::SimpleApprox => refute::simple_approx(&*protocol, g, f),
        Theorem::EpsDeltaGamma => refute::eps_delta_gamma(&*protocol, g, f, 0.25, 1.0, 1.0),
        Theorem::ClockSync | Theorem::FlpAsync => unreachable!("handled above"),
    })
    .map_err(declined)?;
    cert.verify(&*protocol).map_err(|e| QueryError::SelfCheck {
        reason: e.to_string(),
    })?;
    Ok(cert.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_names_round_trip() {
        for t in Theorem::ALL {
            assert_eq!(Theorem::parse(t.name()).unwrap(), t);
        }
        assert!(matches!(
            Theorem::parse("ba_nodes"),
            Err(QueryError::UnknownTheorem { .. })
        ));
        // The async family alone accepts its underscore spelling.
        assert_eq!(Theorem::parse("flp_async").unwrap(), Theorem::FlpAsync);
    }

    #[test]
    fn flp_async_defaults_refute_and_self_verify() {
        let bytes =
            refute_to_bytes(Theorem::FlpAsync, None, None, 1, RunPolicy::default()).unwrap();
        let cert = flm_core::codec::decode_any(&bytes).unwrap();
        assert_eq!(cert.to_bytes(), bytes);
        assert!(matches!(cert, flm_core::codec::AnyCertificate::Async(_)));
        // Deterministic: a second run is byte-identical.
        let again =
            refute_to_bytes(Theorem::FlpAsync, None, None, 1, RunPolicy::default()).unwrap();
        assert_eq!(again, bytes);
    }

    #[test]
    fn graph_grammar_parses_and_rejects() {
        assert_eq!(parse_graph("triangle").unwrap().node_count(), 3);
        assert_eq!(parse_graph("cycle6").unwrap().node_count(), 6);
        assert_eq!(parse_graph("complete4").unwrap().node_count(), 4);
        assert_eq!(parse_graph("path5").unwrap().node_count(), 5);
        for bad in ["cycle1", "cycle65", "torus4", "complete", "cycle-3"] {
            assert!(
                matches!(parse_graph(bad), Err(QueryError::BadRequest { .. })),
                "{bad} parsed"
            );
        }
    }

    #[test]
    fn defaults_refute_and_self_verify() {
        // One cheap family end to end; the full sweep lives in the
        // loopback integration test.
        let bytes = refute_to_bytes(Theorem::BaNodes, None, None, 1, RunPolicy::default()).unwrap();
        let cert = flm_core::codec::decode_any(&bytes).unwrap();
        assert_eq!(cert.to_bytes(), bytes);
    }

    #[test]
    fn canonical_key_resolves_defaults_to_shared_entries() {
        let policy = RunPolicy::default();
        let implicit = canonical_query_key(Theorem::BaNodes, None, None, 2, &policy);
        let explicit = canonical_query_key(
            Theorem::BaNodes,
            Some("EIG(f=2)"),
            Some(&builders::triangle()),
            2,
            &policy,
        );
        assert_eq!(implicit.fingerprint(), explicit.fingerprint());

        // Any varied ingredient separates the entries.
        let other_f = canonical_query_key(Theorem::BaNodes, None, None, 3, &policy);
        let other_graph = canonical_query_key(
            Theorem::BaNodes,
            None,
            Some(&builders::cycle(7)),
            2,
            &policy,
        );
        let other_theorem = canonical_query_key(Theorem::FiringSquad, None, None, 2, &policy);
        for (label, key) in [
            ("f", &other_f),
            ("graph", &other_graph),
            ("theorem", &other_theorem),
        ] {
            assert_ne!(implicit.fingerprint(), key.fingerprint(), "{label} aliased");
        }
    }

    #[test]
    fn unresolvable_protocol_is_bad_request() {
        assert!(matches!(
            refute_to_bytes(
                Theorem::BaNodes,
                Some("NoSuchProtocol(f=1)"),
                None,
                1,
                RunPolicy::default()
            ),
            Err(QueryError::BadRequest { .. })
        ));
    }
}
