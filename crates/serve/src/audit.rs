//! The audit path as a library: decode, canonicality check, registry
//! resolve, re-verify — exactly what the `flm-audit` binary does, factored
//! out so the `flm-serve` Audit RPC and the binary share one code path and
//! one exit-code contract.
//!
//! | exit | meaning |
//! |---|---|
//! | 0 | certificate decoded and the violation reproduced |
//! | 1 | certificate decoded but verification failed (not reproduced) |
//! | 2 | malformed bytes, non-canonical encoding, or unresolvable protocol |

use std::fmt::Write as _;

use flm_core::certificate::VerifyError;
use flm_core::codec::AnyCertificate;
use flm_protocols::{resolve, resolve_clock};

use crate::rpc::Verdict;

/// `flm-audit` exit code: violation reproduced.
pub const EXIT_VERIFIED: u8 = 0;
/// `flm-audit` exit code: well-formed but not reproduced.
pub const EXIT_NOT_REPRODUCED: u8 = 1;
/// `flm-audit` exit code: malformed input.
pub const EXIT_MALFORMED: u8 = 2;

/// Outcome of one audit: the exit code plus what the binary would print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// 0 verified / 1 not reproduced / 2 malformed.
    pub exit_code: u8,
    /// What `flm-audit` prints to stdout (the certificate rendering and the
    /// verdict line; empty on failure).
    pub report: String,
    /// What `flm-audit` prints to stderr (failure explanations, timeline
    /// replay problems; empty on clean success).
    pub diagnostics: String,
}

/// Audits a certificate file image: decode, canonicality check, resolve the
/// recorded protocol, re-verify, and (optionally, discrete certificates
/// only) replay the violating behavior's timeline into the report.
///
/// Never panics on hostile bytes — every failure is a structured exit code
/// with a diagnostic, the same contract `tests/hostile_certificates.rs`
/// pins for the underlying decoder.
pub fn audit_bytes(bytes: &[u8], timeline: bool) -> AuditReport {
    let mut report = String::new();
    let mut diagnostics = String::new();
    let exit_code = audit_into(bytes, timeline, &mut report, &mut diagnostics);
    AuditReport {
        exit_code,
        report,
        diagnostics,
    }
}

fn audit_into(bytes: &[u8], timeline: bool, report: &mut String, diagnostics: &mut String) -> u8 {
    let cert = match flm_core::codec::decode_any(bytes) {
        Ok(cert) => cert,
        Err(e) => {
            let _ = writeln!(diagnostics, "{e}");
            return EXIT_MALFORMED;
        }
    };
    // Canonicality check before anything runs: accepted bytes must re-encode
    // to themselves, or the file's hash is not a fingerprint of its content.
    if cert.to_bytes() != bytes {
        let _ = writeln!(
            diagnostics,
            "decoded certificate does not re-encode to the input bytes"
        );
        return EXIT_MALFORMED;
    }
    match cert {
        AnyCertificate::Discrete(cert) => {
            let protocol = match resolve(&cert.protocol) {
                Ok(p) => p,
                Err(e) => {
                    let _ = writeln!(diagnostics, "{e}");
                    return EXIT_MALFORMED;
                }
            };
            match cert.verify(&*protocol) {
                Ok(()) => {
                    let _ = writeln!(report, "{cert}");
                    let _ = writeln!(
                        report,
                        "VERIFIED: violation reproduced against {}",
                        cert.protocol
                    );
                    if timeline {
                        match cert.replay_violating_behavior(&*protocol) {
                            Ok(behavior) => {
                                let _ = write!(report, "{}", behavior.render_timeline());
                            }
                            Err(e) => {
                                let _ = writeln!(diagnostics, "timeline replay failed: {e}");
                            }
                        }
                    }
                    EXIT_VERIFIED
                }
                Err(VerifyError::NotReproduced { reason }) => {
                    let _ = writeln!(diagnostics, "NOT REPRODUCED: {reason}");
                    EXIT_NOT_REPRODUCED
                }
                Err(VerifyError::Malformed { reason }) => {
                    let _ = writeln!(diagnostics, "malformed certificate: {reason}");
                    EXIT_MALFORMED
                }
            }
        }
        AnyCertificate::Clock(cert) => {
            let protocol = match resolve_clock(&cert.protocol) {
                Ok(p) => p,
                Err(e) => {
                    let _ = writeln!(diagnostics, "{e}");
                    return EXIT_MALFORMED;
                }
            };
            match cert.verify(&*protocol) {
                Ok(()) => {
                    let _ = writeln!(report, "{cert}");
                    let _ = writeln!(
                        report,
                        "VERIFIED: violation reproduced against {}",
                        cert.protocol
                    );
                    if timeline {
                        let _ = writeln!(
                            diagnostics,
                            "--timeline applies to discrete certificates only"
                        );
                    }
                    EXIT_VERIFIED
                }
                Err(VerifyError::NotReproduced { reason }) => {
                    let _ = writeln!(diagnostics, "NOT REPRODUCED: {reason}");
                    EXIT_NOT_REPRODUCED
                }
                Err(VerifyError::Malformed { reason }) => {
                    let _ = writeln!(diagnostics, "malformed certificate: {reason}");
                    EXIT_MALFORMED
                }
            }
        }
        AnyCertificate::Async(cert) => {
            // Verification replays the recorded schedule byte-for-byte, so a
            // clean exit here means the adversarial execution reproduced
            // delivery by delivery.
            let protocol = match resolve(&cert.protocol) {
                Ok(p) => p,
                Err(e) => {
                    let _ = writeln!(diagnostics, "{e}");
                    return EXIT_MALFORMED;
                }
            };
            match cert.verify(&*protocol) {
                Ok(()) => {
                    let _ = writeln!(report, "{cert}");
                    let _ = writeln!(
                        report,
                        "VERIFIED: violation reproduced against {}",
                        cert.protocol
                    );
                    if timeline {
                        let _ = writeln!(
                            diagnostics,
                            "--timeline applies to discrete certificates only"
                        );
                    }
                    EXIT_VERIFIED
                }
                Err(VerifyError::NotReproduced { reason }) => {
                    let _ = writeln!(diagnostics, "NOT REPRODUCED: {reason}");
                    EXIT_NOT_REPRODUCED
                }
                Err(VerifyError::Malformed { reason }) => {
                    let _ = writeln!(diagnostics, "malformed certificate: {reason}");
                    EXIT_MALFORMED
                }
            }
        }
    }
}

/// One row of a batch audit: the file name (no directory) and its
/// individual [`audit_bytes`] outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// File name within the audited directory.
    pub file: String,
    /// The per-file audit outcome (timeline rendering is never requested
    /// in batch mode).
    pub report: AuditReport,
}

/// Audits every `*.flmc` file in `dir` in sorted file-name order — the
/// directory layout `regen --campaign` writes. Returns an error string if
/// the directory cannot be read or contains no certificate files; an
/// unreadable individual file becomes a malformed entry, not an error, so
/// one bad file cannot hide the verdicts of the rest.
pub fn audit_dir(dir: &std::path::Path) -> Result<Vec<BatchEntry>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.ends_with(".flmc"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no .flmc files in {}", dir.display()));
    }
    Ok(names
        .into_iter()
        .map(|file| {
            let report = match std::fs::read(dir.join(&file)) {
                Ok(bytes) => audit_bytes(&bytes, false),
                Err(e) => AuditReport {
                    exit_code: EXIT_MALFORMED,
                    report: String::new(),
                    diagnostics: format!("reading {file}: {e}\n"),
                },
            };
            BatchEntry { file, report }
        })
        .collect())
}

/// The exit code for a whole batch: the worst per-file code, so `0` means
/// every certificate in the directory reproduced its violation.
pub fn batch_exit_code(entries: &[BatchEntry]) -> u8 {
    entries
        .iter()
        .map(|e| e.report.exit_code)
        .max()
        .unwrap_or(EXIT_MALFORMED)
}

/// Renders the per-file verdict table `flm-audit --batch` prints: one row
/// per certificate plus a summary line.
pub fn render_batch_table(entries: &[BatchEntry]) -> String {
    let width = entries
        .iter()
        .map(|e| e.file.len())
        .max()
        .unwrap_or(4)
        .max("file".len());
    let mut out = String::new();
    let _ = writeln!(out, "{:<width$}  verdict", "file");
    let mut counts = [0usize; 3];
    for entry in entries {
        let verdict = match entry.report.exit_code {
            EXIT_VERIFIED => "VERIFIED",
            EXIT_NOT_REPRODUCED => "NOT REPRODUCED",
            _ => "MALFORMED",
        };
        counts[usize::from(entry.report.exit_code.min(2))] += 1;
        let _ = writeln!(out, "{:<width$}  {verdict}", entry.file);
    }
    let _ = writeln!(
        out,
        "{} audited: {} verified, {} not reproduced, {} malformed",
        entries.len(),
        counts[0],
        counts[1],
        counts[2]
    );
    out
}

/// The lighter verification path behind the Verify RPC: decode, resolve,
/// re-verify — no canonicality requirement, no rendering. Returns the
/// verdict plus a detail string (the protocol name on success, the failure
/// reason otherwise).
pub fn verify_bytes(bytes: &[u8]) -> (Verdict, String) {
    let cert = match flm_core::codec::decode_any(bytes) {
        Ok(cert) => cert,
        Err(e) => return (Verdict::Malformed, e.to_string()),
    };
    let (protocol_name, outcome) = match &cert {
        AnyCertificate::Discrete(cert) => (
            cert.protocol.clone(),
            match resolve(&cert.protocol) {
                Ok(p) => cert.verify(&*p),
                Err(e) => return (Verdict::Malformed, e.to_string()),
            },
        ),
        AnyCertificate::Clock(cert) => (
            cert.protocol.clone(),
            match resolve_clock(&cert.protocol) {
                Ok(p) => cert.verify(&*p),
                Err(e) => return (Verdict::Malformed, e.to_string()),
            },
        ),
        AnyCertificate::Async(cert) => (
            cert.protocol.clone(),
            match resolve(&cert.protocol) {
                Ok(p) => cert.verify(&*p),
                Err(e) => return (Verdict::Malformed, e.to_string()),
            },
        ),
    };
    match outcome {
        Ok(()) => (Verdict::Verified, protocol_name),
        Err(VerifyError::NotReproduced { reason }) => (Verdict::NotReproduced, reason),
        Err(VerifyError::Malformed { reason }) => (Verdict::Malformed, reason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{refute_to_bytes, Theorem};
    use flm_sim::RunPolicy;

    fn sample_bytes() -> Vec<u8> {
        refute_to_bytes(Theorem::BaNodes, None, None, 1, RunPolicy::default()).unwrap()
    }

    #[test]
    fn fresh_certificate_audits_clean() {
        let report = audit_bytes(&sample_bytes(), false);
        assert_eq!(report.exit_code, EXIT_VERIFIED, "{}", report.diagnostics);
        assert!(report.report.contains("VERIFIED"));
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn timeline_lands_in_report() {
        let report = audit_bytes(&sample_bytes(), true);
        assert_eq!(report.exit_code, EXIT_VERIFIED);
        assert!(
            report.report.contains("tick"),
            "no timeline: {}",
            report.report
        );
    }

    #[test]
    fn garbage_is_malformed() {
        let report = audit_bytes(b"not a certificate", false);
        assert_eq!(report.exit_code, EXIT_MALFORMED);
        assert!(report.report.is_empty());
        assert!(!report.diagnostics.is_empty());
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(b"junk");
        assert_eq!(audit_bytes(&bytes, false).exit_code, EXIT_MALFORMED);
    }

    #[test]
    fn verify_bytes_matches_audit_verdicts() {
        let bytes = sample_bytes();
        let (verdict, detail) = verify_bytes(&bytes);
        assert_eq!(verdict, Verdict::Verified);
        assert!(detail.contains("EIG"), "detail {detail:?}");
        let (verdict, _) = verify_bytes(b"garbage");
        assert_eq!(verdict, Verdict::Malformed);
    }

    #[test]
    fn batch_audit_tables_every_file_and_takes_the_worst_exit() {
        let dir = std::env::temp_dir().join(format!("flm-audit-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b-good.flmc"), sample_bytes()).unwrap();
        std::fs::write(dir.join("a-bad.flmc"), b"garbage").unwrap();
        std::fs::write(dir.join("ignored.txt"), b"not a cert").unwrap();

        let entries = audit_dir(&dir).unwrap();
        assert_eq!(
            entries.iter().map(|e| e.file.as_str()).collect::<Vec<_>>(),
            ["a-bad.flmc", "b-good.flmc"],
            "sorted, .flmc only"
        );
        assert_eq!(batch_exit_code(&entries), EXIT_MALFORMED);
        let table = render_batch_table(&entries);
        assert!(table.contains("a-bad.flmc"));
        assert!(table.contains("MALFORMED"));
        assert!(table.contains("b-good.flmc"));
        assert!(table.contains("VERIFIED"));
        assert!(table.contains("2 audited: 1 verified, 0 not reproduced, 1 malformed"));

        std::fs::remove_file(dir.join("a-bad.flmc")).unwrap();
        let entries = audit_dir(&dir).unwrap();
        assert_eq!(batch_exit_code(&entries), EXIT_VERIFIED);

        std::fs::remove_dir_all(&dir).unwrap();
        assert!(audit_dir(&dir).is_err(), "unreadable dir is an error");
    }

    #[test]
    fn empty_directory_is_an_error_not_a_silent_pass() {
        let dir = std::env::temp_dir().join(format!("flm-audit-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = audit_dir(&dir).unwrap_err();
        assert!(err.contains("no .flmc files"), "{err}");
        assert_eq!(batch_exit_code(&[]), EXIT_MALFORMED);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn async_certificates_audit_clean_too() {
        let bytes =
            refute_to_bytes(Theorem::FlpAsync, None, None, 1, RunPolicy::default()).unwrap();
        let report = audit_bytes(&bytes, false);
        assert_eq!(report.exit_code, EXIT_VERIFIED, "{}", report.diagnostics);
        assert!(report.report.contains("FLP"), "{}", report.report);
        let (verdict, detail) = verify_bytes(&bytes);
        assert_eq!(verdict, Verdict::Verified);
        assert!(detail.contains("WaitForAll"), "detail {detail:?}");
    }

    #[test]
    fn clock_certificates_audit_clean_too() {
        let bytes =
            refute_to_bytes(Theorem::ClockSync, None, None, 1, RunPolicy::default()).unwrap();
        let report = audit_bytes(&bytes, false);
        assert_eq!(report.exit_code, EXIT_VERIFIED, "{}", report.diagnostics);
    }
}
