//! `flm-router` — the sharded serve plane's front door.
//!
//! ```text
//! flm-router --shards 127.0.0.1:7416,127.0.0.1:7417,127.0.0.1:7418
//! ```
//!
//! Routes each keyed FLMC-RPC request to the shard that owns its canonical
//! query key (rendezvous hashing), answers pings locally, aggregates Stats
//! into a cluster view, and degrades dead shards to typed `ShardDown`
//! answers for their key range only.

use std::process::ExitCode;
use std::time::Duration;

use flm_serve::router::{Router, RouterConfig};
use flm_serve::server::write_port_file;
use flm_serve::shard::ShardMap;

const USAGE: &str = "usage: flm-router --shards ADDR,ADDR,... [options]
options:
  --addr HOST:PORT          front bind address (default 127.0.0.1:7415)
  --shards ADDR,ADDR,...    shard addresses in shard-id order (required)
  --max-connections N       front connection cap (default 2048)
  --max-pipelined N         per-connection in-flight request cap (default 32)
  --backend-pending N       per-shard in-flight request cap (default 256)
  --reconnect-ms N          down-shard reconnect interval (default 1000)
  --port-file PATH          write the bound front address here (atomically)";

fn parse(args: &[String]) -> Result<(RouterConfig, Option<String>), String> {
    let mut addr = "127.0.0.1:7415".to_owned();
    let mut shards: Option<ShardMap> = None;
    let mut max_connections = 2048usize;
    let mut max_pipelined = 32usize;
    let mut backend_pending = 256usize;
    let mut reconnect_ms = 1000u64;
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--shards" => shards = Some(ShardMap::parse_peers(&value("--shards")?)?),
            "--max-connections" => {
                max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--max-pipelined" => {
                max_pipelined = value("--max-pipelined")?
                    .parse()
                    .map_err(|e| format!("--max-pipelined: {e}"))?;
            }
            "--backend-pending" => {
                backend_pending = value("--backend-pending")?
                    .parse()
                    .map_err(|e| format!("--backend-pending: {e}"))?;
            }
            "--reconnect-ms" => {
                reconnect_ms = value("--reconnect-ms")?
                    .parse()
                    .map_err(|e| format!("--reconnect-ms: {e}"))?;
            }
            "--port-file" => port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let shards = shards.ok_or_else(|| format!("--shards is required\n{USAGE}"))?;
    let mut config = RouterConfig::new(addr, shards);
    config.max_connections = max_connections.max(1);
    config.max_pipelined = max_pipelined.max(1);
    config.backend_pending_cap = backend_pending.max(1);
    config.reconnect_interval = Duration::from_millis(reconnect_ms.max(1));
    Ok((config, port_file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port_file) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("flm-router: {e}");
            return ExitCode::from(2);
        }
    };
    let shard_count = config.shards.count();
    let router = match Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("flm-router: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(path) = port_file {
        if let Err(e) = write_port_file(std::path::Path::new(&path), router.local_addr()) {
            eprintln!("flm-router: writing {path}: {e}");
            return ExitCode::from(1);
        }
    }
    eprintln!(
        "flm-router: fronting {shard_count} shards on {}",
        router.local_addr()
    );
    router.wait();
    ExitCode::SUCCESS
}
