//! `flm-serve` — refutation-as-a-service over framed FLMC-RPC.
//!
//! Binds a TCP listener and answers refute / verify / audit / stats
//! requests with an event-driven reactor multiplexing every connection and
//! a bounded worker pool for the CPU-bound work. A saturated server answers
//! a typed `Overloaded` frame instead of dropping the socket.
//!
//! ```text
//! flm-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!           [--max-body-bytes N] [--read-timeout-ms N] [--max-hold-ms N]
//!           [--max-requests N] [--max-connections N] [--max-pipelined N]
//!           [--store-dir DIR] [--store-mem-cap N] [--port-file FILE]
//!           [--shard-id N --peers ADDR,ADDR,... [--shard-count N]]
//! ```
//!
//! `--addr 127.0.0.1:0` (the default) binds an ephemeral port;
//! `--port-file` writes the actual bound address to a file (atomically:
//! temp file + rename, so a polling reader never sees a partial port),
//! which is how `scripts/check.sh --serve-smoke` finds the server it just
//! started. `--store-dir` enables the persistent certificate store:
//! refutations are served memory → disk → simulate, and warm hits survive
//! restarts. `--shard-id`/`--peers` place the process in a sharded
//! cluster: it owns the rendezvous slice of the key space for its id,
//! answers off-owner requests with a typed `WrongShard`, and pulls
//! certificates it newly owns from peers before cold-simulating.

use std::process::ExitCode;

use flm_serve::server::{write_port_file, ServeConfig, Server, ShardRole};
use flm_serve::shard::ShardMap;

fn usage() -> &'static str {
    "usage: flm-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
     \x20                [--max-body-bytes N] [--read-timeout-ms N] [--max-hold-ms N]\n\
     \x20                [--max-requests N] [--max-connections N] [--max-pipelined N]\n\
     \x20                [--store-dir DIR] [--store-mem-cap N] [--port-file FILE]\n\
     \x20                [--shard-id N --peers ADDR,ADDR,... [--shard-count N]]"
}

fn parse(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut shard_id: Option<u32> = None;
    let mut shard_count: Option<u32> = None;
    let mut peers: Option<ShardMap> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} wants a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers wants a positive integer".to_string())?;
                if config.workers == 0 {
                    return Err("--workers wants a positive integer".into());
                }
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth wants an integer".to_string())?;
            }
            "--max-body-bytes" => {
                config.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|_| "--max-body-bytes wants an integer".to_string())?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms wants an integer".to_string())?;
                config.read_timeout = std::time::Duration::from_millis(ms);
            }
            "--max-hold-ms" => {
                config.max_hold_ms = value("--max-hold-ms")?
                    .parse()
                    .map_err(|_| "--max-hold-ms wants an integer".to_string())?;
            }
            "--max-requests" => {
                config.max_requests_per_conn = value("--max-requests")?
                    .parse()
                    .map_err(|_| "--max-requests wants an integer".to_string())?;
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections wants a positive integer".to_string())?;
                if config.max_connections == 0 {
                    return Err("--max-connections wants a positive integer".into());
                }
            }
            "--max-pipelined" => {
                config.max_pipelined = value("--max-pipelined")?
                    .parse()
                    .map_err(|_| "--max-pipelined wants a positive integer".to_string())?;
                if config.max_pipelined == 0 {
                    return Err("--max-pipelined wants a positive integer".into());
                }
            }
            "--store-dir" => {
                config.store_dir = Some(value("--store-dir")?.into());
            }
            "--store-mem-cap" => {
                config.store_mem_cap = Some(
                    value("--store-mem-cap")?
                        .parse()
                        .map_err(|_| "--store-mem-cap wants an integer".to_string())?,
                );
            }
            "--shard-id" => {
                shard_id = Some(
                    value("--shard-id")?
                        .parse()
                        .map_err(|_| "--shard-id wants an integer".to_string())?,
                );
            }
            "--shard-count" => {
                shard_count = Some(
                    value("--shard-count")?
                        .parse()
                        .map_err(|_| "--shard-count wants an integer".to_string())?,
                );
            }
            "--peers" => peers = Some(ShardMap::parse_peers(value("--peers")?)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (shard_id, peers) {
        (None, None) => {
            if shard_count.is_some() {
                return Err("--shard-count without --shard-id/--peers".into());
            }
        }
        (Some(id), Some(map)) => {
            if let Some(count) = shard_count {
                if count != map.count() {
                    return Err(format!(
                        "--shard-count {count} disagrees with the {}-entry --peers list",
                        map.count()
                    ));
                }
            }
            if id >= map.count() {
                return Err(format!(
                    "--shard-id {id} is outside the {}-shard --peers list",
                    map.count()
                ));
            }
            config.shard = Some(ShardRole { id, map });
        }
        _ => return Err("--shard-id and --peers go together".into()),
    }
    Ok(config)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // --port-file is peeled off first so `parse` deals only with ServeConfig
    // fields.
    let mut args = Vec::new();
    let mut port_file = None;
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--port-file" {
            match it.next() {
                Some(path) => port_file = Some(path),
                None => {
                    eprintln!("flm-serve: --port-file wants a value");
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            args.push(arg);
        }
    }
    let config = match parse(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("flm-serve: {msg}");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("flm-serve: start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = write_port_file(std::path::Path::new(&path), addr) {
            eprintln!("flm-serve: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("listening on {addr}");
    server.wait();
    ExitCode::SUCCESS
}
