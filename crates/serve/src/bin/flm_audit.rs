//! `flm-audit` — standalone certificate checker.
//!
//! Loads an `FLMC` certificate file (written by `regen --emit-cert` or
//! `flm-client refute --out`), resolves the recorded protocol through the
//! `flm-protocols` registry, and re-verifies the certificate from the bytes
//! alone. The exit code is the result:
//!
//! | exit | meaning |
//! |---|---|
//! | 0 | certificate decoded and the violation reproduced |
//! | 1 | certificate decoded but verification failed (not reproduced) |
//! | 2 | file unreadable, malformed bytes, or unresolvable protocol |
//!
//! ```text
//! flm-audit CERT.flmc [--timeline] [--quiet]
//! flm-audit --batch DIR [--quiet]
//! ```
//!
//! `--timeline` re-executes the violating behavior and prints its full
//! message timeline; `--quiet` suppresses everything but errors.
//!
//! `--batch DIR` audits every `*.flmc` file in `DIR` (sorted by name — the
//! layout `regen --campaign` writes), prints a per-file verdict table, and
//! exits with the worst per-file code, so exit 0 certifies the whole
//! directory.
//!
//! The verdict logic lives in [`flm_serve::audit`] — the same code path the
//! `flm-serve` Audit RPC runs, so a certificate accepted here is accepted
//! over the wire and vice versa.

use std::process::ExitCode;

use flm_serve::audit::{
    audit_bytes, audit_dir, batch_exit_code, render_batch_table, EXIT_MALFORMED,
};

struct Args {
    path: String,
    batch: bool,
    timeline: bool,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut path = None;
    let mut batch = false;
    let mut timeline = false;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--timeline" => timeline = true,
            "--quiet" => quiet = true,
            "--batch" => {
                let dir = iter.next().ok_or("--batch needs a directory")?;
                if path.replace(dir.clone()).is_some() {
                    return Err("give either one certificate file or --batch DIR".into());
                }
                batch = true;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err("exactly one certificate file expected".into());
                }
            }
        }
    }
    if batch && timeline {
        return Err("--timeline applies to single-certificate audits only".into());
    }
    Ok(Args {
        path: path.ok_or("no certificate file given")?,
        batch,
        timeline,
        quiet,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("flm-audit: {msg}");
            eprintln!("usage: flm-audit CERT [--timeline] [--quiet]");
            eprintln!("       flm-audit --batch DIR [--quiet]");
            return ExitCode::from(EXIT_MALFORMED);
        }
    };
    if args.batch {
        let entries = match audit_dir(std::path::Path::new(&args.path)) {
            Ok(entries) => entries,
            Err(msg) => {
                eprintln!("flm-audit: {msg}");
                return ExitCode::from(EXIT_MALFORMED);
            }
        };
        if !args.quiet {
            print!("{}", render_batch_table(&entries));
        }
        for entry in &entries {
            for line in entry.report.diagnostics.lines() {
                eprintln!("flm-audit: {}: {line}", entry.file);
            }
        }
        return ExitCode::from(batch_exit_code(&entries));
    }
    let bytes = match std::fs::read(&args.path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("flm-audit: reading {}: {e}", args.path);
            return ExitCode::from(EXIT_MALFORMED);
        }
    };
    let outcome = audit_bytes(&bytes, args.timeline);
    if !args.quiet {
        print!("{}", outcome.report);
    }
    for line in outcome.diagnostics.lines() {
        eprintln!("flm-audit: {line}");
    }
    ExitCode::from(outcome.exit_code)
}
