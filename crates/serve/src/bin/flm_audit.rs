//! `flm-audit` — standalone certificate checker.
//!
//! Loads an `FLMC` certificate file (written by `regen --emit-cert` or
//! `flm-client refute --out`), resolves the recorded protocol through the
//! `flm-protocols` registry, and re-verifies the certificate from the bytes
//! alone. The exit code is the result:
//!
//! | exit | meaning |
//! |---|---|
//! | 0 | certificate decoded and the violation reproduced |
//! | 1 | certificate decoded but verification failed (not reproduced) |
//! | 2 | file unreadable, malformed bytes, or unresolvable protocol |
//!
//! ```text
//! flm-audit CERT.flmc [--timeline] [--quiet]
//! ```
//!
//! `--timeline` re-executes the violating behavior and prints its full
//! message timeline; `--quiet` suppresses everything but errors.
//!
//! The verdict logic lives in [`flm_serve::audit`] — the same code path the
//! `flm-serve` Audit RPC runs, so a certificate accepted here is accepted
//! over the wire and vice versa.

use std::process::ExitCode;

use flm_serve::audit::{audit_bytes, EXIT_MALFORMED};

struct Args {
    path: String,
    timeline: bool,
    quiet: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut path = None;
    let mut timeline = false;
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--timeline" => timeline = true,
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err("exactly one certificate file expected".into());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("no certificate file given")?,
        timeline,
        quiet,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("flm-audit: {msg}");
            eprintln!("usage: flm-audit CERT [--timeline] [--quiet]");
            return ExitCode::from(EXIT_MALFORMED);
        }
    };
    let bytes = match std::fs::read(&args.path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("flm-audit: reading {}: {e}", args.path);
            return ExitCode::from(EXIT_MALFORMED);
        }
    };
    let outcome = audit_bytes(&bytes, args.timeline);
    if !args.quiet {
        print!("{}", outcome.report);
    }
    for line in outcome.diagnostics.lines() {
        eprintln!("flm-audit: {line}");
    }
    ExitCode::from(outcome.exit_code)
}
