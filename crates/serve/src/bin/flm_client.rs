//! `flm-client` — command-line client and load generator for `flm-serve`.
//!
//! ```text
//! flm-client refute THEOREM [--addr HOST:PORT] [--protocol NAME]
//!                           [--graph NAME] [--f N] [--out FILE]
//! flm-client verify CERT    [--addr HOST:PORT]
//! flm-client audit CERT     [--addr HOST:PORT] [--timeline is server-side: none]
//! flm-client stats          [--addr HOST:PORT]
//! flm-client ping           [--addr HOST:PORT] [--hold-ms N]
//! flm-client load           [--addr HOST:PORT] [--connections N]
//!                           [--requests M] [--mix R:V:A] [--theorem NAME]
//!                           [--mode direct|router]
//! flm-client rebalance      --store-dir DIR --peers ADDR,... --shard-id N
//!                           [--remove true]
//! ```
//!
//! `refute` prints the certificate bytes to stdout (or `--out FILE`) so the
//! result pipes straight into `flm-audit`. `audit` mirrors the `flm-audit`
//! exit-code contract: 0 verified, 1 not reproduced, 2 malformed. `load` is
//! the generator behind `BENCH_serve.json`; `--mode router` drives all
//! seven theorem families through an `flm-router` and reports per-key-range
//! hit rates. `stats` renders whatever answers: a single server's counters
//! flat, a router's cluster view as a per-shard table. `rebalance` walks a
//! shard's store directory and ships every certificate it no longer owns
//! under the given topology to the owning shard.

use std::io::Write as _;
use std::process::ExitCode;

use flm_serve::client::{Client, StatsView};
use flm_serve::loadgen::{self, Mix};
use flm_serve::query::{parse_graph, Theorem};
use flm_serve::rpc::Verdict;
use flm_serve::shard::{self, ShardMap};

const DEFAULT_ADDR: &str = "127.0.0.1:7415";

fn usage() -> &'static str {
    "usage: flm-client refute THEOREM [--addr A] [--protocol P] [--graph G] [--f N] [--out FILE]\n\
     \x20      flm-client verify CERT [--addr A]\n\
     \x20      flm-client audit CERT [--addr A]\n\
     \x20      flm-client stats [--addr A]\n\
     \x20      flm-client ping [--addr A] [--hold-ms N]\n\
     \x20      flm-client load [--addr A] [--connections N] [--requests M] [--mix R:V:A] [--theorem T] [--mode direct|router]\n\
     \x20      flm-client rebalance --store-dir DIR --peers ADDR,... --shard-id N [--remove true]"
}

/// Flag parser: positional operands plus `--flag value` pairs.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{flag} wants a value"))?;
                pairs.push((flag.to_owned(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn addr(&self) -> &str {
        self.get("addr").unwrap_or(DEFAULT_ADDR)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{flag}: bad value {raw:?}")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (flag, _) in &self.pairs {
            if !known.contains(&flag.as_str()) {
                return Err(format!("unknown flag --{flag}"));
            }
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(flags) => flags,
        Err(msg) => {
            eprintln!("flm-client: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "refute" => cmd_refute(&flags),
        "verify" => cmd_verify(&flags),
        "audit" => cmd_audit(&flags),
        "stats" => cmd_stats(&flags),
        "ping" => cmd_ping(&flags),
        "load" => cmd_load(&flags),
        "rebalance" => cmd_rebalance(&flags),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("flm-client: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn connect(flags: &Flags) -> Result<Client, String> {
    Client::connect(flags.addr()).map_err(|e| format!("connecting to {}: {e}", flags.addr()))
}

fn cmd_refute(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr", "protocol", "graph", "f", "out"])?;
    let [theorem] = flags.positional.as_slice() else {
        return Err("refute wants exactly one THEOREM operand".into());
    };
    // Validate the family and graph locally for a friendly error before any
    // bytes hit the wire; the server re-validates anyway.
    Theorem::parse(theorem).map_err(|e| e.to_string())?;
    let graph = match flags.get("graph") {
        Some(name) => Some(parse_graph(name).map_err(|e| e.to_string())?),
        None => None,
    };
    let f: u32 = flags.parsed("f", 1)?;
    let mut client = connect(flags)?;
    let bytes = client
        .refute(theorem, flags.get("protocol"), graph.as_ref(), f, None)
        .map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} bytes to {path}", bytes.len());
        }
        None => {
            std::io::stdout()
                .write_all(&bytes)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn read_cert(flags: &Flags) -> Result<Vec<u8>, String> {
    let [path] = flags.positional.as_slice() else {
        return Err("exactly one certificate file expected".into());
    };
    std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_verify(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr"])?;
    let cert = read_cert(flags)?;
    let mut client = connect(flags)?;
    let (verdict, detail) = client.verify(&cert).map_err(|e| e.to_string())?;
    match verdict {
        Verdict::Verified => {
            println!("VERIFIED: violation reproduced against {detail}");
            Ok(ExitCode::SUCCESS)
        }
        Verdict::NotReproduced => {
            eprintln!("NOT REPRODUCED: {detail}");
            Ok(ExitCode::from(1))
        }
        Verdict::Malformed => {
            eprintln!("malformed certificate: {detail}");
            Ok(ExitCode::from(2))
        }
    }
}

fn cmd_audit(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr"])?;
    let cert = read_cert(flags)?;
    let mut client = connect(flags)?;
    let (exit_code, report, diagnostics) = client.audit(&cert).map_err(|e| e.to_string())?;
    print!("{report}");
    eprint!("{diagnostics}");
    Ok(ExitCode::from(exit_code))
}

fn cmd_stats(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr"])?;
    let mut client = connect(flags)?;
    match client.stats_view().map_err(|e| e.to_string())? {
        StatsView::Single(report) => println!("{report}"),
        StatsView::Cluster(report) => println!("{report}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_ping(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr", "hold-ms"])?;
    let hold_ms: u32 = flags.parsed("hold-ms", 0)?;
    let mut client = connect(flags)?;
    let echoed = client.ping(b"flm", hold_ms).map_err(|e| e.to_string())?;
    if echoed != b"flm" {
        return Err("ping payload came back mangled".into());
    }
    println!("pong from {}", flags.addr());
    Ok(ExitCode::SUCCESS)
}

fn cmd_load(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["addr", "connections", "requests", "mix", "theorem", "mode"])?;
    if !flags.positional.is_empty() {
        return Err("load takes flags only".into());
    }
    let connections: usize = flags.parsed("connections", 4)?;
    let requests: usize = flags.parsed("requests", 16)?;
    if flags.get("mode") == Some("router") {
        if flags.get("mix").is_some() || flags.get("theorem").is_some() {
            return Err(
                "--mode router drives all families refute-only; drop --mix/--theorem".into(),
            );
        }
        let report = loadgen::run_router(flags.addr(), connections, requests)?;
        print!("{report}");
        if report.totals.abandoned > 0 || report.totals.transport_errors > 0 {
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }
    if flags.get("mode").is_some_and(|m| m != "direct") {
        return Err(format!(
            "--mode wants direct or router, got {:?}",
            flags.get("mode").unwrap_or_default()
        ));
    }
    let mix = match flags.get("mix") {
        Some(raw) => Mix::parse(raw)?,
        None => Mix::default(),
    };
    let theorem = match flags.get("theorem") {
        Some(name) => Theorem::parse(name).map_err(|e| e.to_string())?,
        None => Theorem::BaNodes,
    };
    let report = loadgen::run(flags.addr(), connections, requests, mix, theorem)?;
    println!("{report}");
    // Abandoned requests or transport errors mean the server dropped load —
    // the one thing a load-shedding server must never do.
    if report.abandoned > 0 || report.transport_errors > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_rebalance(flags: &Flags) -> Result<ExitCode, String> {
    flags.reject_unknown(&["store-dir", "peers", "shard-id", "remove"])?;
    if !flags.positional.is_empty() {
        return Err("rebalance takes flags only".into());
    }
    let dir = flags
        .get("store-dir")
        .ok_or_else(|| "rebalance wants --store-dir".to_string())?;
    let peers = flags
        .get("peers")
        .ok_or_else(|| "rebalance wants --peers".to_string())?;
    let shard_id: u32 = flags
        .get("shard-id")
        .ok_or_else(|| "rebalance wants --shard-id".to_string())?
        .parse()
        .map_err(|_| "--shard-id wants an integer".to_string())?;
    let remove: bool = flags.parsed("remove", false)?;
    let map = ShardMap::parse_peers(peers)?;
    let report = shard::rebalance(std::path::Path::new(dir), &map, shard_id, remove)?;
    println!("{report}");
    // Unshipped misplaced certs leave the cluster cold for those keys; the
    // exit code makes a cron-driven rebalance loud about it.
    if report.failed > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
