//! Minimal readiness polling for the event-driven server: a thin, safe
//! wrapper over Linux `epoll`, built directly on [`std::os::fd`] with no
//! external crates.
//!
//! The workspace is dependency-free by charter, and `std` exposes no
//! readiness API — so this module declares the three `epoll` entry points
//! itself (`libc` is already linked by `std` on Linux; declaring the
//! symbols adds no dependency) and confines every `unsafe` block in the
//! crate to the few lines that cross that boundary. Each block upholds the
//! same invariants: file descriptors passed in are borrowed from live
//! `std` owners ([`BorrowedFd`]), buffers passed to the kernel are
//! stack-allocated with their real lengths, and returned descriptors are
//! immediately wrapped in [`OwnedFd`] so closing is never hand-rolled.
//!
//! The abstraction is deliberately small — register / modify / deregister /
//! wait over opaque `u64` tokens, plus a [`Waker`] for cross-thread
//! wake-ups — because the server's reactor is the only customer.

use std::io::{self, Write as _};
use std::os::fd::{AsRawFd, BorrowedFd, FromRawFd, OwnedFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

#[cfg(not(target_os = "linux"))]
compile_error!(
    "flm-serve's readiness loop is built on Linux epoll; \
     port crates/serve/src/sys.rs to this platform's poller to build here"
);

mod ffi {
    use std::os::raw::c_int;

    // The x86_64 kernel ABI packs epoll_event (glibc's __EPOLL_PACKED);
    // other architectures use natural alignment.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

/// Which readiness a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or the peer hangs up).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        // RDHUP rides with readability: a read() observing the FIN is how
        // the state machine learns the peer finished sending. It must NOT
        // be subscribed without EPOLLIN — a half-closed peer would then
        // level-trigger forever on a connection that already saw EOF and
        // deliberately stopped reading.
        let mut bits = 0;
        if self.readable {
            bits |= ffi::EPOLLIN | ffi::EPOLLRDHUP;
        }
        if self.writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (includes a half-closed peer: the
    /// pending `read` will observe EOF).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The descriptor is in an error or hang-up state; the connection is
    /// finished whatever else is set.
    pub hangup: bool,
}

/// A level-triggered readiness poller over an epoll instance.
///
/// Level-triggered on purpose: the reactor may legitimately stop reading a
/// ready socket (pipeline cap reached) and come back later — with
/// edge-triggered semantics that would require careful re-arm bookkeeping,
/// with level-triggered semantics it is simply correct.
#[derive(Debug)]
pub struct Poller {
    epoll: OwnedFd,
}

/// How many events one [`Poller::wait`] call can deliver. More ready
/// descriptors than this simply arrive on the next call (level-triggered
/// readiness is never lost).
pub const MAX_EVENTS_PER_WAIT: usize = 1024;

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a non-negative return is
        // a freshly created descriptor this process owns, moved straight
        // into an OwnedFd so it is closed exactly once.
        let raw = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` was just returned by epoll_create1 and is owned by
        // nobody else.
        let epoll = unsafe { OwnedFd::from_raw_fd(raw) };
        Ok(Poller { epoll })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: BorrowedFd<'_>,
        event: u32,
        token: u64,
    ) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events: event,
            data: token,
        };
        // SAFETY: both descriptors are live for the duration of the call
        // (self.epoll is owned, fd is borrowed from a live owner), and the
        // event pointer is a valid stack value the kernel only reads.
        let rc = unsafe {
            ffi::epoll_ctl(
                self.epoll.as_raw_fd(),
                op,
                fd.as_raw_fd(),
                &mut ev as *mut ffi::EpollEvent,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers a descriptor under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn register(&self, fd: BorrowedFd<'_>, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Changes a registered descriptor's interest (the token may change
    /// too).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: BorrowedFd<'_>, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Removes a descriptor from the poller. Dropping the descriptor also
    /// removes it; this exists for descriptors that outlive their
    /// registration.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&self, fd: BorrowedFd<'_>) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses (`None` blocks indefinitely), appending up to
    /// [`MAX_EVENTS_PER_WAIT`] events to `events` (which is cleared first).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure; `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps rather than spins.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as std::os::raw::c_int,
        };
        let mut buf = [ffi::EpollEvent { events: 0, data: 0 }; MAX_EVENTS_PER_WAIT];
        let n = loop {
            // SAFETY: the buffer is a live stack array and maxevents is its
            // exact length; the kernel writes at most that many entries.
            let rc = unsafe {
                ffi::epoll_wait(
                    self.epoll.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let bits = { ev.events };
            events.push(Event {
                token: { ev.data },
                readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0,
                writable: bits & ffi::EPOLLOUT != 0,
                hangup: bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

/// The write half of a self-wake channel: worker threads call
/// [`Waker::wake`] to pull the reactor out of [`Poller::wait`].
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Wakes the poller the paired receiver is registered with. Infallible
    /// by design: a full pipe means a wake-up is already pending, which is
    /// all a wake-up means.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// Builds a wake channel: the [`Waker`] for worker threads, and the
/// receiving [`UnixStream`] for the reactor to register (readable whenever
/// a wake is pending) and drain.
///
/// # Errors
///
/// Propagates socketpair creation / option failures.
pub fn wake_channel() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Drains every pending wake byte from a wake channel's receiver. Coalesced
/// wake-ups are fine: one drained byte or sixty all mean "look at the
/// completion queue".
pub fn drain_wakes(rx: &UnixStream) {
    use std::io::Read as _;
    let mut buf = [0u8; 64];
    while matches!((&*rx).read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::os::fd::AsFd as _;

    #[test]
    fn readiness_round_trip_over_a_socketpair() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_fd(), 7, Interest::BOTH).unwrap();

        // An idle socket with room in its send buffer: writable, not
        // readable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].writable && !events[0].readable, "{events:?}");

        // Bytes from the peer: now readable too (level-triggered, so the
        // report repeats until drained).
        (&a).write_all(b"ping").unwrap();
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
        }

        // Narrowing interest to readable-only suppresses the writable
        // report.
        poller.modify(b.as_fd(), 7, Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable), "{events:?}");

        // Draining the bytes clears readability: the wait now times out.
        let mut buf = [0u8; 16];
        assert_eq!((&b).read(&mut buf).unwrap(), 4);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        poller.deregister(b.as_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_fd(), 1, Interest::READABLE).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // The FIN shows up as readability (the read will observe EOF),
        // possibly with the hangup flag alongside.
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "{events:?}"
        );
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn wake_channel_crosses_threads_and_coalesces() {
        let poller = Poller::new().unwrap();
        let (waker, rx) = wake_channel().unwrap();
        poller.register(rx.as_fd(), 99, Interest::READABLE).unwrap();

        let handle = std::thread::spawn(move || {
            for _ in 0..32 {
                waker.wake();
            }
            waker
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        let waker = handle.join().unwrap();

        // Draining coalesces every pending wake; the channel then reads as
        // idle until the next wake.
        drain_wakes(&rx);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
        waker.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
    }
}
