//! The FLMC-RPC client: a blocking connection speaking [`crate::frame`]
//! frames, with typed convenience wrappers for every request kind.
//!
//! The same type backs the `flm-client` binary, the load generator, and the
//! embedded-server tests — there is exactly one implementation of "send a
//! request, read the matching response".

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use flm_graph::Graph;
use flm_sim::RunPolicy;

use crate::frame::{read_frame, write_frame, FrameReadError, DEFAULT_MAX_BODY_BYTES};
use crate::rpc::{
    ClusterStatsReport, ErrorCode, RefuteParams, Request, Response, StatsReport, Verdict,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes were not a valid frame or response.
    Protocol(String),
    /// The server answered with a typed error frame.
    ErrorResponse {
        /// The server's failure classification.
        code: ErrorCode,
        /// The server's explanation.
        detail: String,
    },
    /// The server shed this connection: it is saturated.
    Overloaded {
        /// Connections waiting in the accept queue when the server shed.
        queued: u32,
        /// The server's explanation.
        detail: String,
    },
    /// The request landed on a shard that does not own its key; the
    /// payload says who does.
    WrongShard {
        /// The owning shard's id.
        owner: u32,
        /// The owning shard's address.
        addr: String,
    },
    /// The shard owning this key is down; the router answered for it.
    ShardDown {
        /// The dead shard's id.
        shard: u32,
        /// The router's explanation.
        detail: String,
    },
    /// The server answered with a well-formed response of the wrong kind.
    Unexpected {
        /// A description of what arrived.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ErrorResponse { code, detail } => {
                write!(f, "server error ({code}): {detail}")
            }
            ClientError::Overloaded { queued, detail } => {
                write!(f, "server overloaded ({queued} queued): {detail}")
            }
            ClientError::WrongShard { owner, addr } => {
                write!(f, "wrong shard: key is owned by shard {owner} at {addr}")
            }
            ClientError::ShardDown { shard, detail } => {
                write!(f, "shard {shard} is down: {detail}")
            }
            ClientError::Unexpected { got } => write!(f, "unexpected response: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected FLMC-RPC client.
pub struct Client {
    stream: TcpStream,
    max_body_bytes: usize,
}

impl Client {
    /// Connects to an `flm-serve` address.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        })
    }

    /// Connects with a per-address deadline — the peer-fetch and rebalance
    /// paths use this so a down shard costs a bounded wait, not a full TCP
    /// connect timeout.
    ///
    /// # Errors
    ///
    /// The last address's connect failure, or an [`ClientError::Io`] when
    /// the name resolves to nothing.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last: Option<io::Error> = None;
        for sockaddr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sockaddr, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client {
                        stream,
                        max_body_bytes: DEFAULT_MAX_BODY_BYTES,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })))
    }

    /// Sets a read timeout for responses; `None` (the default) blocks until
    /// the server answers — refutations on cold caches take as long as they
    /// take.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends a request and reads the server's single response frame.
    /// [`Response::Error`] and [`Response::Overloaded`] are returned as
    /// values here; the typed wrappers below turn them into
    /// [`ClientError`]s.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed response frames.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let frame = read_frame(&mut self.stream, self.max_body_bytes)?;
        Response::from_frame(&frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, detail } => Err(ClientError::ErrorResponse { code, detail }),
            Response::Overloaded { queued, detail } => {
                Err(ClientError::Overloaded { queued, detail })
            }
            Response::WrongShard { owner, addr } => Err(ClientError::WrongShard { owner, addr }),
            Response::ShardDown { shard, detail } => Err(ClientError::ShardDown { shard, detail }),
            other => Ok(other),
        }
    }

    /// Round-trips a ping, returning the echoed payload.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn ping(&mut self, payload: &[u8], hold_ms: u32) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Ping {
            payload: payload.to_vec(),
            hold_ms,
        })? {
            Response::Pong { payload } => Ok(payload),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests a refutation, returning portable `FLMC` certificate bytes.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown theorem,
    /// unresolvable protocol, refuter declined), and overload shedding.
    pub fn refute(
        &mut self,
        theorem: &str,
        protocol: Option<&str>,
        graph: Option<&Graph>,
        f: u32,
        policy: Option<RunPolicy>,
    ) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Refute(RefuteParams {
            theorem: theorem.into(),
            protocol: protocol.map(str::to_owned),
            graph: graph.cloned(),
            f,
            policy,
        }))? {
            Response::Certificate { bytes } => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to re-verify a certificate.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn verify(&mut self, cert: &[u8]) -> Result<(Verdict, String), ClientError> {
        match self.expect(&Request::Verify {
            cert: cert.to_vec(),
        })? {
            Response::Verify { verdict, detail } => Ok((verdict, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs the full audit path server-side, returning `(exit_code, stdout,
    /// stderr)` exactly as the local `flm-audit` binary would produce them.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn audit(&mut self, cert: &[u8]) -> Result<(u8, String, String), ClientError> {
        match self.expect(&Request::Audit {
            cert: cert.to_vec(),
        })? {
            Response::Audit {
                exit_code,
                report,
                diagnostics,
            } => Ok((exit_code, report, diagnostics)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's counters and cache statistics.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches stats without assuming what is on the other end: a shard
    /// answers a single report, a router answers the aggregated cluster
    /// view. `flm-client stats` renders whichever arrives.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn stats_view(&mut self) -> Result<StatsView, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(report) => Ok(StatsView::Single(report)),
            Response::ClusterStats(report) => Ok(StatsView::Cluster(report)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks a shard's store for the certificate under raw canonical key
    /// bytes; `None` means a clean miss. Used by peer fetch-on-miss.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn fetch_cert(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.expect(&Request::FetchCert { key: key.to_vec() })? {
            Response::FetchCert { cert } => Ok(cert),
            other => Err(unexpected(&other)),
        }
    }

    /// Ships a certificate to the shard owning `key`. The receiver verifies
    /// before storing (ship-verify-then-own) and answers a bare ack.
    ///
    /// # Errors
    ///
    /// Transport failures, [`ClientError::WrongShard`] when this server is
    /// not the owner, and a typed error for unsound bytes.
    pub fn put_cert(&mut self, key: &[u8], cert: &[u8]) -> Result<(), ClientError> {
        match self.expect(&Request::PutCert {
            key: key.to_vec(),
            cert: cert.to_vec(),
        })? {
            Response::PutCert => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// What a Stats request returned: one server's report, or a router's
/// cluster aggregation.
#[derive(Debug, Clone)]
pub enum StatsView {
    /// A single (shard or unsharded) server's counters.
    Single(StatsReport),
    /// A router's aggregated per-shard view.
    Cluster(ClusterStatsReport),
}

fn unexpected(response: &Response) -> ClientError {
    let got = match response {
        Response::Pong { .. } => "pong",
        Response::Certificate { .. } => "certificate",
        Response::Verify { .. } => "verify result",
        Response::Audit { .. } => "audit result",
        Response::Stats(_) => "stats",
        Response::ClusterStats(_) => "cluster stats",
        Response::FetchCert { .. } => "fetched certificate",
        Response::PutCert => "put acknowledgement",
        Response::Error { .. } => "error",
        Response::Overloaded { .. } => "overloaded",
        Response::WrongShard { .. } => "wrong-shard redirect",
        Response::ShardDown { .. } => "shard-down notice",
    };
    ClientError::Unexpected { got: got.into() }
}
