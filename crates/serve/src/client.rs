//! The FLMC-RPC client: a blocking connection speaking [`crate::frame`]
//! frames, with typed convenience wrappers for every request kind.
//!
//! The same type backs the `flm-client` binary, the load generator, and the
//! embedded-server tests — there is exactly one implementation of "send a
//! request, read the matching response".

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use flm_graph::Graph;
use flm_sim::RunPolicy;

use crate::frame::{read_frame, write_frame, FrameReadError, DEFAULT_MAX_BODY_BYTES};
use crate::rpc::{ErrorCode, RefuteParams, Request, Response, StatsReport, Verdict};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes were not a valid frame or response.
    Protocol(String),
    /// The server answered with a typed error frame.
    ErrorResponse {
        /// The server's failure classification.
        code: ErrorCode,
        /// The server's explanation.
        detail: String,
    },
    /// The server shed this connection: it is saturated.
    Overloaded {
        /// Connections waiting in the accept queue when the server shed.
        queued: u32,
        /// The server's explanation.
        detail: String,
    },
    /// The server answered with a well-formed response of the wrong kind.
    Unexpected {
        /// A description of what arrived.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::ErrorResponse { code, detail } => {
                write!(f, "server error ({code}): {detail}")
            }
            ClientError::Overloaded { queued, detail } => {
                write!(f, "server overloaded ({queued} queued): {detail}")
            }
            ClientError::Unexpected { got } => write!(f, "unexpected response: {got}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected FLMC-RPC client.
pub struct Client {
    stream: TcpStream,
    max_body_bytes: usize,
}

impl Client {
    /// Connects to an `flm-serve` address.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
        })
    }

    /// Sets a read timeout for responses; `None` (the default) blocks until
    /// the server answers — refutations on cold caches take as long as they
    /// take.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends a request and reads the server's single response frame.
    /// [`Response::Error`] and [`Response::Overloaded`] are returned as
    /// values here; the typed wrappers below turn them into
    /// [`ClientError`]s.
    ///
    /// # Errors
    ///
    /// Transport failures and malformed response frames.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let frame = read_frame(&mut self.stream, self.max_body_bytes)?;
        Response::from_frame(&frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, detail } => Err(ClientError::ErrorResponse { code, detail }),
            Response::Overloaded { queued, detail } => {
                Err(ClientError::Overloaded { queued, detail })
            }
            other => Ok(other),
        }
    }

    /// Round-trips a ping, returning the echoed payload.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn ping(&mut self, payload: &[u8], hold_ms: u32) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Ping {
            payload: payload.to_vec(),
            hold_ms,
        })? {
            Response::Pong { payload } => Ok(payload),
            other => Err(unexpected(&other)),
        }
    }

    /// Requests a refutation, returning portable `FLMC` certificate bytes.
    ///
    /// # Errors
    ///
    /// Transport failures, typed server errors (unknown theorem,
    /// unresolvable protocol, refuter declined), and overload shedding.
    pub fn refute(
        &mut self,
        theorem: &str,
        protocol: Option<&str>,
        graph: Option<&Graph>,
        f: u32,
        policy: Option<RunPolicy>,
    ) -> Result<Vec<u8>, ClientError> {
        match self.expect(&Request::Refute(RefuteParams {
            theorem: theorem.into(),
            protocol: protocol.map(str::to_owned),
            graph: graph.cloned(),
            f,
            policy,
        }))? {
            Response::Certificate { bytes } => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to re-verify a certificate.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn verify(&mut self, cert: &[u8]) -> Result<(Verdict, String), ClientError> {
        match self.expect(&Request::Verify {
            cert: cert.to_vec(),
        })? {
            Response::Verify { verdict, detail } => Ok((verdict, detail)),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs the full audit path server-side, returning `(exit_code, stdout,
    /// stderr)` exactly as the local `flm-audit` binary would produce them.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn audit(&mut self, cert: &[u8]) -> Result<(u8, String, String), ClientError> {
        match self.expect(&Request::Audit {
            cert: cert.to_vec(),
        })? {
            Response::Audit {
                exit_code,
                report,
                diagnostics,
            } => Ok((exit_code, report, diagnostics)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's counters and cache statistics.
    ///
    /// # Errors
    ///
    /// Transport failures and typed server errors.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    let got = match response {
        Response::Pong { .. } => "pong",
        Response::Certificate { .. } => "certificate",
        Response::Verify { .. } => "verify result",
        Response::Audit { .. } => "audit result",
        Response::Stats(_) => "stats",
        Response::Error { .. } => "error",
        Response::Overloaded { .. } => "overloaded",
    };
    ClientError::Unexpected { got: got.into() }
}
