//! The `flm-router` front: a second reactor on [`crate::sys`] that fans a
//! sharded cluster out behind one address.
//!
//! # Architecture
//!
//! One nonblocking thread owns the front listener, every front connection,
//! and one persistent pipelined connection per shard. A front request is
//! parsed just enough to route: keyed requests (Refute by
//! [`crate::shard::routing_key`], Verify/Audit by certificate fingerprint,
//! FetchCert/PutCert by their key bytes) are forwarded verbatim to the
//! owning shard's connection; Ping is answered locally (the router echoes
//! with zero hold — liveness of the router, not of a shard); Stats fans
//! out to every shard and aggregates the answers into one
//! [`Response::ClusterStats`] view alongside the router's own counters.
//!
//! Because each shard answers its connection in strict request order (the
//! serve plane's pipelining contract), a per-backend FIFO of pending
//! entries is all the correlation the router needs: the k-th response
//! frame on a backend belongs to the k-th unanswered request the router
//! wrote to it. Front responses leave in front-request order through the
//! same slot discipline the server uses.
//!
//! # Failure semantics
//!
//! A backend that refuses connections or drops mid-stream is marked down:
//! every request pending on it — and every new request routed to it — is
//! answered with a typed [`Response::ShardDown`] naming the shard, so one
//! dead shard degrades exactly its key range while every other range keeps
//! serving warm. The router retries the connect on a timer (bounded
//! blocking connect, so a dead shard costs milliseconds per sweep, not a
//! wedged reactor) and the range heals the moment the shard is back.
//!
//! # Shedding
//!
//! Two levels, both answered and typed, mirroring the server: a front
//! accept past `max_connections` is answered [`Response::Overloaded`] and
//! closed; a request for a backend whose pending queue is at
//! `backend_pending_cap` is answered `Overloaded` with the connection kept
//! open — per-shard backpressure, not per-router.

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::{Frame, FrameError, DEFAULT_MAX_BODY_BYTES};
use crate::rpc::{
    ClusterStatsReport, ErrorCode, Request, Response, RouterStatsReport, ShardStatus,
};
use crate::shard::{self, ShardMap};
use crate::sys::{self, Interest, Poller};

/// Router configuration. [`RouterConfig::new`] sizes every knob for the
/// loopback quickstart.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Front bind address, e.g. `127.0.0.1:7415` or `127.0.0.1:0`.
    pub addr: String,
    /// The shard topology — must be byte-identical to what every shard was
    /// started with, or ownership checks will disagree.
    pub shards: ShardMap,
    /// Frame-body byte cap on both front and backend frames.
    pub max_body_bytes: usize,
    /// Front connections held at once; accepts beyond this are answered
    /// [`Response::Overloaded`] and closed.
    pub max_connections: usize,
    /// Unanswered pipelined requests one front connection may have in
    /// flight before the router stops reading it.
    pub max_pipelined: usize,
    /// Unanswered requests one backend may carry before further requests
    /// for that shard are shed with [`Response::Overloaded`].
    pub backend_pending_cap: usize,
    /// How often a down backend's connect is retried.
    pub reconnect_interval: Duration,
    /// Idle front connections past this are closed.
    pub idle_timeout: Duration,
}

impl RouterConfig {
    /// A quickstart configuration fronting `shards`.
    pub fn new(addr: impl Into<String>, shards: ShardMap) -> RouterConfig {
        RouterConfig {
            addr: addr.into(),
            shards,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            max_connections: 2048,
            max_pipelined: 32,
            backend_pending_cap: 256,
            reconnect_interval: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(10),
        }
    }
}

/// Router counters, shared with the handle for observability.
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    requests_routed: AtomicU64,
    requests_local: AtomicU64,
    requests_shed: AtomicU64,
    responses_error: AtomicU64,
    malformed_frames: AtomicU64,
    shard_down_answers: AtomicU64,
    backend_reconnects: AtomicU64,
}

/// Per-shard observability shared with the handle.
struct ShardGauge {
    routed: AtomicU64,
    up: AtomicBool,
}

struct Shared {
    config: RouterConfig,
    counters: Counters,
    gauges: Vec<ShardGauge>,
    shutdown: AtomicBool,
    waker: sys::Waker,
}

impl Shared {
    fn snapshot(&self) -> RouterStatsReport {
        let c = &self.counters;
        RouterStatsReport {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_shed: c.connections_shed.load(Ordering::Relaxed),
            requests_routed: c.requests_routed.load(Ordering::Relaxed),
            requests_local: c.requests_local.load(Ordering::Relaxed),
            requests_shed: c.requests_shed.load(Ordering::Relaxed),
            responses_error: c.responses_error.load(Ordering::Relaxed),
            malformed_frames: c.malformed_frames.load(Ordering::Relaxed),
            shard_down_answers: c.shard_down_answers.load(Ordering::Relaxed),
            backend_reconnects: c.backend_reconnects.load(Ordering::Relaxed),
        }
    }
}

/// A running router. Like [`crate::server::Server`]: `shutdown` for a
/// clean join, `wait` to park a binary on it.
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the front listener, connects to every reachable shard, and
    /// spawns the reactor. Shards that are not yet up are fine — their
    /// ranges answer [`Response::ShardDown`] until the reconnect sweep
    /// finds them.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation failures only; backend connects
    /// are retried, never fatal.
    pub fn start(config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let (waker, wake_rx) = sys::wake_channel()?;
        poller.register(listener.as_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.as_fd(), TOKEN_WAKER, Interest::READABLE)?;
        let gauges = (0..config.shards.count())
            .map(|_| ShardGauge {
                routed: AtomicU64::new(0),
                up: AtomicBool::new(false),
            })
            .collect();
        let shared = Arc::new(Shared {
            config,
            counters: Counters::default(),
            gauges,
            shutdown: AtomicBool::new(false),
            waker,
        });
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || Reactor::new(listener, wake_rx, poller, shared).run())
        };
        Ok(Router {
            local_addr,
            shared,
            reactor: Some(reactor),
        })
    }

    /// The bound front address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time copy of the router's own counters.
    pub fn stats(&self) -> RouterStatsReport {
        self.shared.snapshot()
    }

    /// Shards the router currently holds a live connection to.
    pub fn shards_up(&self) -> u32 {
        self.shared
            .gauges
            .iter()
            .filter(|g| g.up.load(Ordering::Relaxed))
            .count() as u32
    }

    /// Blocks until shutdown; the `flm-router` binary parks here.
    pub fn wait(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }

    /// Stops accepting, flushes what can be flushed, and joins the reactor.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
/// Backend tokens are fixed at `2..2 + shard_count`; front connection
/// tokens start above them.
const FIRST_BACKEND_TOKEN: u64 = 2;

/// Bounded blocking connect for backends: a dead shard costs at most this
/// per reconnect attempt, on the reactor thread by design (the sweep runs
/// at 1 Hz, so worst case is `250ms × dead shards` per second).
const BACKEND_CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// See `server::DISCARD_BUDGET` — same FIN-not-RST close discipline.
const DISCARD_BUDGET: usize = 64 * 1024;

/// One front request awaiting its response bytes, in pipeline order.
struct Slot {
    seq: u64,
    response: Option<Vec<u8>>,
}

/// Per-front-connection state machine (the server's `Conn`, minus the
/// worker bookkeeping).
struct FrontConn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    inflight: VecDeque<Slot>,
    next_seq: u64,
    interest: Interest,
    eof: bool,
    closing: bool,
    discarding: usize,
    last_activity: Instant,
}

impl FrontConn {
    fn new(stream: TcpStream, now: Instant) -> FrontConn {
        FrontConn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            inflight: VecDeque::new(),
            next_seq: 0,
            interest: Interest::READABLE,
            eof: false,
            closing: false,
            discarding: 0,
            last_activity: now,
        }
    }

    fn idle(&self) -> bool {
        self.inflight.is_empty() && self.write_buf.is_empty()
    }

    /// True while any slot waits on a backend (or a stats aggregation).
    fn backend_pending(&self) -> bool {
        self.inflight.iter().any(|s| s.response.is_none())
    }
}

/// Who is waiting for the next response frame on a backend. FIFO per
/// backend is sound because shards answer in strict request order.
enum Pending {
    /// A forwarded front request: the response frame passes through
    /// verbatim into this front slot.
    Front { conn: u64, seq: u64 },
    /// One leg of a Stats fan-out.
    Stats { agg: u64 },
}

/// One shard's connection (or the absence of one).
struct Backend {
    shard: u32,
    stream: Option<TcpStream>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    pending: VecDeque<Pending>,
    interest: Interest,
    last_attempt: Option<Instant>,
}

impl Backend {
    fn token(&self) -> u64 {
        FIRST_BACKEND_TOKEN + u64::from(self.shard)
    }
}

/// A Stats fan-out in flight: the front slot it answers, the router's own
/// report (snapshotted at fan-out time), and the per-shard rows being
/// filled as answers arrive.
struct StatsAgg {
    conn: u64,
    seq: u64,
    router: RouterStatsReport,
    shards: Vec<Option<ShardStatus>>,
    outstanding: usize,
}

struct Reactor {
    listener: TcpListener,
    wake_rx: std::os::unix::net::UnixStream,
    poller: Poller,
    shared: Arc<Shared>,
    fronts: HashMap<u64, FrontConn>,
    backends: Vec<Backend>,
    aggs: HashMap<u64, StatsAgg>,
    next_front_token: u64,
    next_agg: u64,
    accepting: bool,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        wake_rx: std::os::unix::net::UnixStream,
        poller: Poller,
        shared: Arc<Shared>,
    ) -> Reactor {
        let count = shared.config.shards.count();
        let backends = (0..count)
            .map(|shard| Backend {
                shard,
                stream: None,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                pending: VecDeque::new(),
                interest: Interest::READABLE,
                last_attempt: None,
            })
            .collect();
        Reactor {
            listener,
            wake_rx,
            poller,
            shared,
            fronts: HashMap::new(),
            backends,
            aggs: HashMap::new(),
            next_front_token: FIRST_BACKEND_TOKEN + u64::from(count),
            next_agg: 0,
            accepting: true,
        }
    }

    fn run(mut self) {
        // First connect pass before serving: a cluster whose shards are
        // already up routes from the first request.
        for shard in 0..self.backends.len() as u32 {
            self.try_connect(shard);
        }
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        let mut shutdown_at: Option<Instant> = None;
        loop {
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(250)))
                .is_err()
            {
                continue;
            }
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if shutting_down && self.accepting {
                let _ = self.poller.deregister(self.listener.as_fd());
                self.accepting = false;
                for conn in self.fronts.values_mut() {
                    conn.closing = true;
                }
                shutdown_at = Some(Instant::now());
            }
            let backend_count = self.backends.len() as u64;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => sys::drain_wakes(&self.wake_rx),
                    t if t < FIRST_BACKEND_TOKEN + backend_count => {
                        self.backend_event((t - FIRST_BACKEND_TOKEN) as u32, ev.writable);
                    }
                    t => self.front_event(t, ev.readable, ev.writable, ev.hangup),
                }
            }
            let now = Instant::now();
            if now.duration_since(last_sweep) >= Duration::from_secs(1) {
                last_sweep = now;
                self.sweep(now);
            }
            if shutting_down {
                let tokens: Vec<u64> = self
                    .fronts
                    .iter()
                    .filter(|(_, c)| c.idle())
                    .map(|(&t, _)| t)
                    .collect();
                for token in tokens {
                    self.close_front(token);
                }
                let deadline_passed =
                    shutdown_at.is_some_and(|t| now.duration_since(t) > Duration::from_secs(5));
                if self.fronts.is_empty() || deadline_passed {
                    return;
                }
            }
        }
    }

    // ---- backends ----------------------------------------------------

    /// Attempts one bounded connect to a down backend.
    fn try_connect(&mut self, shard: u32) {
        let addr = self.shared.config.shards.addr(shard).to_owned();
        let backend = &mut self.backends[shard as usize];
        if backend.stream.is_some() {
            return;
        }
        backend.last_attempt = Some(Instant::now());
        let Some(sockaddr) = resolve_first(&addr) else {
            return;
        };
        let Ok(stream) = TcpStream::connect_timeout(&sockaddr, BACKEND_CONNECT_TIMEOUT) else {
            return;
        };
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let token = backend.token();
        if self
            .poller
            .register(stream.as_fd(), token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        backend.stream = Some(stream);
        backend.read_buf.clear();
        backend.write_buf.clear();
        backend.interest = Interest::READABLE;
        self.shared
            .counters
            .backend_reconnects
            .fetch_add(1, Ordering::Relaxed);
        self.shared.gauges[shard as usize]
            .up
            .store(true, Ordering::Relaxed);
    }

    /// Tears a backend down and answers everything pending on it: forwarded
    /// requests become typed `ShardDown`, stats legs report the shard down.
    fn fail_backend(&mut self, shard: u32, why: &str) {
        let backend = &mut self.backends[shard as usize];
        if let Some(stream) = backend.stream.take() {
            let _ = self.poller.deregister(stream.as_fd());
        }
        backend.read_buf.clear();
        backend.write_buf.clear();
        backend.last_attempt = Some(Instant::now());
        let pending = std::mem::take(&mut backend.pending);
        self.shared.gauges[shard as usize]
            .up
            .store(false, Ordering::Relaxed);
        let detail = format!("shard {shard} connection failed: {why}");
        for entry in pending {
            match entry {
                Pending::Front { conn, seq } => {
                    self.shared
                        .counters
                        .shard_down_answers
                        .fetch_add(1, Ordering::Relaxed);
                    let response = Response::ShardDown {
                        shard,
                        detail: detail.clone(),
                    };
                    self.fill_front_slot(conn, seq, &response);
                    self.advance_front(conn);
                }
                Pending::Stats { agg } => self.stats_leg_down(agg, shard),
            }
        }
    }

    fn backend_event(&mut self, shard: u32, writable: bool) {
        if self.backends[shard as usize].stream.is_none() {
            return;
        }
        if writable && !self.flush_backend(shard) {
            return;
        }
        self.backend_readable(shard);
    }

    fn backend_readable(&mut self, shard: u32) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let backend = &mut self.backends[shard as usize];
            let Some(stream) = backend.stream.as_mut() else {
                return;
            };
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.fail_backend(shard, "peer closed");
                    return;
                }
                Ok(n) => {
                    backend.read_buf.extend_from_slice(&chunk[..n]);
                    if !self.parse_backend(shard) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let why = e.to_string();
                    self.fail_backend(shard, &why);
                    return;
                }
            }
        }
        self.update_backend_interest(shard);
    }

    /// Parses complete response frames off a backend, pairing each with the
    /// front of its FIFO. Returns false when the backend was failed.
    fn parse_backend(&mut self, shard: u32) -> bool {
        let max_body = self.shared.config.max_body_bytes;
        let mut consumed = 0;
        loop {
            let backend = &mut self.backends[shard as usize];
            match Frame::decode(&backend.read_buf[consumed..], max_body) {
                Ok((frame, n)) => {
                    consumed += n;
                    let Some(entry) = backend.pending.pop_front() else {
                        // A response with no matching request: the backend
                        // broke the pipelining contract. Drop it.
                        self.fail_backend(shard, "unsolicited response frame");
                        return false;
                    };
                    match entry {
                        Pending::Front { conn, seq } => {
                            // Pass-through: the shard's bytes are the
                            // answer, re-encoded verbatim.
                            if let Ok(bytes) = frame.encode() {
                                self.fill_front_slot_bytes(conn, seq, bytes);
                            }
                            self.advance_front(conn);
                        }
                        Pending::Stats { agg } => {
                            let report = match Response::from_frame(&frame) {
                                Ok(Response::Stats(report)) => Some(report),
                                _ => None,
                            };
                            self.stats_leg_answered(agg, shard, report);
                        }
                    }
                }
                Err(FrameError::Truncated) => break,
                Err(_) => {
                    self.fail_backend(shard, "malformed response frame");
                    return false;
                }
            }
        }
        self.backends[shard as usize].read_buf.drain(..consumed);
        true
    }

    /// Returns false when the backend was failed.
    fn flush_backend(&mut self, shard: u32) -> bool {
        loop {
            let backend = &mut self.backends[shard as usize];
            let Some(stream) = backend.stream.as_mut() else {
                return false;
            };
            if backend.write_buf.is_empty() {
                break;
            }
            match stream.write(&backend.write_buf) {
                Ok(0) => {
                    self.fail_backend(shard, "write returned 0");
                    return false;
                }
                Ok(n) => {
                    backend.write_buf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let why = e.to_string();
                    self.fail_backend(shard, &why);
                    return false;
                }
            }
        }
        self.update_backend_interest(shard);
        true
    }

    fn update_backend_interest(&mut self, shard: u32) {
        let backend = &mut self.backends[shard as usize];
        let Some(stream) = &backend.stream else {
            return;
        };
        let wanted = Interest {
            readable: true,
            writable: !backend.write_buf.is_empty(),
        };
        if wanted != backend.interest {
            if self
                .poller
                .modify(stream.as_fd(), backend.token(), wanted)
                .is_ok()
            {
                backend.interest = wanted;
            } else {
                self.fail_backend(shard, "poller modify failed");
            }
        }
    }

    /// Queues a request on a backend (connecting lazily if the retry timer
    /// allows) and records who is waiting. Returns false when the shard is
    /// down or at its pending cap — the caller answers typed.
    fn forward(&mut self, shard: u32, frame_bytes: &[u8], entry: Pending) -> ForwardOutcome {
        if self.backends[shard as usize].stream.is_none() {
            let due = self.backends[shard as usize].last_attempt.is_none_or(|t| {
                Instant::now().duration_since(t) >= self.shared.config.reconnect_interval
            });
            if due {
                self.try_connect(shard);
            }
        }
        let cap = self.shared.config.backend_pending_cap;
        let backend = &mut self.backends[shard as usize];
        if backend.stream.is_none() {
            return ForwardOutcome::Down;
        }
        if backend.pending.len() >= cap {
            return ForwardOutcome::Saturated;
        }
        backend.write_buf.extend_from_slice(frame_bytes);
        backend.pending.push_back(entry);
        self.shared.gauges[shard as usize]
            .routed
            .fetch_add(1, Ordering::Relaxed);
        if !self.flush_backend(shard) {
            // The write tore the connection down; pending (including this
            // entry) was already answered by fail_backend.
            return ForwardOutcome::Sent;
        }
        ForwardOutcome::Sent
    }

    // ---- stats fan-out ------------------------------------------------

    /// Starts a Stats aggregation for one front slot: snapshot the router,
    /// fan a Stats request out to every shard, mark down shards instantly.
    fn start_stats(&mut self, conn: u64, seq: u64) {
        let count = self.shared.config.shards.count();
        let agg_id = self.next_agg;
        self.next_agg += 1;
        self.aggs.insert(
            agg_id,
            StatsAgg {
                conn,
                seq,
                router: self.shared.snapshot(),
                shards: (0..count).map(|_| None).collect(),
                outstanding: count as usize,
            },
        );
        let stats_frame = Request::Stats
            .to_frame()
            .encode()
            .expect("a Stats frame always encodes");
        for shard in 0..count {
            match self.forward(shard, &stats_frame, Pending::Stats { agg: agg_id }) {
                ForwardOutcome::Sent => {}
                ForwardOutcome::Down | ForwardOutcome::Saturated => {
                    self.stats_leg_down(agg_id, shard);
                }
            }
        }
        // All shards down: the aggregation may already be complete.
        self.finish_stats_if_done(agg_id);
    }

    fn stats_leg_answered(
        &mut self,
        agg_id: u64,
        shard: u32,
        report: Option<crate::rpc::StatsReport>,
    ) {
        let routed = self.shared.gauges[shard as usize]
            .routed
            .load(Ordering::Relaxed);
        let addr = self.shared.config.shards.addr(shard).to_owned();
        if let Some(agg) = self.aggs.get_mut(&agg_id) {
            agg.shards[shard as usize] = Some(ShardStatus {
                shard,
                addr,
                up: report.is_some(),
                routed,
                report,
            });
            agg.outstanding -= 1;
        }
        self.finish_stats_if_done(agg_id);
    }

    fn stats_leg_down(&mut self, agg_id: u64, shard: u32) {
        self.stats_leg_answered(agg_id, shard, None);
    }

    fn finish_stats_if_done(&mut self, agg_id: u64) {
        let done = self
            .aggs
            .get(&agg_id)
            .is_some_and(|agg| agg.outstanding == 0);
        if !done {
            return;
        }
        let Some(agg) = self.aggs.remove(&agg_id) else {
            return;
        };
        let report = ClusterStatsReport {
            router: agg.router,
            shards: agg.shards.into_iter().flatten().collect(),
        };
        let (conn, seq) = (agg.conn, agg.seq);
        self.fill_front_slot(conn, seq, &Response::ClusterStats(report));
        self.advance_front(conn);
    }

    // ---- fronts -------------------------------------------------------

    fn accept_ready(&mut self) {
        while self.accepting {
            let (stream, _) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let _ = stream.set_nodelay(true);
            if self.fronts.len() >= self.shared.config.max_connections {
                self.shed_front(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_front_token;
            self.next_front_token += 1;
            if self
                .poller
                .register(stream.as_fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.shared
                .counters
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            self.fronts
                .insert(token, FrontConn::new(stream, Instant::now()));
        }
    }

    fn shed_front(&self, mut stream: TcpStream) {
        self.shared
            .counters
            .connections_shed
            .fetch_add(1, Ordering::Relaxed);
        let response = Response::Overloaded {
            queued: self.fronts.len() as u32,
            detail: format!(
                "router serving {} connections (cap {}); retry later",
                self.fronts.len(),
                self.shared.config.max_connections
            ),
        };
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if let Ok(bytes) = response.to_frame().encode() {
            let _ = stream.write_all(&bytes);
        }
    }

    fn front_event(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        if !self.fronts.contains_key(&token) {
            return;
        }
        if hangup {
            self.close_front(token);
            return;
        }
        if writable && !self.flush_front(token) {
            return;
        }
        if readable {
            self.front_readable(token);
        }
    }

    fn front_readable(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        let cap = self.shared.config.max_pipelined;
        loop {
            let Some(conn) = self.fronts.get_mut(&token) else {
                return;
            };
            let want_read =
                conn.discarding > 0 || (!conn.eof && !conn.closing && conn.inflight.len() < cap);
            if !want_read {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    conn.discarding = 0;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if conn.discarding > 0 {
                        conn.discarding = conn.discarding.saturating_sub(n);
                        continue;
                    }
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    if !self.parse_front(token) {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_front(token);
                    return;
                }
            }
        }
        self.advance_front(token);
    }

    fn advance_front(&mut self, token: u64) {
        if !self.parse_front(token) {
            return;
        }
        let cap = self.shared.config.max_pipelined;
        let mut close_now = false;
        let mut leftover_garbage = false;
        if let Some(conn) = self.fronts.get_mut(&token) {
            if conn.eof && !conn.closing {
                if conn.read_buf.is_empty() {
                    if conn.idle() {
                        close_now = true;
                    } else {
                        conn.closing = true;
                    }
                } else if conn.inflight.len() < cap {
                    leftover_garbage = true;
                }
            }
        } else {
            return;
        }
        if close_now {
            self.close_front(token);
            return;
        }
        if leftover_garbage {
            self.shared
                .counters
                .malformed_frames
                .fetch_add(1, Ordering::Relaxed);
            let detail = FrameError::Truncated.to_string();
            self.queue_front_error(token, ErrorCode::MalformedFrame, &detail);
            if let Some(conn) = self.fronts.get_mut(&token) {
                conn.read_buf.clear();
                conn.closing = true;
            }
        }
        if !self.flush_front(token) {
            return;
        }
        self.update_front_interest(token);
    }

    fn parse_front(&mut self, token: u64) -> bool {
        let mut consumed = 0;
        loop {
            let Some(conn) = self.fronts.get_mut(&token) else {
                return false;
            };
            if conn.closing || conn.inflight.len() >= self.shared.config.max_pipelined {
                break;
            }
            let max_body = self.shared.config.max_body_bytes;
            match Frame::decode(&conn.read_buf[consumed..], max_body) {
                Ok((frame, n)) => {
                    consumed += n;
                    conn.last_activity = Instant::now();
                    self.route_frame(token, &frame);
                }
                Err(FrameError::Truncated) => break,
                Err(e) => {
                    self.shared
                        .counters
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                    let detail = e.to_string();
                    self.queue_front_error(token, ErrorCode::MalformedFrame, &detail);
                    if let Some(conn) = self.fronts.get_mut(&token) {
                        conn.read_buf.clear();
                        conn.closing = true;
                        conn.discarding = DISCARD_BUDGET;
                    }
                    return true;
                }
            }
        }
        if let Some(conn) = self.fronts.get_mut(&token) {
            conn.read_buf.drain(..consumed);
        }
        true
    }

    /// Routes one well-framed front request: decode just enough to pick the
    /// shard, then forward the frame bytes verbatim — the shard's encoder
    /// and the client's agree because they are the same code.
    fn route_frame(&mut self, token: u64, frame: &Frame) {
        let Some(conn) = self.fronts.get_mut(&token) else {
            return;
        };
        let request = match Request::from_frame(frame) {
            Ok(request) => request,
            Err(e) => {
                self.shared
                    .counters
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                let detail = e.to_string();
                self.queue_front_error(token, ErrorCode::MalformedFrame, &detail);
                return;
            }
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight.push_back(Slot {
            seq,
            response: None,
        });
        let shared = Arc::clone(&self.shared);
        let c = &shared.counters;
        let count = shared.config.shards.count();
        let shard = match &request {
            Request::Ping { payload, .. } => {
                // The router answers pings itself, with zero hold: a pong
                // through the router proves the router, not a shard.
                c.requests_local.fetch_add(1, Ordering::Relaxed);
                let response = Response::Pong {
                    payload: payload.clone(),
                };
                self.fill_front_slot(token, seq, &response);
                return;
            }
            Request::Stats => {
                c.requests_local.fetch_add(1, Ordering::Relaxed);
                self.start_stats(token, seq);
                return;
            }
            Request::Refute(params) => match shard::routing_key(params) {
                Ok(key) => shard::owner_for_count(count, key.fingerprint()),
                Err(e) => {
                    let detail = e.to_string();
                    self.queue_front_response(
                        token,
                        seq,
                        &Response::Error {
                            code: ErrorCode::BadRequest,
                            detail,
                        },
                    );
                    return;
                }
            },
            // Any shard can verify or audit; fingerprint-of-bytes routing
            // spreads the CPU deterministically.
            Request::Verify { cert } | Request::Audit { cert } => {
                shard::owner_for_count(count, flm_sim::runcache::fingerprint(cert))
            }
            Request::FetchCert { key } => {
                shard::owner_for_count(count, flm_sim::runcache::fingerprint(key))
            }
            Request::PutCert { key, .. } => {
                shard::owner_for_count(count, flm_sim::runcache::fingerprint(key))
            }
        };
        let Ok(bytes) = frame.encode() else {
            self.queue_front_response(
                token,
                seq,
                &Response::Error {
                    code: ErrorCode::Internal,
                    detail: "request frame failed to re-encode".into(),
                },
            );
            return;
        };
        match self.forward(shard, &bytes, Pending::Front { conn: token, seq }) {
            ForwardOutcome::Sent => {
                c.requests_routed.fetch_add(1, Ordering::Relaxed);
            }
            ForwardOutcome::Down => {
                c.shard_down_answers.fetch_add(1, Ordering::Relaxed);
                let response = Response::ShardDown {
                    shard,
                    detail: format!(
                        "shard {shard} at {} is unreachable; its key range is degraded",
                        self.shared.config.shards.addr(shard)
                    ),
                };
                self.queue_front_response(token, seq, &response);
            }
            ForwardOutcome::Saturated => {
                c.requests_shed.fetch_add(1, Ordering::Relaxed);
                let pending = self.backends[shard as usize].pending.len() as u32;
                let response = Response::Overloaded {
                    queued: pending,
                    detail: format!(
                        "shard {shard} has {pending} requests in flight (cap {}); retry later",
                        self.shared.config.backend_pending_cap
                    ),
                };
                self.queue_front_response(token, seq, &response);
            }
        }
    }

    /// Fills an already-allocated slot and settles the connection's write
    /// side (for answers produced while routing, where the slot exists but
    /// no backend will ever fill it).
    fn queue_front_response(&mut self, token: u64, seq: u64, response: &Response) {
        self.fill_front_slot(token, seq, response);
        if self.flush_front(token) {
            self.update_front_interest(token);
        }
    }

    /// Allocates a fresh slot for a typed error (framing violations, where
    /// no request slot exists yet).
    fn queue_front_error(&mut self, token: u64, code: ErrorCode, detail: &str) {
        let Some(conn) = self.fronts.get_mut(&token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.inflight.push_back(Slot {
            seq,
            response: None,
        });
        let response = Response::Error {
            code,
            detail: detail.into(),
        };
        self.fill_front_slot(token, seq, &response);
    }

    fn fill_front_slot(&mut self, token: u64, seq: u64, response: &Response) {
        if matches!(response, Response::Error { .. }) {
            self.shared
                .counters
                .responses_error
                .fetch_add(1, Ordering::Relaxed);
        }
        let Ok(bytes) = response.to_frame().encode() else {
            self.close_front(token);
            return;
        };
        self.fill_front_slot_bytes(token, seq, bytes);
    }

    fn fill_front_slot_bytes(&mut self, token: u64, seq: u64, bytes: Vec<u8>) {
        let Some(conn) = self.fronts.get_mut(&token) else {
            return;
        };
        if let Some(slot) = conn.inflight.iter_mut().find(|s| s.seq == seq) {
            slot.response = Some(bytes);
        }
        while let Some(front) = conn.inflight.front_mut() {
            match front.response.take() {
                Some(bytes) => {
                    conn.write_buf.extend_from_slice(&bytes);
                    conn.inflight.pop_front();
                }
                None => break,
            }
        }
    }

    fn flush_front(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.fronts.get_mut(&token) else {
                return false;
            };
            if conn.write_buf.is_empty() {
                break;
            }
            match conn.stream.write(&conn.write_buf) {
                Ok(0) => {
                    self.close_front(token);
                    return false;
                }
                Ok(n) => {
                    conn.write_buf.drain(..n);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_front(token);
                    return false;
                }
            }
        }
        let close_now = self
            .fronts
            .get(&token)
            .is_some_and(|c| c.closing && c.idle() && c.discarding == 0);
        if close_now {
            self.close_front(token);
            return false;
        }
        true
    }

    fn update_front_interest(&mut self, token: u64) {
        let cap = self.shared.config.max_pipelined;
        let Some(conn) = self.fronts.get_mut(&token) else {
            return;
        };
        let wanted = Interest {
            readable: conn.discarding > 0
                || (!conn.eof && !conn.closing && conn.inflight.len() < cap),
            writable: !conn.write_buf.is_empty(),
        };
        let mut modify_failed = false;
        if wanted != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_fd(), token, wanted)
                .is_ok()
            {
                conn.interest = wanted;
            } else {
                modify_failed = true;
            }
        }
        if modify_failed {
            self.close_front(token);
        }
    }

    /// Periodic work: reconnect down backends, close idle fronts.
    fn sweep(&mut self, now: Instant) {
        for shard in 0..self.backends.len() as u32 {
            let backend = &self.backends[shard as usize];
            if backend.stream.is_none() {
                let due = backend
                    .last_attempt
                    .is_none_or(|t| now.duration_since(t) >= self.shared.config.reconnect_interval);
                if due {
                    self.try_connect(shard);
                }
            }
        }
        let timeout = self.shared.config.idle_timeout;
        let stale: Vec<u64> = self
            .fronts
            .iter()
            .filter(|(_, c)| !c.backend_pending() && now.duration_since(c.last_activity) > timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.close_front(token);
        }
    }

    /// Closes a front connection. Backend pending entries pointing at it
    /// become answers to a ghost: `fill_front_slot` no-ops on a missing
    /// token, which keeps backend FIFOs correctly aligned.
    fn close_front(&mut self, token: u64) {
        if let Some(conn) = self.fronts.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_fd());
        }
        // Drop any stats aggregation whose asker is gone: answer legs
        // already in backend FIFOs will find the agg missing and no-op.
        self.aggs.retain(|_, agg| agg.conn != token);
    }
}

/// What [`Reactor::forward`] did with a request.
enum ForwardOutcome {
    /// Queued on a live backend (or the backend failed mid-write, in which
    /// case the entry was already answered `ShardDown`).
    Sent,
    /// The shard is down and the retry timer says not yet.
    Down,
    /// The shard's pending queue is at capacity.
    Saturated,
}

fn resolve_first(addr: &str) -> Option<SocketAddr> {
    use std::net::ToSocketAddrs as _;
    addr.to_socket_addrs().ok()?.next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(addrs: &[&str]) -> ShardMap {
        ShardMap::new(addrs.iter().map(|s| (*s).to_owned()).collect()).unwrap()
    }

    #[test]
    fn router_starts_with_no_shards_up_and_answers_pings() {
        // Point at ports nothing listens on: the router must still bind,
        // answer pings locally, and report zero shards up.
        let config = RouterConfig::new("127.0.0.1:0", map_of(&["127.0.0.1:1", "127.0.0.1:2"]));
        let router = Router::start(config).unwrap();
        let mut client = crate::client::Client::connect(router.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(client.ping(b"hello", 0).unwrap(), b"hello");
        assert_eq!(router.shards_up(), 0);
        let stats = router.stats();
        assert_eq!(stats.requests_local, 1);
        router.shutdown();
    }

    #[test]
    fn keyed_request_to_a_dead_shard_is_typed_shard_down() {
        let config = RouterConfig::new("127.0.0.1:0", map_of(&["127.0.0.1:1"]));
        let router = Router::start(config).unwrap();
        let mut client = crate::client::Client::connect(router.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match client.refute("ba-nodes", None, None, 1, None) {
            Err(crate::client::ClientError::ShardDown { shard: 0, .. }) => {}
            other => panic!("expected ShardDown, got {other:?}"),
        }
        assert_eq!(router.stats().shard_down_answers, 1);
        router.shutdown();
    }
}
