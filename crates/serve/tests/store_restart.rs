//! Cross-restart warmth: the certificate store makes warm hits survive the
//! process (here: the server instance), byte-identically — and hostile
//! bytes planted in the store directory are quarantined misses, never
//! panics and never served.

use std::fs;
use std::path::{Path, PathBuf};

use flm_serve::client::Client;
use flm_serve::server::{ServeConfig, Server};

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flm-serve-restart-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start_with_store(dir: &Path) -> Server {
    Server::start(ServeConfig {
        store_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .unwrap()
}

/// Refute, shut the server down, restart on the same store directory: the
/// second refutation is a disk-warm hit returning byte-identical
/// certificate bytes without re-simulating.
#[test]
fn restart_on_the_same_store_dir_serves_byte_identical_disk_hits() {
    let dir = temp_store_dir("warmth");

    // Cold run: simulate, serve, persist.
    let server = start_with_store(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cold = client.refute("ba-nodes", None, None, 1, None).unwrap();
    let stats = server.stats();
    assert_eq!(stats.store_misses, 1, "first query must miss the store");
    assert_eq!(stats.store_stores, 1, "fresh certificate must be persisted");
    server.shutdown();

    // The stored artifact is itself a portable FLMC file.
    let flmc_files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "flmc"))
        .collect();
    assert_eq!(flmc_files.len(), 1, "{flmc_files:?}");
    assert_eq!(fs::read(&flmc_files[0]).unwrap(), cold);

    // Restart: a brand-new server (fresh in-memory layers) over the same
    // directory. The same query must come off disk, byte-identical.
    let server = start_with_store(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let warm = client.refute("ba-nodes", None, None, 1, None).unwrap();
    assert_eq!(
        warm, cold,
        "disk-warm certificate differs from the cold run"
    );
    let stats = server.stats();
    assert_eq!(stats.store_disk_hits, 1, "stats: {stats:?}");
    assert_eq!(stats.store_misses, 0, "restart must not re-simulate");

    // Default-resolved and explicitly-default queries share the canonical
    // key, so the explicit spelling is a warm hit too.
    let explicit = client
        .refute(
            "ba-nodes",
            Some("EIG(f=1)"),
            Some(&flm_graph::builders::triangle()),
            1,
            None,
        )
        .unwrap();
    assert_eq!(explicit, cold);
    assert_eq!(server.stats().store_misses, 0);
    server.shutdown();

    let _ = fs::remove_dir_all(&dir);
}

/// Hostile store: truncated or bit-flipped FLMC files under the store dir
/// are treated as misses, quarantined for post-mortem, and transparently
/// rebuilt — the client sees correct bytes throughout.
#[test]
fn hostile_store_files_are_quarantined_and_rebuilt() {
    let dir = temp_store_dir("hostile");

    let server = start_with_store(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reference = client
        .refute("ba-connectivity", None, None, 1, None)
        .unwrap();
    server.shutdown();

    // Damage the stored certificate on disk: truncate it mid-body.
    let flmc: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "flmc"))
        .collect();
    assert_eq!(flmc.len(), 1);
    let bytes = fs::read(&flmc[0]).unwrap();
    fs::write(&flmc[0], &bytes[..bytes.len() / 2]).unwrap();

    // Restart over the damaged directory: the query must still serve the
    // correct bytes (re-simulated), the damage must be quarantined, and
    // nothing may panic.
    let server = start_with_store(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let served = client
        .refute("ba-connectivity", None, None, 1, None)
        .unwrap();
    assert_eq!(served, reference, "damaged store changed served bytes");
    let stats = server.stats();
    assert_eq!(stats.store_quarantined, 1, "stats: {stats:?}");
    assert_eq!(stats.store_misses, 1);
    assert_eq!(stats.store_stores, 1, "entry must be rebuilt");

    let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert_eq!(quarantined.len(), 2, "{quarantined:?}");

    // The rebuilt entry is a clean disk hit for the next restart.
    server.shutdown();
    let server = start_with_store(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(
        client
            .refute("ba-connectivity", None, None, 1, None)
            .unwrap(),
        reference
    );
    assert_eq!(server.stats().store_disk_hits, 1);
    server.shutdown();

    let _ = fs::remove_dir_all(&dir);
}
