//! End-to-end sharded-cluster tests: three in-process shard servers plus a
//! router, driven over real loopback TCP.
//!
//! The load-bearing assertions, in order of importance:
//!
//! 1. **Byte identity through the router** — a certificate fetched through
//!    the router is exactly the bytes the library path produces for the
//!    same query, for all seven theorem families. Sharding is a transport
//!    arrangement; it must be invisible in the bytes.
//! 2. **Deterministic routing** — the same key lands on the same shard
//!    across router restarts, because ownership is a pure function of
//!    `(shard count, key bytes)`, not of sockets or state.
//! 3. **Typed degradation** — off-owner requests answer `WrongShard` with
//!    the owner's address; a dead shard answers `ShardDown` for exactly
//!    its key range while the other ranges keep serving.
//! 4. **Rebalance ships sound certificates** — a store full of misplaced
//!    entries ends up on the owners, and every shipped certificate still
//!    audits at exit 0.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use flm_serve::audit::{audit_bytes, EXIT_VERIFIED};
use flm_serve::client::{Client, ClientError};
use flm_serve::query::{canonical_query_key, refute_to_bytes, Theorem};
use flm_serve::router::{Router, RouterConfig};
use flm_serve::server::{ServeConfig, Server, ShardRole};
use flm_serve::shard::{self, ShardMap};
use flm_serve::store;
use flm_sim::RunPolicy;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flm-shard-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves `n` loopback ports: bind ephemeral, note, drop. The tiny race
/// (something else grabbing the port before the shard rebinds) is accepted
/// for tests; the shard map needs concrete addresses before any shard is
/// up.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

/// A 3-shard cluster plus router, each shard with its own store directory.
struct Cluster {
    map: ShardMap,
    dirs: Vec<PathBuf>,
    shards: Vec<Option<Server>>,
    router: Router,
}

impl Cluster {
    fn start(tag: &str) -> Cluster {
        let ports = reserve_ports(3);
        let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
        let map = ShardMap::new(addrs).unwrap();
        let dirs: Vec<PathBuf> = (0..3).map(|i| temp_dir(&format!("{tag}-s{i}"))).collect();
        let shards = (0..3u32)
            .map(|id| Some(start_shard(&map, id, &dirs[id as usize])))
            .collect();
        let router = Router::start(RouterConfig::new("127.0.0.1:0", map.clone())).unwrap();
        Cluster {
            map,
            dirs,
            shards,
            router,
        }
    }

    fn client(&self) -> Client {
        let mut client = Client::connect(self.router.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client
    }

    fn shutdown(mut self) {
        for shard in self.shards.iter_mut().filter_map(Option::take) {
            shard.shutdown();
        }
        self.router.shutdown();
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn start_shard(map: &ShardMap, id: u32, dir: &std::path::Path) -> Server {
    Server::start(ServeConfig {
        addr: map.addr(id).to_owned(),
        workers: 2,
        store_dir: Some(dir.to_path_buf()),
        shard: Some(ShardRole {
            id,
            map: map.clone(),
        }),
        ..ServeConfig::default()
    })
    .unwrap()
}

/// The canonical default-policy store key for a family at f=1 — what the
/// shards index their stores by for the queries these tests issue.
fn default_key(theorem: Theorem) -> Vec<u8> {
    canonical_query_key(theorem, None, None, 1, &RunPolicy::default())
        .bytes()
        .to_vec()
}

#[test]
fn certificates_through_the_router_are_byte_identical_for_all_families() {
    let cluster = Cluster::start("bytes");
    let mut client = cluster.client();
    let mut owners_seen = std::collections::HashSet::new();
    for theorem in Theorem::ALL {
        let expected = refute_to_bytes(theorem, None, None, 1, RunPolicy::default()).unwrap();
        let via_router = client
            .refute(theorem.name(), None, None, 1, None)
            .unwrap_or_else(|e| panic!("{} through router: {e}", theorem.name()));
        assert_eq!(
            via_router,
            expected,
            "{} certificate differs through the router",
            theorem.name()
        );
        // And again from a *different* front connection: same bytes, and a
        // warm answer regardless of which connection asked.
        let mut second = cluster.client();
        assert_eq!(
            second.refute(theorem.name(), None, None, 1, None).unwrap(),
            expected
        );
        owners_seen.insert(cluster.map.owner_of_bytes(&default_key(theorem)));
    }
    // Sanity: the 7 families actually spread over more than one shard, or
    // this test exercises no routing at all.
    assert!(
        owners_seen.len() > 1,
        "all families landed on one shard: {owners_seen:?}"
    );
    cluster.shutdown();
}

#[test]
fn routing_is_deterministic_across_router_restarts() {
    let cluster = Cluster::start("determinism");
    // Warm one family through the first router and note who owns it.
    let theorem = Theorem::BaNodes;
    let key = default_key(theorem);
    let owner = cluster.map.owner_of_bytes(&key);
    let mut client = cluster.client();
    let bytes = client.refute(theorem.name(), None, None, 1, None).unwrap();
    let before = cluster.shards[owner as usize]
        .as_ref()
        .unwrap()
        .stats()
        .requests_refute;
    assert_eq!(before, 1, "the owner should have served the refutation");

    // A *second* router over the same map (fresh ephemeral front port —
    // addresses differ, topology bytes agree) must route the same key to
    // the same shard.
    let router2 = Router::start(RouterConfig::new("127.0.0.1:0", cluster.map.clone())).unwrap();
    let mut client2 = Client::connect(router2.local_addr()).unwrap();
    client2
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    assert_eq!(
        client2.refute(theorem.name(), None, None, 1, None).unwrap(),
        bytes
    );
    let after = cluster.shards[owner as usize]
        .as_ref()
        .unwrap()
        .stats()
        .requests_refute;
    assert_eq!(after, 2, "the same shard must own the key under router 2");
    router2.shutdown();
    cluster.shutdown();
}

#[test]
fn off_owner_requests_answer_typed_wrong_shard_with_the_owner_hint() {
    let cluster = Cluster::start("wrongshard");
    let theorem = Theorem::BaNodes;
    let key = default_key(theorem);
    let owner = cluster.map.owner_of_bytes(&key);
    let not_owner = (0..3u32).find(|&s| s != owner).unwrap();
    // Direct to a non-owner, bypassing the router.
    let mut direct = Client::connect(cluster.map.addr(not_owner)).unwrap();
    direct
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match direct.refute(theorem.name(), None, None, 1, None) {
        Err(ClientError::WrongShard {
            owner: hinted,
            addr,
        }) => {
            assert_eq!(hinted, owner);
            assert_eq!(addr, cluster.map.addr(owner));
        }
        other => panic!("expected WrongShard, got {other:?}"),
    }
    // The rejection is counted and the shard never consulted its store or
    // simulated (the run cache is process-global in this test binary, so
    // the per-server store counters are the isolation-safe signal).
    let stats = cluster.shards[not_owner as usize].as_ref().unwrap().stats();
    assert_eq!(stats.wrong_shard, 1);
    assert_eq!(stats.store_misses + stats.store_stores, 0);
    cluster.shutdown();
}

#[test]
fn killing_one_shard_degrades_only_its_key_range() {
    let mut cluster = Cluster::start("degrade");
    let mut client = cluster.client();
    // Warm every family so the survivors can answer from their stores.
    for theorem in Theorem::ALL {
        client.refute(theorem.name(), None, None, 1, None).unwrap();
    }
    // Kill one shard that owns at least one family.
    let victim = cluster.map.owner_of_bytes(&default_key(Theorem::BaNodes));
    cluster.shards[victim as usize].take().unwrap().shutdown();
    // Give the router one read against the dead backend to notice.
    std::thread::sleep(Duration::from_millis(100));

    let mut degraded = 0u32;
    let mut served = 0u32;
    let mut client = cluster.client();
    for theorem in Theorem::ALL {
        let owner = cluster.map.owner_of_bytes(&default_key(theorem));
        match client.refute(theorem.name(), None, None, 1, None) {
            Ok(bytes) => {
                assert_ne!(
                    owner,
                    victim,
                    "{} is owned by the dead shard yet served",
                    theorem.name()
                );
                let expected =
                    refute_to_bytes(theorem, None, None, 1, RunPolicy::default()).unwrap();
                assert_eq!(bytes, expected);
                served += 1;
            }
            Err(ClientError::ShardDown { shard, .. }) => {
                assert_eq!(
                    shard,
                    victim,
                    "{} answered ShardDown for the wrong shard",
                    theorem.name()
                );
                assert_eq!(owner, victim);
                degraded += 1;
            }
            Err(other) => panic!("{}: neither served nor typed-down: {other}", theorem.name()),
        }
    }
    assert!(
        degraded >= 1,
        "the victim owned no family — pick a bigger victim"
    );
    assert!(served >= 1, "every range went down, not just the victim's");

    // Restart the victim on the same address: its range heals (the router
    // reconnects on its sweep; allow a few).
    cluster.shards[victim as usize] = Some(start_shard(
        &cluster.map,
        victim,
        &cluster.dirs[victim as usize],
    ));
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let healed = loop {
        let mut probe = cluster.client();
        match probe.refute(Theorem::BaNodes.name(), None, None, 1, None) {
            Ok(bytes) => break Some(bytes),
            Err(ClientError::ShardDown { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => panic!("healing probe failed hard: {e}"),
        }
    };
    let expected = refute_to_bytes(Theorem::BaNodes, None, None, 1, RunPolicy::default()).unwrap();
    assert_eq!(
        healed.unwrap(),
        expected,
        "healed answer must be byte-identical"
    );
    cluster.shutdown();
}

#[test]
fn rebalance_ships_misplaced_certificates_that_still_audit_clean() {
    // A "previous topology" store: every family's certificate piled into
    // one directory, as if a single unsharded server had been serving.
    let legacy_dir = temp_dir("rebalance-legacy");
    let legacy = store::CertStore::open(&legacy_dir).unwrap();
    let mut expected: Vec<(Theorem, Vec<u8>, Vec<u8>)> = Vec::new();
    for theorem in Theorem::ALL {
        let bytes = refute_to_bytes(theorem, None, None, 1, RunPolicy::default()).unwrap();
        let key = canonical_query_key(theorem, None, None, 1, &RunPolicy::default());
        legacy.store(&key, &bytes);
        expected.push((theorem, key.bytes().to_vec(), bytes));
    }

    let cluster = Cluster::start("rebalance");
    // Ship from the legacy directory as if it were shard 0's store.
    let report = shard::rebalance(&legacy_dir, &cluster.map, 0, true).unwrap();
    let families = Theorem::ALL.len() as u64;
    assert_eq!(report.examined, families, "{report}");
    let misplaced: u64 = expected
        .iter()
        .filter(|(_, key, _)| cluster.map.owner_of_bytes(key) != 0)
        .count() as u64;
    assert_eq!(report.shipped, misplaced, "{report}");
    assert_eq!(report.failed, 0, "{report}");
    assert_eq!(report.owned, families - misplaced, "{report}");
    assert_eq!(report.removed, misplaced, "{report}");

    // Every shipped certificate now sits in its owner's store, fetchable
    // and byte-identical — and still audits at exit 0.
    for (theorem, key, bytes) in &expected {
        let owner = cluster.map.owner_of_bytes(key);
        if owner == 0 {
            continue;
        }
        let mut direct = Client::connect(cluster.map.addr(owner)).unwrap();
        direct
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let fetched = direct
            .fetch_cert(key)
            .unwrap()
            .unwrap_or_else(|| panic!("{} missing from shard {owner}", theorem.name()));
        assert_eq!(&fetched, bytes, "{} shipped bytes differ", theorem.name());
        let audit = audit_bytes(&fetched, false);
        assert_eq!(
            audit.exit_code,
            EXIT_VERIFIED,
            "{} shipped cert failed audit: {}",
            theorem.name(),
            audit.diagnostics
        );
    }
    // Shipping to the wrong owner is refused, typed: pick a key owned by
    // some shard and ship it to a different one.
    let (_, key, bytes) = &expected[0];
    let owner = cluster.map.owner_of_bytes(key);
    let wrong = (0..3u32).find(|&s| s != owner).unwrap();
    let mut direct = Client::connect(cluster.map.addr(wrong)).unwrap();
    direct
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match direct.put_cert(key, bytes) {
        Err(ClientError::WrongShard { owner: hinted, .. }) => assert_eq!(hinted, owner),
        other => panic!("expected WrongShard on misdirected put, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&legacy_dir);
    cluster.shutdown();
}

#[test]
fn peer_fetch_recovers_a_reassigned_key_without_resimulating() {
    // Simulate a topology change: warm a certificate into shard A's store
    // under a 3-shard map, then restart the *owning* shard with an empty
    // store while a peer still holds the bytes. The owner must serve the
    // certificate via FetchCert from the peer, not a fresh simulation —
    // observable through peer_fetches and byte identity.
    let cluster = Cluster::start("peerfetch");
    let theorem = Theorem::BaNodes;
    let key = default_key(theorem);
    let owner = cluster.map.owner_of_bytes(&key);
    let peer = (0..3u32).find(|&s| s != owner).unwrap();
    let expected = refute_to_bytes(theorem, None, None, 1, RunPolicy::default()).unwrap();

    // Plant the certificate in the *peer's* store directly (as if it owned
    // the key under an older topology).
    let peer_store = store::CertStore::open(&cluster.dirs[peer as usize]).unwrap();
    let run_key = canonical_query_key(theorem, None, None, 1, &RunPolicy::default());
    peer_store.store(&run_key, &expected);

    let mut client = cluster.client();
    let bytes = client.refute(theorem.name(), None, None, 1, None).unwrap();
    assert_eq!(bytes, expected);
    let stats = cluster.shards[owner as usize].as_ref().unwrap().stats();
    assert_eq!(
        stats.peer_fetches, 1,
        "the owner should have pulled from the peer: {stats}"
    );
    assert_eq!(stats.store_stores, 1, "the fetched cert must be adopted");
    cluster.shutdown();
}
