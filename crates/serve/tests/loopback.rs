//! End-to-end loopback tests: an in-process server driven by real TCP
//! clients.
//!
//! The load-bearing assertion is *byte identity*: a certificate served over
//! the wire is exactly the bytes the library path produces for the same
//! query, for all eight theorem families (the asynchronous FLP family
//! included), even under concurrent clients.
//! That is what makes `flm-serve` a transport for the proofs rather than a
//! second implementation of them.

use std::time::{Duration, Instant};

use flm_serve::audit::{audit_bytes, EXIT_VERIFIED};
use flm_serve::client::{Client, ClientError};
use flm_serve::query::{refute_to_bytes, Theorem};
use flm_serve::rpc::Verdict;
use flm_serve::server::{ServeConfig, Server};
use flm_sim::RunPolicy;

/// ≥8 simultaneous clients, each sweeping all 8 theorem families: every
/// wire certificate is byte-identical to the library path, re-verifies over
/// the Verify RPC, and audits clean over the Audit RPC.
#[test]
fn concurrent_clients_get_byte_identical_certificates_across_all_families() {
    const CLIENTS: usize = 8;
    let server = Server::start(ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // The library-path reference bytes, computed once up front.
    let reference: Vec<(Theorem, Vec<u8>)> = Theorem::ALL
        .into_iter()
        .map(|t| {
            let bytes = refute_to_bytes(t, None, None, 1, RunPolicy::default())
                .unwrap_or_else(|e| panic!("library refutation for {t} failed: {e}"));
            (t, bytes)
        })
        .collect();

    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Stagger the family order per client so different families
                // are in flight simultaneously.
                for i in 0..reference.len() {
                    let (theorem, expected) = &reference[(i + client_index) % reference.len()];
                    let wire = client
                        .refute(theorem.name(), None, None, 1, None)
                        .unwrap_or_else(|e| panic!("wire refutation for {theorem} failed: {e}"));
                    assert_eq!(
                        &wire, expected,
                        "wire certificate for {theorem} differs from the library path"
                    );
                    let (verdict, _) = client.verify(&wire).unwrap();
                    assert_eq!(verdict, Verdict::Verified, "verify RPC for {theorem}");
                    let (exit_code, report, diagnostics) = client.audit(&wire).unwrap();
                    assert_eq!(
                        exit_code, EXIT_VERIFIED,
                        "audit RPC for {theorem}: {diagnostics}"
                    );
                    assert!(report.contains("VERIFIED"), "audit report for {theorem}");
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.requests_refute, (CLIENTS * Theorem::ALL.len()) as u64);
    assert_eq!(stats.requests_verify, (CLIENTS * Theorem::ALL.len()) as u64);
    assert_eq!(stats.requests_audit, (CLIENTS * Theorem::ALL.len()) as u64);
    assert_eq!(stats.connections_shed, 0, "default config must not shed");
    server.shutdown();
}

/// Wire certificates also satisfy the *local* audit entry point — the same
/// function behind the `flm-audit` binary — closing the loop with PR 3's
/// certificate tooling.
#[test]
fn wire_certificates_pass_local_audit() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for theorem in Theorem::ALL {
        let wire = client.refute(theorem.name(), None, None, 1, None).unwrap();
        let outcome = audit_bytes(&wire, false);
        assert_eq!(
            outcome.exit_code, EXIT_VERIFIED,
            "local audit of wire cert for {theorem}: {}",
            outcome.diagnostics
        );
    }
    server.shutdown();
}

/// A saturated worker pool sheds *requests* with a typed `Overloaded`
/// answer — the connection stays open, inline requests keep serving (so a
/// saturated server remains observable), and worker-bound traffic recovers
/// once the load clears.
#[test]
fn saturated_pool_sheds_with_a_typed_answer_then_recovers() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 0,
        // Let the ping hold long enough to provably saturate the one worker.
        max_hold_ms: 10_000,
        read_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Occupy the only worker with a long-held ping.
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.ping(b"hold", 2_000).unwrap()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.busy_workers() == 0 {
        assert!(Instant::now() < deadline, "worker never became busy");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The pool is provably saturated (1 busy worker, queue depth 0): the
    // next worker-bound request (a held ping) must be answered with a typed
    // Overloaded frame.
    let mut shed_client = Client::connect(addr).unwrap();
    shed_client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match shed_client.ping(b"shed me", 1) {
        Err(ClientError::Overloaded { detail, .. }) => {
            assert!(detail.contains("busy"), "detail: {detail}");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Request-level shedding keeps the connection open, and reactor-inline
    // requests still serve while the pool is saturated: the same client
    // answers a zero-hold ping and a stats snapshot.
    assert_eq!(shed_client.ping(b"inline", 0).unwrap(), b"inline");
    let stats = shed_client.stats().unwrap();
    assert_eq!(stats.requests_shed, 1, "stats: {stats:?}");
    assert_eq!(stats.connections_shed, 0, "stats: {stats:?}");

    // The held ping still completes: shedding one request never disturbs an
    // in-flight one.
    assert_eq!(holder.join().unwrap(), b"hold");

    // And once the worker frees up, worker-bound requests are served again.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.busy_workers() != 0 {
        assert!(Instant::now() < deadline, "worker never freed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(shed_client.ping(b"back", 1).unwrap(), b"back");
    server.shutdown();
}

/// Pipelining: many frames written back to back on one connection, mixing
/// reactor-inline requests (zero-hold pings, stats) with worker-bound ones
/// (held pings), come back as one response per request in strict request
/// order — even though inline responses are produced before earlier
/// worker-bound ones finish.
#[test]
fn pipelined_requests_answer_in_request_order() {
    use flm_serve::frame::{read_frame, DEFAULT_MAX_BODY_BYTES};
    use flm_serve::rpc::{Request, Response};
    use std::io::Write as _;

    let server = Server::start(ServeConfig::default()).unwrap();
    let mut sock = std::net::TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    const BATCH: u32 = 12;
    let mut blob = Vec::new();
    for i in 0..BATCH {
        let request = if i == 5 {
            Request::Stats
        } else {
            Request::Ping {
                payload: i.to_le_bytes().to_vec(),
                // Every third request routes through the worker pool; the
                // rest answer inline on the reactor.
                hold_ms: u32::from(i % 3 == 0),
            }
        };
        blob.extend_from_slice(&request.to_frame().encode().unwrap());
    }
    sock.write_all(&blob).unwrap();

    for i in 0..BATCH {
        let frame = read_frame(&mut sock, DEFAULT_MAX_BODY_BYTES)
            .unwrap_or_else(|e| panic!("response {i}: {e}"));
        let response = Response::from_frame(&frame).unwrap();
        if i == 5 {
            assert!(matches!(response, Response::Stats(_)), "response {i}");
        } else {
            match response {
                Response::Pong { payload } => {
                    assert_eq!(
                        payload,
                        i.to_le_bytes().to_vec(),
                        "response {i} out of order"
                    );
                }
                other => panic!("response {i}: expected Pong, got {other:?}"),
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.requests_ping, u64::from(BATCH) - 1);
    server.shutdown();
}

/// One reactor holds many simultaneous sockets: a wave of concurrent
/// connections, each pinging once, all come back answered with zero
/// transport errors and zero sheds.
#[test]
fn ping_wave_serves_many_simultaneous_connections() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let report = flm_serve::loadgen::ping_wave(&server.local_addr().to_string(), 64);
    assert_eq!(report.ok, 64, "{report}");
    assert_eq!(report.overloaded, 0, "{report}");
    assert_eq!(report.transport_errors, 0, "{report}");
    let stats = server.stats();
    assert_eq!(stats.connections_shed, 0);
    assert_eq!(stats.requests_ping, 64);
    server.shutdown();
}

/// The Stats RPC reports the counters the server actually incremented, and
/// repeated identical refutations are visible as run-cache traffic.
#[test]
fn stats_rpc_reflects_served_requests() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let first = client.refute("ba-nodes", None, None, 1, None).unwrap();
    let second = client.refute("ba-nodes", None, None, 1, None).unwrap();
    assert_eq!(
        first, second,
        "identical queries must serve identical bytes"
    );
    client.verify(&first).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.requests_refute, 2);
    assert_eq!(stats.requests_verify, 1);
    assert_eq!(stats.requests_stats, 1);
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.connections_shed, 0);
    assert_eq!(stats.requests_shed, 0);
    // The run cache and the prefix trie are process-global (other tests in
    // this binary also feed them), so only monotone claims are safe:
    // traffic exists, and every refutation above drove runs through the
    // prefix-aware memoizer.
    assert!(stats.cache_hits + stats.cache_misses > 0);
    assert!(stats.prefix_hits + stats.prefix_misses > 0);
    server.shutdown();
}

/// A connection that exhausts its request budget is told so with a typed
/// error, and a fresh connection keeps working.
#[test]
fn connection_budget_is_a_typed_error() {
    let server = Server::start(ServeConfig {
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        client.ping(b"x", 0).unwrap();
    }
    match client.ping(b"one too many", 0) {
        Err(ClientError::ErrorResponse { code, detail }) => {
            assert_eq!(code, flm_serve::rpc::ErrorCode::ConnectionBudget);
            assert!(detail.contains("reconnect"), "detail: {detail}");
        }
        other => panic!("expected ConnectionBudget, got {other:?}"),
    }
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert_eq!(fresh.ping(b"fresh", 0).unwrap(), b"fresh");
    server.shutdown();
}

/// Refute requests with explicit protocol/graph/f round-trip, and bad
/// requests come back as typed errors rather than closed sockets.
#[test]
fn explicit_query_parameters_and_typed_failures() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Explicit parameters matching the ba-connectivity defaults.
    let graph = flm_graph::builders::cycle(4);
    let wire = client
        .refute(
            "ba-connectivity",
            Some("NaiveMajority"),
            Some(&graph),
            1,
            None,
        )
        .unwrap();
    let expected = refute_to_bytes(
        Theorem::BaConnectivity,
        Some("NaiveMajority"),
        Some(&graph),
        1,
        RunPolicy::default(),
    )
    .unwrap();
    assert_eq!(wire, expected);

    // Unknown theorem and unresolvable protocol are BadRequest.
    for (theorem, protocol) in [("no-such-theorem", None), ("ba-nodes", Some("Nope(f=1)"))] {
        match client.refute(theorem, protocol, None, 1, None) {
            Err(ClientError::ErrorResponse { code, .. }) => {
                assert_eq!(code, flm_serve::rpc::ErrorCode::BadRequest);
            }
            other => panic!("expected BadRequest for {theorem}/{protocol:?}, got {other:?}"),
        }
    }
    // The connection survived both rejections.
    assert_eq!(client.ping(b"alive", 0).unwrap(), b"alive");
    server.shutdown();
}
