//! Hostile-input fuzzing for the FLMC-RPC frame layer, mirroring
//! `tests/hostile_certificates.rs` at the workspace root: every truncation,
//! oversize length prefix, and byte flip must yield a *structured* outcome —
//! a typed error frame on the wire, a typed `FrameError`/`RpcDecodeError` in
//! the library — never a panic, a hang, or an unbounded allocation.

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use flm_serve::frame::{
    read_frame, Frame, FrameError, FrameReadError, DEFAULT_MAX_BODY_BYTES, HEADER_BYTES,
};
use flm_serve::rpc::{kind, ErrorCode, Request, Response};
use flm_serve::server::{ServeConfig, Server};

/// A small, valid request frame to mutate: a ping with a payload.
fn sample_request_frame() -> Frame {
    Request::Ping {
        payload: b"fuzz-payload".to_vec(),
        hold_ms: 0,
    }
    .to_frame()
}

fn test_server() -> Server {
    Server::start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

/// Writes raw bytes, half-closes, and reads whatever single response the
/// server sends (None on clean EOF).
fn exchange_raw(server: &Server, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    // The server may already have answered and closed (it races us on
    // malformed input); a failed half-close is fine.
    let _ = stream.shutdown(Shutdown::Write);
    match read_frame(&mut stream, DEFAULT_MAX_BODY_BYTES) {
        Ok(frame) => Some(Response::from_frame(&frame).expect("server sent a malformed response")),
        Err(FrameReadError::Eof) => None,
        Err(e) => panic!("server reply was not a frame or EOF: {e}"),
    }
}

/// The server must still serve after hostile input: a fresh ping answers.
fn assert_still_serving(server: &Server) {
    let response = exchange_raw(server, &sample_request_frame().encode().unwrap())
        .expect("server stopped answering");
    assert!(
        matches!(response, Response::Pong { .. }),
        "expected pong, got {response:?}"
    );
}

#[test]
fn every_prefix_truncation_decodes_structurally() {
    let bytes = sample_request_frame().encode().unwrap();
    for cut in 0..bytes.len() {
        let err = Frame::decode(&bytes[..cut], DEFAULT_MAX_BODY_BYTES)
            .expect_err("a strict prefix must not decode");
        // Prefixes that still match the magic truncate; anything shorter
        // than the magic still matches it here, so everything is Truncated.
        assert_eq!(err, FrameError::Truncated, "prefix of {cut} bytes");
    }
}

#[test]
fn every_prefix_truncation_over_the_socket_is_answered() {
    let server = test_server();
    let bytes = sample_request_frame().encode().unwrap();
    for cut in 0..bytes.len() {
        let response = exchange_raw(&server, &bytes[..cut]);
        if cut == 0 {
            // Nothing sent: a clean disconnect, not an error.
            assert!(response.is_none(), "empty connection drew {response:?}");
        } else {
            match response {
                Some(Response::Error { code, .. }) => {
                    assert_eq!(code, ErrorCode::MalformedFrame, "prefix of {cut} bytes")
                }
                other => panic!("prefix of {cut} bytes drew {other:?}"),
            }
        }
    }
    assert_still_serving(&server);
    assert!(server.stats().malformed_frames >= (bytes.len() - 1) as u64);
    server.shutdown();
}

#[test]
fn oversize_length_prefix_is_rejected_before_allocation() {
    let mut bytes = sample_request_frame().encode().unwrap();
    bytes[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
    // Library layer: structured Oversize, found from the header alone.
    match Frame::decode(&bytes, DEFAULT_MAX_BODY_BYTES) {
        Err(FrameError::Oversize { len, max }) => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, DEFAULT_MAX_BODY_BYTES);
        }
        other => panic!("expected Oversize, got {other:?}"),
    }
    // Wire layer: typed error frame, and the server keeps serving. Only the
    // 10-byte header is sent — a server that tried to pre-allocate or read
    // the claimed 4 GiB body would hang here instead of answering.
    let server = test_server();
    match exchange_raw(&server, &bytes[..HEADER_BYTES]) {
        Some(Response::Error { code, detail }) => {
            assert_eq!(code, ErrorCode::MalformedFrame);
            assert!(detail.contains("exceeds"), "detail: {detail}");
        }
        other => panic!("oversize header drew {other:?}"),
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn byte_flips_at_every_offset_decode_structurally() {
    let bytes = sample_request_frame().encode().unwrap();
    for i in 0..bytes.len() {
        for flip in [0xFFu8, 0x01, 0x80] {
            let mut mutated = bytes.clone();
            mutated[i] ^= flip;
            // Either a valid frame (body flips change the opaque payload) or
            // a structured error — never a panic.
            match Frame::decode(&mutated, DEFAULT_MAX_BODY_BYTES) {
                Ok((frame, _)) => {
                    // The RPC layer must also stay structured on the
                    // mutated body / kind byte.
                    let _ = Request::from_frame(&frame);
                }
                Err(
                    FrameError::BadMagic
                    | FrameError::UnsupportedVersion(_)
                    | FrameError::Truncated
                    | FrameError::Oversize { .. }
                    | FrameError::BodyTooLarge { .. },
                ) => {}
            }
        }
    }
}

#[test]
fn rpc_body_flips_decode_structurally() {
    // A refute request exercises the deepest body grammar (strings, options,
    // graph bytes, policy).
    let frame = Request::Refute(flm_serve::rpc::RefuteParams {
        theorem: "ba-nodes".into(),
        protocol: Some("EIG(f=1)".into()),
        graph: Some(flm_graph::builders::triangle()),
        f: 1,
        policy: Some(flm_sim::RunPolicy::default()),
    })
    .to_frame();
    for i in 0..frame.body.len() {
        let mut mutated = frame.clone();
        mutated.body[i] ^= 0xFF;
        // Structured Ok or structured error; never a panic.
        let _ = Request::from_frame(&mutated);
    }
    for truncate_to in 0..frame.body.len() {
        let mut mutated = frame.clone();
        mutated.body.truncate(truncate_to);
        assert!(
            Request::from_frame(&mutated).is_err(),
            "body prefix of {truncate_to} bytes decoded"
        );
    }
}

#[test]
fn socket_garbage_draws_typed_error_then_server_recovers() {
    let server = test_server();
    // Pure noise: bad magic from the first byte.
    match exchange_raw(&server, &[0xAA; 64]) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("garbage drew {other:?}"),
    }
    // A well-framed but undecodable body: valid header, unknown kind.
    match exchange_raw(
        &server,
        &Frame::new(0x7F, b"junk".to_vec()).encode().unwrap(),
    ) {
        Some(Response::Error { code, detail }) => {
            assert_eq!(code, ErrorCode::MalformedFrame);
            assert!(detail.contains("0x7F"), "detail: {detail}");
        }
        other => panic!("unknown kind drew {other:?}"),
    }
    // A response kind sent as a request is equally malformed.
    match exchange_raw(
        &server,
        &Frame::new(kind::RESP_PONG, vec![]).encode().unwrap(),
    ) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("response-kind request drew {other:?}"),
    }
    // A future frame version is refused without guessing at its layout.
    let mut versioned = sample_request_frame().encode().unwrap();
    versioned[4] = 9;
    match exchange_raw(&server, &versioned) {
        Some(Response::Error { code, detail }) => {
            assert_eq!(code, ErrorCode::MalformedFrame);
            assert!(detail.contains("version"), "detail: {detail}");
        }
        other => panic!("future version drew {other:?}"),
    }
    assert_still_serving(&server);
    let stats = server.stats();
    assert!(stats.malformed_frames >= 4, "stats: {stats:?}");
    server.shutdown();
}
