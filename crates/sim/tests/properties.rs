//! Property-based tests for the simulator: the structural guarantees every
//! refutation rests on, quantified over randomized devices and graphs.

use std::collections::BTreeSet;

use flm_graph::covering::Covering;
use flm_graph::{builders, NodeId};
use flm_sim::behavior::EdgeBehavior;
use flm_sim::devices::TableDevice;
use flm_sim::replay::ReplayDevice;
use flm_sim::{Input, System};

fn build_table_system(g: &flm_graph::Graph, seed: u64, inputs_mask: u32) -> System {
    let mut sys = System::new(g.clone());
    for v in g.nodes() {
        sys.assign(
            v,
            Box::new(TableDevice::new(seed ^ u64::from(v.0), 4)),
            Input::Bool((inputs_mask >> (v.0 % 31)) & 1 == 1),
        );
    }
    sys
}

/// "A system has exactly one behavior": running twice gives identical
/// node and edge traces.
#[test]
fn runs_are_deterministic() {
    flm_prop::cases(48, 0x51A1, |rng| {
        let n = rng.usize(3..8);
        let extra = rng.usize(0..5);
        let gseed = rng.range_u64(0..200);
        let seed = rng.u64();
        let mask = rng.u32();
        let g = builders::random_connected(n, extra, gseed);
        let a = build_table_system(&g, seed, mask).run(6);
        let b = build_table_system(&g, seed, mask).run(6);
        for v in g.nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
        assert_eq!(a.edges(), b.edges());
    });
}

/// Installing devices along a covering's lifts makes each fiber node's
/// behavior depend only on its base node — in the cyclic cover with
/// *uniform inputs*, all nodes of a fiber behave identically.
#[test]
fn fibers_behave_identically_under_uniform_inputs() {
    flm_prop::cases(48, 0x51A2, |rng| {
        let m = rng.usize(2..6);
        let seed = rng.u64();
        let input = rng.bool();
        let cov = Covering::cyclic_cover(3, m).unwrap();
        let mut sys = System::new(cov.cover().clone());
        for s in cov.cover().nodes() {
            // Device depends only on the *base* node identity.
            let dev = TableDevice::new(seed ^ u64::from(cov.project(s).0), 4);
            sys.assign_lifted(&cov, s, Box::new(dev), Input::Bool(input))
                .unwrap();
        }
        let b = sys.run(6);
        for base in cov.base().nodes() {
            let fiber = cov.fiber(base);
            let first = b.node(fiber[0]);
            for &s in &fiber[1..] {
                assert_eq!(first, b.node(s), "fiber of {base} diverged");
            }
        }
    });
}

/// The Fault axiom: a replay device reproduces arbitrary traces exactly,
/// in any system.
#[test]
fn replay_reproduces_arbitrary_traces() {
    flm_prop::cases(48, 0x51A3, |rng| {
        let n = rng.usize(3..7);
        let gseed = rng.range_u64(0..100);
        let seed = rng.u64();
        let g = builders::random_connected(n, 3, gseed);
        let node = NodeId((seed % n as u64) as u32);
        let horizon = 5u32;
        let traces: Vec<EdgeBehavior> = (0..g.degree(node))
            .map(|p| {
                (0..horizon as usize)
                    .map(|t| {
                        let h = flm_sim::auth::mix64(seed ^ ((p as u64) << 8) ^ t as u64);
                        (!h.is_multiple_of(4)).then(|| vec![h as u8].into())
                    })
                    .collect()
            })
            .collect();
        let mut sys = System::new(g.clone());
        sys.assign(
            node,
            Box::new(ReplayDevice::masquerade(traces.clone())),
            Input::None,
        );
        for v in g.nodes() {
            if v != node {
                sys.assign(
                    v,
                    Box::new(TableDevice::new(seed ^ u64::from(v.0), 3)),
                    Input::Bool(v.0 % 2 == 0),
                );
            }
        }
        let b = sys.run(horizon);
        for (p, w) in g.neighbors(node).enumerate() {
            assert_eq!(b.edge(node, w), &traces[p]);
        }
    });
}

/// Scenario extraction is self-consistent: the scenario of the full node
/// set contains every edge as internal and nothing as border, and
/// matching a scenario against itself under the identity succeeds.
#[test]
fn scenario_extraction_is_consistent() {
    flm_prop::cases(48, 0x51A4, |rng| {
        let n = rng.usize(3..7);
        let gseed = rng.range_u64(0..100);
        let seed = rng.u64();
        let mask = rng.u32();
        let g = builders::random_connected(n, 2, gseed);
        let b = build_table_system(&g, seed, mask).run(5);
        let all: BTreeSet<NodeId> = g.nodes().collect();
        let full = b.scenario(&all);
        assert!(full.border.is_empty());
        assert_eq!(full.internal.len(), 2 * g.link_count());
        let identity: std::collections::BTreeMap<NodeId, NodeId> =
            all.iter().map(|&v| (v, v)).collect();
        assert!(full.matches(&full, &identity).is_ok());

        // A proper subset has a non-empty border on a connected graph.
        let u: BTreeSet<NodeId> = [NodeId(0)].into();
        let part = b.scenario(&u);
        assert_eq!(part.border.len(), g.degree(NodeId(0)));
    });
}

/// Decisions are a function of the behavior: two nodes with identical
/// snapshot traces decide identically (read via NodeBehavior, never via
/// live devices).
#[test]
fn decisions_are_behavior_functions() {
    flm_prop::cases(48, 0x51A5, |rng| {
        let n_half = rng.usize(2..5);
        let input = rng.bool();
        // Symmetric ring with identical (node-id-agnostic) devices and
        // inputs: all nodes have identical behaviors, hence identical
        // decisions.
        let g = builders::cycle(2 * n_half);
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(
                v,
                Box::new(flm_sim::devices::NaiveMajorityDevice::new()),
                Input::Bool(input),
            );
        }
        let b = sys.run(5);
        let first = b.node(NodeId(0));
        for v in g.nodes() {
            assert_eq!(&first.snaps, &b.node(v).snaps);
            assert_eq!(first.decision(), b.node(v).decision());
        }
    });
}
