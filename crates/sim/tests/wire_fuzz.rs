//! Property tests for the wire codec: random typed sequences round-trip
//! exactly, and truncated or corrupted buffers always surface as
//! [`DecodeError`] — never a panic, whatever bytes arrive off the wire.

use flm_prop::cases;
use flm_sim::wire::{DecodeError, Reader, Writer};

/// One randomly-typed field of a wire message.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    Bool(bool),
    F64(f64),
    Bytes(Vec<u8>),
    OptBool(Option<bool>),
}

fn random_fields(rng: &mut flm_prop::Rng) -> Vec<Field> {
    let n = rng.usize(0..12);
    (0..n)
        .map(|_| match rng.usize(0..7) {
            0 => Field::U8(rng.byte()),
            1 => Field::U32(rng.u32()),
            2 => Field::U64(rng.u64()),
            3 => Field::Bool(rng.bool()),
            // Finite, non-NaN: canonical encodings only.
            4 => Field::F64(f64::from(rng.i32(-1_000_000..1_000_000)) / 128.0),
            5 => Field::Bytes(rng.bytes(0..32)),
            _ => Field::OptBool(match rng.usize(0..3) {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            }),
        })
        .collect()
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut w = Writer::new();
    for f in fields {
        match f {
            Field::U8(v) => w.u8(*v),
            Field::U32(v) => w.u32(*v),
            Field::U64(v) => w.u64(*v),
            Field::Bool(v) => w.bool(*v),
            Field::F64(v) => w.f64(*v),
            Field::Bytes(v) => w.bytes(v),
            Field::OptBool(v) => w.opt_bool(*v),
        };
    }
    w.finish()
}

fn decode(fields: &[Field], buf: &[u8]) -> Result<Vec<Field>, DecodeError> {
    let mut r = Reader::new(buf);
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        out.push(match f {
            Field::U8(_) => Field::U8(r.u8()?),
            Field::U32(_) => Field::U32(r.u32()?),
            Field::U64(_) => Field::U64(r.u64()?),
            Field::Bool(_) => Field::Bool(r.bool()?),
            Field::F64(_) => Field::F64(r.f64()?),
            Field::Bytes(_) => Field::Bytes(r.bytes()?.to_vec()),
            Field::OptBool(_) => Field::OptBool(r.opt_bool()?),
        });
    }
    if !r.is_empty() {
        return Err(DecodeError);
    }
    Ok(out)
}

#[test]
fn random_sequences_round_trip_exactly() {
    cases(300, 0x51BE, |rng| {
        let fields = random_fields(rng);
        let buf = encode(&fields);
        let back = decode(&fields, &buf).expect("round trip");
        assert_eq!(back, fields);
        // Canonicality: re-encoding yields identical bytes.
        assert_eq!(encode(&back), buf);
    });
}

#[test]
fn truncation_always_errors_never_panics() {
    cases(300, 0x7A11, |rng| {
        let mut fields = random_fields(rng);
        if fields.is_empty() {
            fields.push(Field::U32(7));
        }
        let buf = encode(&fields);
        // Every strict prefix must fail cleanly: the sequence reads more
        // total bytes than the prefix holds, or leaves trailing garbage.
        let cut = rng.usize(0..buf.len().max(1));
        match decode(&fields, &buf[..cut]) {
            Err(DecodeError) => {}
            Ok(got) => panic!(
                "decoded {got:?} from a {cut}-byte prefix of {} bytes",
                buf.len()
            ),
        }
    });
}

#[test]
fn corruption_errors_or_decodes_but_never_panics() {
    cases(300, 0xC0DE, |rng| {
        let mut fields = random_fields(rng);
        if fields.is_empty() {
            fields.push(Field::Bytes(vec![1, 2, 3]));
        }
        let mut buf = encode(&fields);
        // Flip 1–4 random bytes. A flipped length prefix may demand more
        // bytes than exist (error), or the buffer may still parse to
        // different-but-valid fields; both are fine — panicking is not.
        for _ in 0..rng.usize(1..5) {
            let i = rng.usize(0..buf.len());
            buf[i] ^= rng.byte() | 1;
        }
        let _ = decode(&fields, &buf);
        // Arbitrary garbage against arbitrary schemas must be safe too.
        let garbage = rng.bytes(0..64);
        let _ = decode(&fields, &garbage);
    });
}

#[test]
fn invalid_tags_are_rejected() {
    for bad in [2u8, 3, 0xFF] {
        assert_eq!(Reader::new(&[bad]).bool(), Err(DecodeError));
    }
    for bad in [3u8, 4, 0xFF] {
        assert_eq!(Reader::new(&[bad]).opt_bool(), Err(DecodeError));
    }
    // Length prefix larger than the remaining buffer.
    let mut w = Writer::new();
    w.u32(1000);
    let buf = w.finish();
    assert_eq!(Reader::new(&buf).bytes(), Err(DecodeError));
}
