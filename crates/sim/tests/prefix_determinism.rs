//! The soundness contract of the run-prefix trie: forking a mid-run tick
//! snapshot and simulating only the divergent suffix must be *unobservable*
//! in the output. Every behavior served through
//! [`flm_sim::prefixcache::memoize_prefixed`] must be byte-identical to a
//! genuinely cold simulation of the same system — across graph shapes,
//! masquerading replay nodes, fault-plan injectors, quarantining devices,
//! and horizon changes — and schedules that are not byte-equal prefixes
//! must never share a snapshot, no matter how their fingerprints land.

use flm_graph::{builders, Graph, NodeId};
use flm_sim::device::{snapshot, Device, NodeCtx, Payload};
use flm_sim::devices::TableDevice;
use flm_sim::prefixcache::{self, PrefixSchedule};
use flm_sim::replay::ReplayDevice;
use flm_sim::runcache::{self, RunKey};
use flm_sim::wire::Writer;
use flm_sim::{EdgeBehavior, FaultPlan, Input, RunPolicy, System, SystemBehavior, Tick};
use std::sync::Arc;

/// The caches are process-global and the tests below clear them; serialize
/// so one test's `clear()` cannot race another's assertions.
static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn cache_lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic synthetic masquerade traces for `scripted` in `g`: one
/// trace per port, payload varying with (seed, port, tick), with silences
/// sprinkled in.
fn synthetic_traces(g: &Graph, scripted: NodeId, seed: u64, ticks: u32) -> Vec<EdgeBehavior> {
    g.neighbors(scripted)
        .enumerate()
        .map(|(p, _)| {
            (0..ticks)
                .map(|t| {
                    if (t as u64 + p as u64 + seed).is_multiple_of(4) {
                        None
                    } else {
                        Some(Payload::from(vec![
                            seed as u8,
                            p as u8,
                            t as u8,
                            (seed >> 8) as u8,
                        ]))
                    }
                })
                .collect()
        })
        .collect()
}

/// A link-shaped test system: every node runs a seeded `TableDevice`
/// except `scripted`, which replays `traces`.
fn link_system(g: &Graph, seed: u64, scripted: NodeId, traces: &[EdgeBehavior]) -> System {
    let mut sys = System::new(g.clone());
    for v in g.nodes() {
        if v == scripted {
            sys.assign(
                v,
                Box::new(ReplayDevice::masquerade(traces.to_vec())),
                Input::Bool(false),
            );
        } else {
            sys.assign(
                v,
                Box::new(TableDevice::new(seed ^ u64::from(v.0), 64)),
                Input::Bool(v.0.is_multiple_of(2)),
            );
        }
    }
    sys
}

/// The schedule for [`link_system`]: static = (tag, graph, seed, trace
/// shape); tick bytes = the scripted node's outputs per tick, exactly what
/// `ReplayDevice::masquerade` will emit.
fn link_schedule(
    tag: &str,
    g: &Graph,
    seed: u64,
    scripted: NodeId,
    traces: &[EdgeBehavior],
) -> PrefixSchedule {
    let mut w = Writer::new();
    w.str(tag);
    w.bytes(&g.to_bytes());
    w.u64(seed);
    w.u32(scripted.0);
    let mut ticks = 0;
    for trace in traces {
        w.u32(trace.len() as u32);
        ticks = ticks.max(trace.len());
    }
    let mut schedule = PrefixSchedule::new(w.finish(), vec![scripted]);
    for t in 0..ticks {
        let mut tw = Writer::new();
        for trace in traces {
            match trace.get(t).and_then(Option::as_ref) {
                None => {
                    tw.u8(0);
                }
                Some(p) => {
                    tw.u8(1).bytes(p);
                }
            }
        }
        schedule.push_tick(tw.finish());
    }
    schedule
}

fn link_key(
    tag: &str,
    g: &Graph,
    seed: u64,
    scripted: NodeId,
    traces: &[EdgeBehavior],
    horizon: u32,
) -> RunKey {
    let mut w = Writer::new();
    w.str(tag);
    w.bytes(&g.to_bytes());
    w.u64(seed);
    w.u32(scripted.0);
    for trace in traces {
        flm_sim::behavior::encode_edge_behavior(trace, &mut w);
    }
    w.u32(horizon);
    RunKey::new("prefixtest", w.finish())
}

fn run_prefixed(
    g: &Graph,
    tag: &str,
    seed: u64,
    scripted: NodeId,
    traces: &[EdgeBehavior],
    horizon: u32,
    policy: &RunPolicy,
) -> Arc<SystemBehavior> {
    let key = link_key(tag, g, seed, scripted, traces, horizon);
    let schedule = link_schedule(tag, g, seed, scripted, traces);
    prefixcache::memoize_prefixed(
        &key,
        &schedule,
        horizon,
        policy,
        || Ok::<_, String>(link_system(g, seed, scripted, traces)),
        |e| e.to_string(),
    )
    .unwrap()
}

fn assert_behaviors_identical(label: &str, a: &SystemBehavior, b: &SystemBehavior) {
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "{label}: behaviors diverged"
    );
}

#[test]
fn prefix_forked_runs_match_fresh_runs_across_graphs_and_seeds() {
    let _guard = cache_lock();
    let policy = RunPolicy::default();
    for (gi, g) in [
        builders::triangle(),
        builders::complete(4),
        builders::cycle(5),
    ]
    .iter()
    .enumerate()
    {
        for seed in 0..4u64 {
            runcache::clear();
            prefixcache::clear();
            let tag = format!("graphs-{gi}-{seed}");
            let scripted = NodeId(0);
            let horizon = 24;
            let base = synthetic_traces(g, scripted, seed, horizon);

            // Cold run seeds the trie with that schedule's snapshots.
            let _ = run_prefixed(g, &tag, seed, scripted, &base, horizon, &policy);

            // Perturb only the final tick of every trace: the new schedule
            // shares every boundary before the last tick, so this run forks
            // a stored snapshot and simulates only the tail.
            let mut perturbed = base.clone();
            for trace in &mut perturbed {
                *trace.last_mut().unwrap() = Some(Payload::from(vec![0xFF, seed as u8]));
            }
            let before = prefixcache::stats();
            let warm = run_prefixed(g, &tag, seed, scripted, &perturbed, horizon, &policy);
            let after = prefixcache::stats();
            assert!(
                after.hits > before.hits && after.ticks_saved > before.ticks_saved,
                "perturbed-tail run must resume from a shared prefix, stats {after:?}"
            );

            let cold = runcache::bypass(|| {
                link_system(g, seed, scripted, &perturbed)
                    .run_contained(horizon, &policy)
                    .unwrap()
            });
            assert_behaviors_identical(&tag, &warm, &cold);
        }
    }
}

#[test]
fn shorter_horizons_extract_from_stored_snapshots() {
    let _guard = cache_lock();
    runcache::clear();
    prefixcache::clear();
    let policy = RunPolicy::default();
    let g = builders::complete(4);
    let scripted = NodeId(2);
    let traces = synthetic_traces(&g, scripted, 9, 16);

    let _ = run_prefixed(&g, "shrink", 9, scripted, &traces, 16, &policy);
    // A shorter run of the same schedule must fork the boundary snapshot at
    // its own horizon and re-simulate nothing.
    let before = prefixcache::stats();
    let short = run_prefixed(&g, "shrink", 9, scripted, &traces, 10, &policy);
    let after = prefixcache::stats();
    assert!(
        after.ticks_saved >= before.ticks_saved + 10,
        "horizon-10 run should resume at its completion boundary, stats {after:?}"
    );
    let cold = runcache::bypass(|| {
        link_system(&g, 9, scripted, &traces)
            .run_contained(10, &policy)
            .unwrap()
    });
    assert_behaviors_identical("shrink", &short, &cold);
}

#[test]
fn faulted_runs_share_prefixes_and_stay_identical() {
    let _guard = cache_lock();
    runcache::clear();
    prefixcache::clear();
    let policy = RunPolicy::default();
    let g = builders::cycle(5);
    let plan = FaultPlan::new(0xFA)
        .drop_edge(NodeId(1), NodeId(2), 2, 6)
        .corrupt_edge(NodeId(3), NodeId(4), 0, 8)
        .equivocate(NodeId(0), 4, 9);

    let build = || {
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            let device: Box<dyn Device> = Box::new(TableDevice::new(77 ^ u64::from(v.0), 64));
            sys.assign(v, plan.wrap(v, device), Input::Bool(v.0 == 0));
        }
        sys
    };
    let schedule = PrefixSchedule::new(b"faulted-cycle5".to_vec(), Vec::new());
    let key = |h: u32| RunKey::new("prefixtest-faulted", h.to_le_bytes().to_vec());

    let run = |h: u32| {
        prefixcache::memoize_prefixed(
            &key(h),
            &schedule,
            h,
            &policy,
            || Ok::<_, String>(build()),
            |e| e.to_string(),
        )
        .unwrap()
    };
    let _ = run(20);
    let warm = run(13);
    let cold = runcache::bypass(|| build().run_contained(13, &policy).unwrap());
    assert_behaviors_identical("faulted", &warm, &cold);
    // The horizon-20 run captured stride-2 boundaries, so the deepest one
    // at or below 13 is tick 12.
    assert!(
        prefixcache::stats().ticks_saved >= 12,
        "the horizon-13 run should have resumed from a snapshot"
    );
}

/// Panics at a fixed tick; forkable, so snapshots around the quarantine
/// boundary exercise the restored-quarantine path.
#[derive(Clone)]
struct PanicAt {
    tick: u32,
}

impl Device for PanicAt {
    fn name(&self) -> &'static str {
        "PanicAt"
    }
    fn init(&mut self, _ctx: &NodeCtx) {}
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        assert!(t.0 != self.tick, "scheduled detonation");
        inbox.iter().map(|_| Some(Payload::from(vec![7]))).collect()
    }
    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(b"ticking")
    }
    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[test]
fn quarantined_nodes_resume_quarantined() {
    let _guard = cache_lock();
    runcache::clear();
    prefixcache::clear();
    let policy = RunPolicy::default();
    let g = builders::triangle();
    let build = || {
        let mut sys = System::new(g.clone());
        sys.assign(NodeId(0), Box::new(PanicAt { tick: 3 }), Input::Bool(true));
        for v in [NodeId(1), NodeId(2)] {
            sys.assign(
                v,
                Box::new(TableDevice::new(u64::from(v.0), 64)),
                Input::Bool(false),
            );
        }
        sys
    };
    let schedule = PrefixSchedule::new(b"quarantine-triangle".to_vec(), Vec::new());
    let run = |h: u32| {
        prefixcache::memoize_prefixed(
            &RunKey::new("prefixtest-quarantine", h.to_le_bytes().to_vec()),
            &schedule,
            h,
            &policy,
            || Ok::<_, String>(build()),
            |e| e.to_string(),
        )
        .unwrap()
    };
    // The long run quarantines node 0 at tick 3 and stores snapshots on
    // both sides of the boundary; the short run resumes past it and must
    // reproduce the identical misbehavior record and marker snapshots.
    let _ = run(16);
    let warm = run(9);
    let cold = runcache::bypass(|| build().run_contained(9, &policy).unwrap());
    assert_behaviors_identical("quarantine", &warm, &cold);
    assert_eq!(warm.misbehavior().len(), 1);
}

/// No `fork` override: refuses to fork, so runs containing it must never
/// be captured into the trie (and must still be correct).
struct Unforkable {
    seed: u64,
}

impl Device for Unforkable {
    fn name(&self) -> &'static str {
        "Unforkable"
    }
    fn init(&mut self, _ctx: &NodeCtx) {}
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(t.0.into());
        let b = (self.seed >> 32) as u8;
        inbox.iter().map(|_| Some(Payload::from(vec![b]))).collect()
    }
    fn snapshot(&self) -> Vec<u8> {
        snapshot::undecided(&self.seed.to_be_bytes())
    }
}

#[test]
fn unforkable_devices_disable_capture_but_not_correctness() {
    let _guard = cache_lock();
    runcache::clear();
    prefixcache::clear();
    let policy = RunPolicy::default();
    let g = builders::triangle();
    let build = || {
        let mut sys = System::new(g.clone());
        sys.assign(
            NodeId(0),
            Box::new(Unforkable { seed: 41 }),
            Input::Bool(true),
        );
        for v in [NodeId(1), NodeId(2)] {
            sys.assign(
                v,
                Box::new(TableDevice::new(u64::from(v.0), 64)),
                Input::Bool(false),
            );
        }
        sys
    };
    let schedule = PrefixSchedule::new(b"unforkable-triangle".to_vec(), Vec::new());
    let warm = prefixcache::memoize_prefixed(
        &RunKey::new("prefixtest-unforkable", vec![1]),
        &schedule,
        12,
        &policy,
        || Ok::<_, String>(build()),
        |e| e.to_string(),
    )
    .unwrap();
    assert_eq!(
        prefixcache::stats().entries,
        0,
        "a device that refuses to fork must keep the trie empty"
    );
    let cold = runcache::bypass(|| build().run_contained(12, &policy).unwrap());
    assert_behaviors_identical("unforkable", &warm, &cold);
}

#[test]
fn adversarial_near_aliases_never_share_a_prefix() {
    let _guard = cache_lock();
    runcache::clear();
    prefixcache::clear();
    let policy = RunPolicy::default();
    let g = builders::triangle();
    let scripted = NodeId(0);
    let horizon = 12;
    let a = synthetic_traces(&g, scripted, 5, horizon);

    // Diverge at tick 0 — nothing may be shared, even though every later
    // tick is byte-identical and the static bytes agree.
    let mut b = a.clone();
    b[0][0] = Some(Payload::from(vec![0xEE]));
    let _ = run_prefixed(&g, "alias", 5, scripted, &a, horizon, &policy);
    let warm = run_prefixed(&g, "alias", 5, scripted, &b, horizon, &policy);
    let cold = runcache::bypass(|| {
        link_system(&g, 5, scripted, &b)
            .run_contained(horizon, &policy)
            .unwrap()
    });
    assert_behaviors_identical("tick-0 divergence", &warm, &cold);

    // Same tick bytes under a different static tag: the head must isolate
    // them (distinct runs, byte-identical tick schedules).
    let _ = run_prefixed(&g, "alias-one", 6, scripted, &a, horizon, &policy);
    let warm = run_prefixed(&g, "alias-two", 6, scripted, &a, horizon, &policy);
    let cold = runcache::bypass(|| {
        link_system(&g, 6, scripted, &a)
            .run_contained(horizon, &policy)
            .unwrap()
    });
    // Both tags build the same system here, so behaviors agree — the claim
    // under test is that the second tag's run is *correct*, not served from
    // the wrong entry with a different schedule interpretation.
    assert_behaviors_identical("static divergence", &warm, &cold);
}

#[test]
fn strict_kernel_matches_reference_loop_with_scripted_nodes() {
    // No caches involved: the SoA kernel itself (which prefix runs resume
    // into) against the map-per-delivery reference loop, with a replay
    // device in the mix.
    let g = builders::complete(4);
    let scripted = NodeId(1);
    let traces = synthetic_traces(&g, scripted, 3, 10);
    let dense = link_system(&g, 3, scripted, &traces).try_run(10).unwrap();
    let reference = link_system(&g, 3, scripted, &traces)
        .run_reference(10)
        .unwrap();
    assert_behaviors_identical("kernel-vs-reference", &dense, &reference);
}
