//! Regression tests for FaultPlan composition edge cases: several rules
//! (possibly from merged plans) targeting the same edge at the same tick
//! must inject deterministically and rule-order-independently, per the
//! precedence documented in `flm_sim::faults` — equivocate → corrupt →
//! drop → delay, with the minimum delay winning among delays.

use std::collections::BTreeSet;

use flm_graph::{builders, NodeId};
use flm_sim::device::{Device, Input};
use flm_sim::devices::NaiveMajorityDevice;
use flm_sim::faults::FaultPlan;
use flm_sim::system::System;
use flm_sim::SystemBehavior;

fn broadcaster() -> Box<dyn Device> {
    Box::new(NaiveMajorityDevice::new())
}

fn run_plan(plan: &FaultPlan, horizon: u32) -> SystemBehavior {
    let g = builders::triangle();
    let mut sys = System::new(g);
    for v in sys.graph().nodes() {
        sys.assign(v, plan.wrap(v, broadcaster()), Input::Bool(v.0 == 0));
    }
    sys.run(horizon)
}

#[test]
fn drop_beats_delay_on_the_same_edge_and_tick_in_either_order() {
    let drop_then_delay = FaultPlan::new(7)
        .drop_edge(NodeId(0), NodeId(1), 0, 1)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 2);
    let delay_then_drop = FaultPlan::new(7)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 2)
        .drop_edge(NodeId(0), NodeId(1), 0, 1);
    let a = run_plan(&drop_then_delay, 4);
    let b = run_plan(&delay_then_drop, 4);
    assert_eq!(
        a.edge(NodeId(0), NodeId(1)),
        b.edge(NodeId(0), NodeId(1)),
        "drop + delay must compose rule-order-independently"
    );
    // Drop wins: the payload is silenced, not held for later delivery, so
    // nothing the clean run sent at tick 0 ever reappears on the edge.
    let clean = run_plan(&FaultPlan::new(7), 4);
    let held = clean.edge(NodeId(0), NodeId(1))[0].clone();
    assert!(held.is_some(), "clean run should send at tick 0");
    assert_eq!(a.edge(NodeId(0), NodeId(1))[0], None);
    assert!(
        !a.edge(NodeId(0), NodeId(1)).contains(&held),
        "a dropped payload must not resurface via the delay queue"
    );
}

#[test]
fn minimum_delay_wins_regardless_of_rule_order() {
    let small_first = FaultPlan::new(7)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 1)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 3);
    let large_first = FaultPlan::new(7)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 3)
        .delay_edge(NodeId(0), NodeId(1), 0, 1, 1);
    let a = run_plan(&small_first, 6);
    let b = run_plan(&large_first, 6);
    assert_eq!(a.edge(NodeId(0), NodeId(1)), b.edge(NodeId(0), NodeId(1)));
    // And the winning hold time is the minimum: the tick-0 payload is back
    // on the wire no later than a run delayed only by the small rule.
    let only_small = run_plan(
        &FaultPlan::new(7).delay_edge(NodeId(0), NodeId(1), 0, 1, 1),
        6,
    );
    assert_eq!(
        a.edge(NodeId(0), NodeId(1)),
        only_small.edge(NodeId(0), NodeId(1)),
        "min delay must decide, not the first rule in the list"
    );
}

#[test]
fn merged_plans_inject_like_the_concatenated_plan_in_either_order() {
    let a = FaultPlan::new(11)
        .drop_edge(NodeId(0), NodeId(1), 1, 3)
        .equivocate(NodeId(0), 0, 1);
    let b = FaultPlan::new(11)
        .corrupt_edge(NodeId(0), NodeId(2), 0, 2)
        .delay_edge(NodeId(0), NodeId(1), 1, 3, 2);
    let ab = run_plan(&a.clone().merge(&b), 6);
    let ba = run_plan(&b.clone().merge(&a), 6);
    assert_eq!(ab.edges(), ba.edges(), "merge must commute (same seed)");
    assert_eq!(
        a.clone().merge(&b).faulty_nodes(),
        b.clone().merge(&a).faulty_nodes()
    );
}

#[test]
fn without_rule_and_restricted_to_shrink_the_plan() {
    let plan = FaultPlan::new(5)
        .drop_edge(NodeId(0), NodeId(1), 0, 2)
        .corrupt_edge(NodeId(2), NodeId(3), 0, 2)
        .equivocate(NodeId(1), 0, 2);
    assert_eq!(plan.clone().without_rule(1).rules().len(), 2);
    assert_eq!(plan.clone().without_rule(9).rules().len(), 3);
    // Restricting to the triangle drops the rule naming node 3 but keeps
    // the rest (all of 0, 1, 2 and the 0→1 link exist there).
    let restricted = plan.restricted_to(&builders::triangle());
    assert_eq!(restricted.rules().len(), 2);
    assert!(restricted.faulty_nodes().iter().all(|v| v.0 < 3));
}

#[test]
fn random_among_respects_the_sender_budget() {
    let g = builders::complete(6);
    let senders: BTreeSet<NodeId> = [NodeId(2), NodeId(4)].into_iter().collect();
    for seed in 0..8u64 {
        let plan = FaultPlan::random_among(seed, &g, &senders, 8, 12);
        assert!(
            plan.faulty_nodes().is_subset(&senders),
            "seed {seed}: faulty nodes {:?} escape the sender budget",
            plan.faulty_nodes()
        );
        assert_eq!(plan, FaultPlan::random_among(seed, &g, &senders, 8, 12));
    }
    // Empty sender set: an empty plan, not a panic.
    assert!(FaultPlan::random_among(3, &g, &BTreeSet::new(), 8, 12)
        .rules()
        .is_empty());
}
