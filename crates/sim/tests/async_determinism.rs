//! Determinism and anti-aliasing pins for the asynchronous scheduling
//! adversary.
//!
//! Two properties make asynchronous certificates trustworthy. First,
//! schedules are a pure function of (assembly, strategy, policy): the same
//! seed yields the byte-identical schedule whether the run happens on this
//! thread or on a `flm_par` worker, so a certificate minted anywhere
//! replays everywhere. Second, asynchronous cache entries live in their own
//! `"async"` key domain: an async run over some assembly can never be
//! served a synchronous run's cached behavior (or vice versa), even when
//! the encoded assembly bytes are identical.

use flm_graph::{builders, NodeId};
use flm_sim::async_sched::{AsyncSystem, Strategy};
use flm_sim::device::snapshot;
use flm_sim::runcache::{self, RunKey};
use flm_sim::wire::Writer;
use flm_sim::{Decision, Device, Input, NodeCtx, Payload, RunPolicy, Tick};

/// Broadcast-once, decide-OR-when-everyone-reported: the canonical
/// asynchronous prey. Forkable, so the adversarial strategy's bivalence
/// look-ahead engages.
#[derive(Clone)]
struct WaitAll {
    my: bool,
    heard: Vec<bool>,
    acc: bool,
    decided: Option<bool>,
}

impl WaitAll {
    fn new() -> WaitAll {
        WaitAll {
            my: false,
            heard: Vec::new(),
            acc: false,
            decided: None,
        }
    }
}

impl Device for WaitAll {
    fn name(&self) -> &'static str {
        "det-wait-all"
    }
    fn init(&mut self, ctx: &NodeCtx) {
        self.my = matches!(ctx.input, Input::Bool(true));
        self.heard = vec![false; ctx.port_count()];
    }
    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        for (p, m) in inbox.iter().enumerate() {
            if let Some(m) = m {
                self.heard[p] = true;
                self.acc |= m.as_bytes() == [1];
            }
        }
        if self.decided.is_none() && self.heard.iter().all(|&h| h) {
            self.decided = Some(self.acc || self.my);
        }
        if t.0 == 0 {
            vec![Some(Payload::new(vec![u8::from(self.my)])); inbox.len()]
        } else {
            vec![None; inbox.len()]
        }
    }
    fn snapshot(&self) -> Vec<u8> {
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &[]),
            None => snapshot::undecided(&[]),
        }
    }
    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

fn assemble(n: usize) -> AsyncSystem {
    let mut sys = AsyncSystem::new(builders::complete(n));
    for v in sys.graph().nodes() {
        sys.assign(v, Box::new(WaitAll::new()), Input::Bool(v.0 == 0));
    }
    sys
}

/// Canonical schedule bytes, the form certificates and cache keys carry.
fn schedule_bytes(schedule: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(schedule.len() as u32);
    for &e in schedule {
        w.u32(e);
    }
    w.finish()
}

#[test]
fn same_seed_same_schedule_sequential_vs_parallel() {
    let strategies = [
        Strategy::Fair,
        Strategy::Random { seed: 0x5eed_0001 },
        Strategy::Adversarial {
            seed: 1,
            victim: NodeId(2),
        },
    ];
    let policy = RunPolicy::default();
    for strategy in strategies {
        let reference = assemble(4).run(&strategy, &policy).unwrap();
        let parallel = flm_par::par_map(vec![strategy; 8], |s| {
            assemble(4).run(&s, &RunPolicy::default()).unwrap()
        });
        for (i, run) in parallel.iter().enumerate() {
            assert_eq!(
                run,
                &reference,
                "worker {i} diverged from the sequential run under {}",
                strategy.describe()
            );
            assert_eq!(
                schedule_bytes(&run.schedule),
                schedule_bytes(&reference.schedule),
                "schedule bytes diverged under {}",
                strategy.describe()
            );
        }
    }
}

#[test]
fn replay_reproduces_the_recorded_run_bit_for_bit() {
    let policy = RunPolicy::default();
    for strategy in [
        Strategy::Fair,
        Strategy::Adversarial {
            seed: 0,
            victim: NodeId(0),
        },
    ] {
        let recorded = assemble(4).run(&strategy, &policy).unwrap();
        let replayed = assemble(4).replay(&recorded.schedule, &policy).unwrap();
        assert_eq!(replayed.schedule, recorded.schedule);
        assert_eq!(replayed.decisions, recorded.decisions);
        assert_eq!(replayed.pending, recorded.pending);
        assert_eq!(replayed.budget_exhausted, recorded.budget_exhausted);
        assert_eq!(
            schedule_bytes(&replayed.schedule),
            schedule_bytes(&recorded.schedule),
            "replay must reproduce the canonical schedule bytes exactly"
        );
    }
}

#[test]
fn adversarial_starvation_is_stable_across_victims() {
    // Each victim choice is its own deterministic universe: running twice
    // with the same (seed, victim) is byte-identical, and distinct victims
    // leave their own node (and only pending channels aimed at it) starved.
    let policy = RunPolicy::default();
    for victim in assemble(4).graph().nodes() {
        let strategy = Strategy::Adversarial { seed: 0, victim };
        let a = assemble(4).run(&strategy, &policy).unwrap();
        let b = assemble(4).run(&strategy, &policy).unwrap();
        assert_eq!(a, b, "same (seed, victim) must be reproducible");
        assert_eq!(a.undecided(), vec![victim]);
        assert_eq!(a.decisions[victim.index()], None::<Decision>);
    }
}

#[test]
fn async_keys_never_alias_sync_domains() {
    // The domain tag is part of the compared key bytes: identical payloads
    // under "async" and any synchronous domain are different keys.
    let payload = b"det-pin:assembly-bytes".to_vec();
    let async_key = RunKey::new("async", payload.clone());
    for sync_domain in ["cover", "link", "clock", "discrete"] {
        let sync_key = RunKey::new(sync_domain, payload.clone());
        assert_ne!(
            async_key.bytes(),
            sync_key.bytes(),
            "async key aliased the {sync_domain} domain"
        );
    }
    // The NUL separator makes the split unambiguous: a hostile payload
    // cannot smuggle itself into another domain by prefixing domain bytes.
    let smuggled = RunKey::new("asy", b"nc\0payload".to_vec());
    let honest = RunKey::new("async", b"payload".to_vec());
    assert_ne!(smuggled.bytes(), honest.bytes());
}

#[test]
fn async_cache_entries_do_not_serve_sync_probes() {
    // Same key payload, different domain: a cached async run must never be
    // handed to a synchronous memoization (and the reverse). The sync probe
    // under its own domain misses and runs its own closure.
    let payload = b"det-pin:anti-alias-probe".to_vec();
    let async_key = RunKey::new("async", payload.clone());

    let run = runcache::memoize_async::<&str>(&async_key, || {
        Ok(assemble(3)
            .run(&Strategy::Fair, &RunPolicy::default())
            .unwrap())
    })
    .unwrap();
    // Warm: the same async key now hits without re-running.
    let warm =
        runcache::memoize_async::<&str>(&async_key, || panic!("async hit expected")).unwrap();
    assert_eq!(*warm, *run);

    // A discrete probe with the byte-identical payload must not see it.
    let sync_key = RunKey::new("discrete", payload);
    let mut sync_ran = false;
    let _ = runcache::memoize_discrete::<&str>(&sync_key, || {
        sync_ran = true;
        let mut sys = flm_sim::System::new(builders::triangle());
        for v in [NodeId(0), NodeId(1), NodeId(2)] {
            sys.assign(
                v,
                Box::new(flm_sim::devices::NaiveMajorityDevice::new()),
                Input::Bool(true),
            );
        }
        Ok(sys.run(RunPolicy::default().max_ticks))
    })
    .unwrap();
    assert!(
        sync_ran,
        "a synchronous probe was served an asynchronous cache entry"
    );
}
