//! Chaos-campaign vocabulary: sweep grammar, run specs, and the campaign
//! report.
//!
//! A *campaign* is a seed-deterministic sweep over protocols × graph
//! families × fault-plan sizes. This module owns the protocol-agnostic
//! pieces — [`GraphFamily`] (the seeded topologies swept), [`ProblemKind`]
//! (which agreement condition a protocol is probed against),
//! [`CampaignConfig`] and its cross-product of [`RunSpec`]s, and the
//! [`CampaignReport`] JSON — while the driver that actually resolves
//! protocols, runs systems, and shrinks violations lives in `crates/bench`
//! (it needs the registry and the refutation stack, which sit above this
//! crate).
//!
//! Everything here is a pure function of the campaign seed: the same
//! [`CampaignConfig`] always yields the same specs, the same plans, and —
//! because the simulator itself is deterministic — byte-identical
//! certificates and reports.

use std::collections::BTreeSet;

use flm_graph::{builders, Graph, GraphError, NodeId};

use crate::auth::mix64;
use crate::faults::FaultPlan;
use crate::system::RunPolicy;

/// A seeded topology family the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFamily {
    /// The cycle `C_n` (`n ≥ 3`).
    Ring {
        /// Node count.
        n: usize,
    },
    /// The complete graph `K_n` (`n ≥ 2`).
    Complete {
        /// Node count.
        n: usize,
    },
    /// A seeded random `d`-regular graph ([`builders::random_regular`]).
    RandomRegular {
        /// Node count.
        n: usize,
        /// Uniform degree.
        d: usize,
    },
    /// A seeded 3-regular expander candidate ([`builders::expander`]).
    Expander {
        /// Node count (even, `≥ 4`).
        n: usize,
    },
    /// The `weight`-fold covering ring of `C_base`
    /// ([`builders::ring_cover`]).
    RingCover {
        /// Base cycle size (`≥ 3`).
        base: usize,
        /// Covering weight (`≥ 1`).
        weight: usize,
    },
}

impl GraphFamily {
    /// The family's report / certificate-file name, e.g. `ring6`,
    /// `regular10x3`, `cover3w4`.
    pub fn name(&self) -> String {
        match *self {
            GraphFamily::Ring { n } => format!("ring{n}"),
            GraphFamily::Complete { n } => format!("complete{n}"),
            GraphFamily::RandomRegular { n, d } => format!("regular{n}x{d}"),
            GraphFamily::Expander { n } => format!("expander{n}"),
            GraphFamily::RingCover { base, weight } => format!("cover{base}w{weight}"),
        }
    }

    /// The number of nodes the built graph will have — the shrinker's
    /// primary size metric, available without building.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphFamily::Ring { n }
            | GraphFamily::Complete { n }
            | GraphFamily::RandomRegular { n, .. }
            | GraphFamily::Expander { n } => n,
            GraphFamily::RingCover { base, weight } => base * weight,
        }
    }

    /// Builds the graph under `seed` (seeded families only consult it;
    /// fixed families ignore it).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BadParameter`] for degenerate parameters —
    /// the campaign records these as incidents rather than panicking.
    pub fn build(&self, seed: u64) -> Result<Graph, GraphError> {
        let bad = |reason: String| GraphError::BadParameter { reason };
        match *self {
            GraphFamily::Ring { n } => {
                if n < 3 {
                    return Err(bad(format!("a ring needs at least 3 nodes, got {n}")));
                }
                Ok(builders::cycle(n))
            }
            GraphFamily::Complete { n } => {
                if n < 2 {
                    return Err(bad(format!(
                        "a complete graph needs at least 2 nodes, got {n}"
                    )));
                }
                Ok(builders::complete(n))
            }
            GraphFamily::RandomRegular { n, d } => builders::random_regular(n, d, seed),
            GraphFamily::Expander { n } => builders::expander(n, seed),
            GraphFamily::RingCover { base, weight } => builders::ring_cover(base, weight),
        }
    }

    /// Strictly smaller variants of the same family — each with fewer
    /// nodes and parameters that still validate. The shrinker probes these
    /// in order, so the ordering (halving before decrement) is part of the
    /// determinism contract.
    pub fn shrink_candidates(&self) -> Vec<GraphFamily> {
        let mut out = Vec::new();
        let mut push = |fam: GraphFamily| {
            if fam.node_count() < self.node_count() && !out.contains(&fam) {
                out.push(fam);
            }
        };
        match *self {
            GraphFamily::Ring { n } => {
                if n / 2 >= 3 {
                    push(GraphFamily::Ring { n: n / 2 });
                }
                if n > 3 {
                    push(GraphFamily::Ring { n: n - 1 });
                }
            }
            GraphFamily::Complete { n } => {
                if n / 2 >= 2 {
                    push(GraphFamily::Complete { n: n / 2 });
                }
                if n > 2 {
                    push(GraphFamily::Complete { n: n - 1 });
                }
            }
            GraphFamily::RandomRegular { n, d } => {
                for m in [n / 2, n - 1] {
                    if d < m && (m * d) % 2 == 0 {
                        push(GraphFamily::RandomRegular { n: m, d });
                    }
                }
            }
            GraphFamily::Expander { n } => {
                let half = (n / 2) & !1;
                if half >= 4 {
                    push(GraphFamily::Expander { n: half });
                }
                if n - 2 >= 4 {
                    push(GraphFamily::Expander { n: n - 2 });
                }
            }
            GraphFamily::RingCover { base, weight } => {
                if weight / 2 >= 1 {
                    push(GraphFamily::RingCover {
                        base,
                        weight: weight / 2,
                    });
                }
                if weight > 1 {
                    push(GraphFamily::RingCover {
                        base,
                        weight: weight - 1,
                    });
                }
                if base > 3 {
                    push(GraphFamily::RingCover {
                        base: base - 1,
                        weight,
                    });
                }
            }
        }
        out
    }
}

/// The scheduling model a campaign cell runs under — the campaign's third
/// sweep axis next to topology and fault plans.
///
/// `Sync` is the classic lock-step round model every pre-existing campaign
/// ran; the async kinds drive the same protocol through the per-message
/// scheduler of [`crate::async_sched`], either with the fair round-robin
/// chooser or with the starvation adversaries. Async cells probe the
/// scheduling model itself, so they only pair with the fault-free plan
/// (`rule_count == 0`) and with problems whose devices speak boolean
/// agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Lock-step synchronous rounds ([`crate::system::System`]).
    Sync,
    /// Per-message asynchronous delivery under the fair round-robin
    /// chooser.
    AsyncFair,
    /// Per-message asynchronous delivery under the starvation adversaries
    /// (one per victim node, bivalence look-ahead enabled).
    AsyncAdversarial,
}

impl SchedulerKind {
    /// Every kind, in the canonical sweep order.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Sync,
        SchedulerKind::AsyncFair,
        SchedulerKind::AsyncAdversarial,
    ];

    /// The kind's report / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Sync => "sync",
            SchedulerKind::AsyncFair => "async-fair",
            SchedulerKind::AsyncAdversarial => "async-adversarial",
        }
    }

    /// Parses a CLI spelling of the kind.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted spellings.
    pub fn parse(name: &str) -> Result<SchedulerKind, String> {
        SchedulerKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                format!("unknown scheduler {name:?} (want sync, async-fair, or async-adversarial)")
            })
    }
}

/// The agreement condition a campaign probe checks a protocol against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProblemKind {
    /// Byzantine agreement (validity + agreement + termination).
    ByzantineAgreement,
    /// Weak agreement (agreement only binding when all nodes are correct).
    WeakAgreement,
    /// The Byzantine firing squad (synchronized firing).
    FiringSquad,
    /// Approximate agreement, simple form (range validity + ε-agreement).
    ApproxAgreement,
}

impl ProblemKind {
    /// Every kind, in the canonical sweep order.
    pub const ALL: [ProblemKind; 4] = [
        ProblemKind::ByzantineAgreement,
        ProblemKind::WeakAgreement,
        ProblemKind::FiringSquad,
        ProblemKind::ApproxAgreement,
    ];

    /// The kind's report name.
    pub fn name(self) -> &'static str {
        match self {
            ProblemKind::ByzantineAgreement => "byzantine-agreement",
            ProblemKind::WeakAgreement => "weak-agreement",
            ProblemKind::FiringSquad => "firing-squad",
            ProblemKind::ApproxAgreement => "approx-agreement",
        }
    }

    /// Whether the asynchronous scheduler axis probes this kind: the async
    /// refuter assigns boolean inputs and checks agreement/termination, so
    /// only the boolean-agreement problems are probeable.
    pub fn async_probeable(self) -> bool {
        matches!(
            self,
            ProblemKind::ByzantineAgreement | ProblemKind::WeakAgreement
        )
    }
}

/// A campaign: the seed, the sweep dimensions, and the run policy every
/// probe is contained under.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every derived seed (graph builds, fault plans) is a
    /// pure function of it.
    pub seed: u64,
    /// Protocols to probe, each tagged with the condition to check.
    pub protocols: Vec<(ProblemKind, String)>,
    /// Topology families to sweep.
    pub graphs: Vec<GraphFamily>,
    /// Fault-plan sizes (rule counts) to sweep; `0` probes the fault-free
    /// run.
    pub rule_counts: Vec<usize>,
    /// Scheduling models to sweep. `[Sync]` reproduces the classic
    /// synchronous campaign exactly (same specs, same seeds, same
    /// certificates); adding async kinds appends async cells without
    /// perturbing the synchronous ones.
    pub schedulers: Vec<SchedulerKind>,
    /// Fault budget: plans draw their senders from at most `f` nodes, and
    /// a probe whose faulty + degraded set exceeds `f` is an incident, not
    /// a violation.
    pub f: usize,
    /// Containment policy for every run.
    pub policy: RunPolicy,
}

impl CampaignConfig {
    /// The full cross-product of run specs, in the canonical order
    /// (protocols outermost, then graphs, then rule counts, then
    /// schedulers). Indices and derived seeds are stable: the same config
    /// yields the same specs, and a `[Sync]`-only scheduler axis yields
    /// exactly the specs the pre-axis campaign produced. Async cells skip
    /// fault plans (the async model has no injectors) and non-boolean
    /// problems, so they never multiply the sweep blindly.
    pub fn specs(&self) -> Vec<RunSpec> {
        let mut out = Vec::new();
        for (problem, protocol) in &self.protocols {
            for graph in &self.graphs {
                for &rule_count in &self.rule_counts {
                    for &scheduler in &self.schedulers {
                        if scheduler != SchedulerKind::Sync
                            && (rule_count != 0 || !problem.async_probeable())
                        {
                            continue;
                        }
                        let index = out.len();
                        out.push(RunSpec {
                            index,
                            problem: *problem,
                            protocol: protocol.clone(),
                            graph: *graph,
                            graph_seed: mix64(self.seed ^ 0x6EAF ^ ((index as u64) << 8)),
                            plan_seed: mix64(self.seed ^ 0xFA17 ^ ((index as u64) << 8)),
                            rule_count,
                            scheduler,
                            f: self.f,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One cell of the sweep: a protocol, a topology, and fault-plan
/// parameters. Carries plan *parameters*, not a built plan — the plan
/// depends on the built graph and the protocol's horizon, both of which
/// the driver derives.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Position in the sweep (also the certificate file index).
    pub index: usize,
    /// Condition checked.
    pub problem: ProblemKind,
    /// Registry name of the protocol probed.
    pub protocol: String,
    /// Topology probed on.
    pub graph: GraphFamily,
    /// Seed for the graph build.
    pub graph_seed: u64,
    /// Seed for the fault plan.
    pub plan_seed: u64,
    /// Number of fault rules to inject.
    pub rule_count: usize,
    /// Scheduling model the cell runs under.
    pub scheduler: SchedulerKind,
    /// Fault budget.
    pub f: usize,
}

impl RunSpec {
    /// The seed-deterministic sender set for fault injection on `g`: at
    /// most `min(f, n − 1)` distinct nodes (always leaving at least one
    /// node correct).
    pub fn senders(&self, g: &Graph) -> BTreeSet<NodeId> {
        let n = g.node_count();
        let want = self.f.min(n.saturating_sub(1));
        let mut senders = BTreeSet::new();
        let mut k = 0u64;
        while senders.len() < want && k < 64 * (n as u64 + 1) {
            senders.insert(NodeId((mix64(self.plan_seed ^ k) % n as u64) as u32));
            k += 1;
        }
        senders
    }

    /// The spec's fault plan on `g` for a run of `horizon` ticks: a
    /// seed-deterministic [`FaultPlan::random_among`] over the spec's
    /// sender set. `rule_count == 0` yields the empty (fault-free) plan.
    pub fn plan(&self, g: &Graph, horizon: u32) -> FaultPlan {
        if self.rule_count == 0 {
            return FaultPlan::new(self.plan_seed);
        }
        FaultPlan::random_among(
            self.plan_seed,
            g,
            &self.senders(g),
            horizon,
            self.rule_count,
        )
    }
}

/// A probe that could not complete: a structured record instead of a
/// crash. Build failures, contained panics, budget blowouts, and
/// self-check failures all land here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Index of the [`RunSpec`] that hit it.
    pub spec: usize,
    /// Which stage failed (`build`, `run`, `replay`, `budget`,
    /// `self-check`).
    pub stage: String,
    /// Human-readable detail.
    pub detail: String,
}

/// The dimensions the shrinker minimizes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioDims {
    /// Nodes in the graph.
    pub nodes: usize,
    /// Fault-plan rules.
    pub rules: usize,
    /// Run horizon in ticks.
    pub horizon: u32,
}

/// One violation found and shrunk, as recorded in the campaign report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Index of the originating [`RunSpec`].
    pub spec: usize,
    /// Problem kind name.
    pub problem: String,
    /// Protocol probed.
    pub protocol: String,
    /// Graph family name (of the *original* scenario).
    pub graph: String,
    /// Scheduling model the violation was found under ([`SchedulerKind::name`]).
    pub scheduler: String,
    /// The violated condition, rendered.
    pub condition: String,
    /// Scenario size as found.
    pub original: ScenarioDims,
    /// Scenario size after shrinking.
    pub shrunk: ScenarioDims,
    /// Shrink probes attempted.
    pub shrink_attempts: usize,
    /// Shrink steps accepted.
    pub shrink_accepted: usize,
    /// Certificate file name (relative to the campaign directory).
    pub cert_file: String,
}

/// The campaign report: seed, sweep dimensions, totals, violations,
/// incidents. Serialized with [`CampaignReport::to_json`] next to the
/// certificate files.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Protocols swept.
    pub protocols: usize,
    /// Graph families swept.
    pub graphs: usize,
    /// Rule counts swept.
    pub rule_counts: usize,
    /// Scheduling models swept.
    pub schedulers: usize,
    /// Runs attempted (the full cross-product).
    pub runs: usize,
    /// Violations found, shrunk, and emitted as certificates.
    pub violations: Vec<ViolationRecord>,
    /// Probes that could not complete.
    pub incidents: Vec<Incident>,
}

impl CampaignReport {
    /// Mean shrink ratio over violations, in nodes: `original.nodes /
    /// shrunk.nodes` averaged (`1.0` when the campaign found nothing). A
    /// deterministic quality metric — same seed, same ratio.
    pub fn mean_shrink_ratio(&self) -> f64 {
        if self.violations.is_empty() {
            return 1.0;
        }
        let sum: f64 = self
            .violations
            .iter()
            .map(|v| v.original.nodes as f64 / v.shrunk.nodes.max(1) as f64)
            .sum();
        sum / self.violations.len() as f64
    }

    /// Deterministic JSON rendering: no timestamps, no host data, fixed
    /// key order — the same campaign always serializes to the same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"sweep\": {{\"protocols\": {}, \"graphs\": {}, \"rule_counts\": {}, \
             \"schedulers\": {}}},\n",
            self.protocols, self.graphs, self.rule_counts, self.schedulers
        ));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str(&format!(
            "  \"mean_shrink_ratio_nodes\": {:.4},\n",
            self.mean_shrink_ratio()
        ));
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let dims = |d: &ScenarioDims| {
                format!(
                    "{{\"nodes\": {}, \"rules\": {}, \"horizon\": {}}}",
                    d.nodes, d.rules, d.horizon
                )
            };
            s.push_str(&format!(
                "    {{\"spec\": {}, \"problem\": {}, \"protocol\": {}, \"graph\": {}, \
                 \"scheduler\": {}, \"condition\": {}, \"original\": {}, \"shrunk\": {}, \
                 \"shrink_attempts\": {}, \"shrink_accepted\": {}, \"cert\": {}}}{}\n",
                v.spec,
                json_string(&v.problem),
                json_string(&v.protocol),
                json_string(&v.graph),
                json_string(&v.scheduler),
                json_string(&v.condition),
                dims(&v.original),
                dims(&v.shrunk),
                v.shrink_attempts,
                v.shrink_accepted,
                json_string(&v.cert_file),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"incidents\": [\n");
        for (i, inc) in self.incidents.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"spec\": {}, \"stage\": {}, \"detail\": {}}}{}\n",
                inc.spec,
                json_string(&inc.stage),
                json_string(&inc.detail),
                if i + 1 < self.incidents.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Renders `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            protocols: vec![
                (ProblemKind::ByzantineAgreement, "NaiveMajority".into()),
                (ProblemKind::WeakAgreement, "WeakViaBA(EIG(f=1))".into()),
            ],
            graphs: vec![
                GraphFamily::Ring { n: 6 },
                GraphFamily::Complete { n: 4 },
                GraphFamily::RandomRegular { n: 8, d: 3 },
            ],
            rule_counts: vec![0, 2],
            schedulers: vec![SchedulerKind::Sync],
            f: 1,
            policy: RunPolicy::default(),
        }
    }

    #[test]
    fn specs_cover_the_cross_product_deterministically() {
        let config = smoke_config();
        let specs = config.specs();
        assert_eq!(specs.len(), 2 * 3 * 2);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.scheduler, SchedulerKind::Sync);
        }
        let again = config.specs();
        assert_eq!(specs.len(), again.len());
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.graph_seed, b.graph_seed);
            assert_eq!(a.plan_seed, b.plan_seed);
        }
    }

    #[test]
    fn async_scheduler_cells_skip_fault_plans_and_foreign_problems() {
        let mut config = smoke_config();
        let sync_only = config.specs().len();
        config.schedulers = vec![
            SchedulerKind::Sync,
            SchedulerKind::AsyncFair,
            SchedulerKind::AsyncAdversarial,
        ];
        let specs = config.specs();
        // Async cells: both protocols are boolean-agreement kinds, paired
        // only with rule_count == 0, across 3 graphs and 2 async kinds.
        assert_eq!(specs.len(), sync_only + 2 * 3 * 2);
        for s in &specs {
            if s.scheduler != SchedulerKind::Sync {
                assert_eq!(s.rule_count, 0, "async cells are fault-free");
                assert!(s.problem.async_probeable());
            }
        }
        // The sync prefix of the sweep is NOT index-stable when async kinds
        // interleave, but every sync cell's (protocol, graph, rules) cross
        // product must still be complete.
        let sync_cells = specs
            .iter()
            .filter(|s| s.scheduler == SchedulerKind::Sync)
            .count();
        assert_eq!(sync_cells, sync_only);
    }

    #[test]
    fn scheduler_kinds_parse_their_own_names() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(SchedulerKind::parse("asynchronous").is_err());
    }

    #[test]
    fn spec_plans_respect_the_fault_budget() {
        let config = smoke_config();
        for spec in config.specs() {
            let g = spec.graph.build(spec.graph_seed).unwrap();
            let plan = spec.plan(&g, 8);
            assert!(
                plan.faulty_nodes().len() <= spec.f,
                "spec {} exceeds f={}",
                spec.index,
                spec.f
            );
            if spec.rule_count == 0 {
                assert!(plan.rules().is_empty());
            }
        }
    }

    #[test]
    fn graph_families_build_and_shrink_within_family() {
        for fam in [
            GraphFamily::Ring { n: 8 },
            GraphFamily::Complete { n: 5 },
            GraphFamily::RandomRegular { n: 10, d: 3 },
            GraphFamily::Expander { n: 12 },
            GraphFamily::RingCover { base: 3, weight: 4 },
        ] {
            let g = fam.build(7).unwrap();
            assert_eq!(g.node_count(), fam.node_count(), "{}", fam.name());
            for smaller in fam.shrink_candidates() {
                assert!(smaller.node_count() < fam.node_count());
                // Every candidate must itself build.
                assert!(
                    smaller.build(7).is_ok(),
                    "{} -> {} fails to build",
                    fam.name(),
                    smaller.name()
                );
            }
        }
        // Degenerate family parameters are structured errors.
        assert!(GraphFamily::Ring { n: 2 }.build(0).is_err());
        assert!(GraphFamily::RandomRegular { n: 5, d: 3 }.build(0).is_err());
    }

    #[test]
    fn report_json_is_deterministic_and_escaped() {
        let report = CampaignReport {
            seed: 9,
            protocols: 2,
            graphs: 3,
            rule_counts: 2,
            schedulers: 1,
            runs: 12,
            violations: vec![ViolationRecord {
                spec: 4,
                problem: "byzantine-agreement".into(),
                protocol: "Table(7)".into(),
                graph: "ring6".into(),
                scheduler: "sync".into(),
                condition: "agreement \"broken\"".into(),
                original: ScenarioDims {
                    nodes: 6,
                    rules: 2,
                    horizon: 8,
                },
                shrunk: ScenarioDims {
                    nodes: 3,
                    rules: 0,
                    horizon: 4,
                },
                shrink_attempts: 10,
                shrink_accepted: 3,
                cert_file: "c004-ba.flmc".into(),
            }],
            incidents: vec![Incident {
                spec: 7,
                stage: "run".into(),
                detail: "panic: index out of bounds".into(),
            }],
        };
        let a = report.to_json();
        assert_eq!(a, report.to_json());
        assert!(a.contains("\\\"broken\\\""));
        assert!(a.contains("\"mean_shrink_ratio_nodes\": 2.0000"));
        assert!(a.contains("\"runs\": 12"));
    }
}
