//! Reference devices: simple honest machines and deterministic "arbitrary
//! protocol" generators.
//!
//! The impossibility theorems are universally quantified over devices, so
//! the test suite needs devices of every stripe to throw at the refuters:
//! trivially silent ones, naive voting protocols, and [`TableDevice`] — a
//! deterministic pseudo-random protocol family indexed by seed, which lets
//! proptest approximate "for all devices".

use crate::auth::mix64;
use crate::device::{snapshot, Device, Input, NodeCtx, Payload};
use crate::Tick;

/// Decides its own input immediately and never communicates.
///
/// Satisfies validity trivially and agreement only when all inputs agree —
/// the simplest member of the device zoo.
#[derive(Debug, Default, Clone)]
pub struct ConstantDevice {
    input: Input,
    ports: usize,
}

impl ConstantDevice {
    /// Creates the device.
    pub fn new() -> Self {
        ConstantDevice {
            input: Input::None,
            ports: 0,
        }
    }
}

impl Device for ConstantDevice {
    fn name(&self) -> &'static str {
        "Constant"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input;
        self.ports = ctx.port_count();
    }

    fn step(&mut self, _t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        inbox.iter().map(|_| None).collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        match self.input {
            Input::Bool(b) => snapshot::decided_bool(b, &[]),
            Input::Real(r) => snapshot::decided_real(r, &[]),
            Input::None => snapshot::undecided(&[]),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// A naive one-round majority voter: broadcasts its Boolean input at tick 0,
/// then decides the majority of everything seen (self included) at tick 1.
///
/// Correct when everyone is honest and the graph is complete; defeated by a
/// single equivocating fault — a good foil for the refuters and for the
/// adversary zoo.
#[derive(Debug, Default, Clone)]
pub struct NaiveMajorityDevice {
    input: bool,
    ones: u32,
    zeros: u32,
    decided: Option<bool>,
}

impl NaiveMajorityDevice {
    /// Creates the device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Device for NaiveMajorityDevice {
    fn name(&self) -> &'static str {
        "NaiveMajority"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input.as_bool().unwrap_or(false);
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        match t.0 {
            0 => {
                if self.input {
                    self.ones += 1;
                } else {
                    self.zeros += 1;
                }
                inbox
                    .iter()
                    .map(|_| Some(vec![u8::from(self.input)].into()))
                    .collect()
            }
            1 => {
                for m in inbox.iter().flatten() {
                    if m.first() == Some(&1) {
                        self.ones += 1;
                    } else {
                        self.zeros += 1;
                    }
                }
                self.decided = Some(self.ones > self.zeros);
                inbox.iter().map(|_| None).collect()
            }
            _ => inbox.iter().map(|_| None).collect(),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let state = [self.ones as u8, self.zeros as u8];
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

/// A deterministic pseudo-random protocol, indexed by `seed`.
///
/// At each tick it mixes everything it has heard into a rolling hash and
/// emits seed-derived bytes on every port; at `decide_tick` it decides a
/// Boolean derived from its input and the hash. Distinct seeds give wildly
/// different (but perfectly deterministic) protocols — proptest runs the
/// refuters against hundreds of them to exercise the universal
/// quantification in the theorems.
#[derive(Debug, Clone)]
pub struct TableDevice {
    seed: u64,
    decide_tick: u32,
    hash: u64,
    input: Input,
    decided: Option<bool>,
}

impl TableDevice {
    /// Creates a protocol from a seed, deciding at `decide_tick`.
    pub fn new(seed: u64, decide_tick: u32) -> Self {
        TableDevice {
            seed,
            decide_tick,
            hash: mix64(seed),
            input: Input::None,
            decided: None,
        }
    }
}

impl Device for TableDevice {
    fn name(&self) -> &'static str {
        "Table"
    }

    fn init(&mut self, ctx: &NodeCtx) {
        self.input = ctx.input;
        self.hash = mix64(
            self.hash
                ^ u64::from(ctx.node.0)
                ^ match ctx.input {
                    Input::Bool(b) => 0x10 | u64::from(b),
                    Input::Real(r) => r.to_bits(),
                    Input::None => 0,
                },
        );
    }

    fn step(&mut self, t: Tick, inbox: &[Option<Payload>]) -> Vec<Option<Payload>> {
        for (p, m) in inbox.iter().enumerate() {
            if let Some(m) = m {
                for &b in m {
                    self.hash = mix64(self.hash ^ u64::from(b) ^ ((p as u64) << 32));
                }
            }
        }
        if t.0 == self.decide_tick {
            // A seed-dependent blend of input and history: arbitrary, but
            // deterministic — exactly what "some device" means.
            let bit = match self.input {
                Input::Bool(b) => {
                    if self.seed.is_multiple_of(3) {
                        b
                    } else {
                        (self.hash & 1) == 1
                    }
                }
                _ => (self.hash & 1) == 1,
            };
            self.decided = Some(bit);
        }
        (0..inbox.len())
            .map(|p| {
                let h = mix64(self.hash ^ (p as u64) ^ (u64::from(t.0) << 16));
                // Sometimes stay silent: silence is part of the space too.
                if h.is_multiple_of(5) {
                    None
                } else {
                    Some(vec![(h >> 8) as u8, (h >> 16) as u8].into())
                }
            })
            .collect()
    }

    fn snapshot(&self) -> Vec<u8> {
        let state = self.hash.to_be_bytes();
        match self.decided {
            Some(b) => snapshot::decided_bool(b, &state),
            None => snapshot::undecided(&state),
        }
    }

    fn fork(&self) -> Option<Box<dyn Device>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use flm_graph::{builders, NodeId};

    #[test]
    fn constant_device_decides_input() {
        let mut sys = System::new(builders::triangle());
        sys.assign(
            NodeId(0),
            Box::new(ConstantDevice::new()),
            Input::Bool(true),
        );
        sys.assign(
            NodeId(1),
            Box::new(ConstantDevice::new()),
            Input::Bool(false),
        );
        sys.assign(NodeId(2), Box::new(ConstantDevice::new()), Input::Real(0.5));
        let b = sys.run(2);
        use crate::device::Decision;
        assert_eq!(b.node(NodeId(0)).decision(), Some(Decision::Bool(true)));
        assert_eq!(b.node(NodeId(1)).decision(), Some(Decision::Bool(false)));
        assert_eq!(b.node(NodeId(2)).decision(), Some(Decision::Real(0.5)));
    }

    #[test]
    fn naive_majority_agrees_when_honest() {
        let n = 5;
        let mut sys = System::new(builders::complete(n));
        for v in sys.graph().nodes() {
            sys.assign(
                v,
                Box::new(NaiveMajorityDevice::new()),
                Input::Bool(v.0 < 2), // two 1s, three 0s
            );
        }
        let b = sys.run(3);
        for v in b.graph().nodes() {
            assert_eq!(
                b.node(v).decision(),
                Some(crate::device::Decision::Bool(false))
            );
        }
    }

    #[test]
    fn table_device_is_deterministic_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut sys = System::new(builders::triangle());
            for v in sys.graph().nodes() {
                sys.assign(
                    v,
                    Box::new(TableDevice::new(seed, 3)),
                    Input::Bool(v.0 == 0),
                );
            }
            sys.run(5)
        };
        let (a, b, c) = (run(1), run(1), run(2));
        assert_eq!(a.node(NodeId(0)).snaps, b.node(NodeId(0)).snaps);
        assert_ne!(a.node(NodeId(0)).snaps, c.node(NodeId(0)).snaps);
        // Decisions exist by the horizon.
        for v in a.graph().nodes() {
            assert!(a.node(v).decision().is_some());
        }
    }
}
