//! Whole-run memoization for deterministic systems.
//!
//! The model's determinism axiom — a system has exactly one behavior — is
//! what makes the refuters sound, and it is also a perf lever: a run's
//! behavior is a pure function of the graph, the devices installed (named
//! through the protocol registry), the wiring, the inputs, the run policy,
//! and the horizon. This module caches behaviors keyed by a canonical byte
//! encoding of exactly those ingredients, so re-executions that are
//! byte-identical to a run already performed (chain links sharing one
//! covering run, `flm-audit --timeline` replaying the link it just
//! verified, the clock refuter's verify pass re-running its own ring) cost
//! a lookup instead of a simulation.
//!
//! # Soundness
//!
//! A cache hit returns the behavior of *some* earlier run whose full
//! canonical key — every input of the run function — was byte-identical
//! (fingerprints are only an index; the stored key bytes are compared on
//! every probe, so FNV collisions cannot alias two different runs). Under
//! the determinism axiom that earlier behavior *is* this run's behavior.
//! The one representation choice is that devices enter the key by their
//! protocol's registry name rather than by code identity; that is the
//! registry's standing contract (one name, one device family), the same
//! contract `flm-audit` already relies on to rebuild devices from a
//! certificate's protocol string.
//!
//! Every run-level check downstream of a memoized run (scenario matching,
//! degradation accounting, decision comparison) still executes on every
//! call — the cache replaces the simulation, never the checking.
//!
//! # Controls
//!
//! * `FLM_RUNCACHE=0` disables the cache process-wide.
//! * [`bypass`] disables it for the current thread while a closure runs —
//!   the differential tests and the cold legs of the bench suites use it.
//! * The store is bounded ([`MAX_ENTRIES`] entries by default, overridable
//!   with `FLM_RUNCACHE_CAP`, and [`MAX_VALUE_BYTES`]) with least-recently-
//!   used eviction, so long sweeps cannot grow memory without bound while
//!   hot behaviors (a covering run shared by every link of a chain) stay
//!   resident.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::async_sched::AsyncRun;
use crate::behavior::SystemBehavior;
use crate::clock::ClockBehavior;

/// Default maximum number of cached behaviors before LRU eviction.
/// Override with `FLM_RUNCACHE_CAP=<n>` (read once per process).
pub const MAX_ENTRIES: usize = 512;

/// Maximum total approximate value bytes held before LRU eviction.
pub const MAX_VALUE_BYTES: u64 = 64 << 20;

/// The effective entry cap: `FLM_RUNCACHE_CAP` if set to a positive
/// integer, else [`MAX_ENTRIES`].
pub fn max_entries() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FLM_RUNCACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(MAX_ENTRIES)
    })
}

/// A canonical cache key: the full encoded run ingredients plus their
/// FNV-1a fingerprint (an index, not a proof of equality — probes compare
/// the full bytes).
#[derive(Debug, Clone)]
pub struct RunKey {
    bytes: Vec<u8>,
    fp: u64,
}

impl RunKey {
    /// Builds a key from a domain tag (which run function this is, e.g.
    /// `"cover"` or `"link"`) and the canonical encoding of every input of
    /// that run function.
    pub fn new(domain: &str, payload: Vec<u8>) -> RunKey {
        let mut bytes = Vec::with_capacity(domain.len() + 1 + payload.len());
        bytes.extend_from_slice(domain.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&payload);
        let fp = fingerprint(&bytes);
        RunKey { bytes, fp }
    }

    /// Reconstitutes a key from its full canonical bytes (the exact slice
    /// [`RunKey::bytes`] returned, e.g. read back from a durable sidecar or
    /// received over the wire). The fingerprint is recomputed, so a key
    /// round-trips byte-for-byte: `RunKey::from_bytes(k.bytes().to_vec())`
    /// is `k`.
    pub fn from_bytes(bytes: Vec<u8>) -> RunKey {
        let fp = fingerprint(&bytes);
        RunKey { bytes, fp }
    }

    /// The FNV-1a fingerprint of the key bytes.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// The full canonical key bytes (domain tag, NUL, payload). Durable
    /// caches persist these next to each entry so a probe can compare the
    /// whole key, exactly as the in-memory buckets do — fingerprints index,
    /// bytes decide.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and good enough as a bucket
/// index when full keys are compared on every probe.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone)]
enum CachedValue {
    Discrete(Arc<SystemBehavior>),
    Clock(Arc<ClockBehavior>),
    Async(Arc<AsyncRun>),
}

struct Entry {
    seq: u64,
    key: Vec<u8>,
    value: CachedValue,
    approx_bytes: u64,
}

#[derive(Default)]
struct Store {
    buckets: HashMap<u64, Vec<Entry>>,
    /// Recency queue of `(fingerprint, seq)` pairs. A hit re-stamps the
    /// entry's `seq` and pushes a fresh pair, so pairs whose `seq` no longer
    /// matches any entry are stale and skipped during eviction — that skip
    /// is exactly what turns the FIFO queue into an LRU.
    order: VecDeque<(u64, u64)>,
    next_seq: u64,
    entry_count: usize,
    total_bytes: u64,
}

impl Store {
    fn lookup_touch(&mut self, key: &RunKey) -> Option<(CachedValue, u64)> {
        let bucket = self.buckets.get_mut(&key.fp)?;
        let entry = bucket.iter_mut().find(|e| e.key == key.bytes)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.seq = seq;
        let found = (entry.value.clone(), entry.approx_bytes);
        self.order.push_back((key.fp, seq));
        // Hits grow `order` with stale pairs; compact occasionally so it
        // stays proportional to the live entry count.
        if self.order.len() > self.entry_count * 2 + 64 {
            let live: std::collections::HashSet<(u64, u64)> = self
                .buckets
                .iter()
                .flat_map(|(&fp, b)| b.iter().map(move |e| (fp, e.seq)))
                .collect();
            self.order.retain(|pair| live.contains(pair));
        }
        Some(found)
    }

    fn insert(&mut self, key: &RunKey, value: CachedValue, approx_bytes: u64) {
        let bucket = self.buckets.entry(key.fp).or_default();
        if bucket.iter().any(|e| e.key == key.bytes) {
            return; // another thread raced us to the same run
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        bucket.push(Entry {
            seq,
            key: key.bytes.clone(),
            value,
            approx_bytes,
        });
        self.order.push_back((key.fp, seq));
        self.entry_count += 1;
        self.total_bytes += approx_bytes;
        while self.entry_count > max_entries() || self.total_bytes > MAX_VALUE_BYTES {
            let Some((fp, old_seq)) = self.order.pop_front() else {
                break;
            };
            if let Some(bucket) = self.buckets.get_mut(&fp) {
                if let Some(i) = bucket.iter().position(|e| e.seq == old_seq) {
                    let evicted = bucket.swap_remove(i);
                    self.total_bytes -= evicted.approx_bytes;
                    self.entry_count -= 1;
                    EVICTIONS.fetch_add(1, Ordering::Relaxed);
                }
                if bucket.is_empty() {
                    self.buckets.remove(&fp);
                }
            }
        }
    }
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_SAVED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static BYPASS: Cell<bool> = const { Cell::new(false) };
}

/// True unless `FLM_RUNCACHE=0` disabled the cache process-wide.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("FLM_RUNCACHE").map_or(true, |v| v.trim() != "0"))
}

/// Runs `f` with the cache bypassed on *this thread* (nested scopes
/// included): lookups miss, results are not stored, and no counters move.
/// The reference mode for differential tests and cold-path benches.
pub fn bypass<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            BYPASS.with(|c| c.set(self.0));
        }
    }
    let previous = BYPASS.with(|c| c.replace(true));
    let _restore = Restore(previous);
    f()
}

/// True when the current thread is inside a [`bypass`] scope.
pub fn is_bypassed() -> bool {
    BYPASS.with(Cell::get)
}

fn active() -> bool {
    enabled() && !is_bypassed()
}

/// Returns the cached behavior for `key`, or executes `run`, stores its
/// success, and returns it. The error path is never cached.
///
/// # Errors
///
/// Whatever `run` returns; a cache hit never errors.
pub fn memoize_discrete<E>(
    key: &RunKey,
    run: impl FnOnce() -> Result<SystemBehavior, E>,
) -> Result<Arc<SystemBehavior>, E> {
    if !active() {
        return run().map(Arc::new);
    }
    {
        let mut store = store().lock().expect("run cache poisoned");
        if let Some((CachedValue::Discrete(b), approx)) = store.lookup_touch(key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_SAVED.fetch_add(approx, Ordering::Relaxed);
            return Ok(b);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let behavior = Arc::new(run()?);
    let approx = behavior.approx_bytes();
    store().lock().expect("run cache poisoned").insert(
        key,
        CachedValue::Discrete(Arc::clone(&behavior)),
        approx,
    );
    Ok(behavior)
}

/// [`memoize_discrete`] for clock-system runs.
///
/// # Errors
///
/// Whatever `run` returns; a cache hit never errors.
pub fn memoize_clock<E>(
    key: &RunKey,
    run: impl FnOnce() -> Result<ClockBehavior, E>,
) -> Result<Arc<ClockBehavior>, E> {
    if !active() {
        return run().map(Arc::new);
    }
    {
        let mut store = store().lock().expect("run cache poisoned");
        if let Some((CachedValue::Clock(b), approx)) = store.lookup_touch(key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_SAVED.fetch_add(approx, Ordering::Relaxed);
            return Ok(b);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let behavior = Arc::new(run()?);
    let approx = behavior.approx_bytes();
    store().lock().expect("run cache poisoned").insert(
        key,
        CachedValue::Clock(Arc::clone(&behavior)),
        approx,
    );
    Ok(behavior)
}

/// [`memoize_discrete`] for asynchronous runs. Callers key these under the
/// dedicated `"async"` domain (see [`RunKey::new`]), so an asynchronous
/// run can never alias a synchronous one even for an identical assembly:
/// the domain tag is part of the compared key bytes, and the cached value
/// type differs besides.
///
/// # Errors
///
/// Whatever `run` returns; a cache hit never errors.
pub fn memoize_async<E>(
    key: &RunKey,
    run: impl FnOnce() -> Result<AsyncRun, E>,
) -> Result<Arc<AsyncRun>, E> {
    if !active() {
        return run().map(Arc::new);
    }
    {
        let mut store = store().lock().expect("run cache poisoned");
        if let Some((CachedValue::Async(b), approx)) = store.lookup_touch(key) {
            HITS.fetch_add(1, Ordering::Relaxed);
            BYTES_SAVED.fetch_add(approx, Ordering::Relaxed);
            return Ok(b);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let outcome = Arc::new(run()?);
    let approx = outcome.approx_bytes();
    store().lock().expect("run cache poisoned").insert(
        key,
        CachedValue::Async(Arc::clone(&outcome)),
        approx,
    );
    Ok(outcome)
}

/// Drops every cached behavior (counters are kept; see [`reset_stats`]).
pub fn clear() {
    let mut store = store().lock().expect("run cache poisoned");
    *store = Store::default();
}

/// Zeroes the hit/miss/eviction/bytes-saved counters.
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
    BYTES_SAVED.store(0, Ordering::Relaxed);
}

/// A snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored behavior.
    pub hits: u64,
    /// Lookups that fell through to a real run.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Approximate behavior bytes served from the cache instead of being
    /// rebuilt by a run.
    pub bytes_saved: u64,
    /// Behaviors currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the current counters and entry count.
pub fn stats() -> CacheStats {
    let entries = store().lock().expect("run cache poisoned").entry_count;
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        bytes_saved: BYTES_SAVED.load(Ordering::Relaxed),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Input;
    use crate::{RunPolicy, System};
    use flm_graph::builders;

    fn run_triangle(seed: u64) -> Result<SystemBehavior, crate::system::SystemError> {
        let g = builders::triangle();
        let mut sys = System::new(g.clone());
        for v in g.nodes() {
            sys.assign(
                v,
                Box::new(crate::devices::TableDevice::new(seed ^ u64::from(v.0), 6)),
                Input::Bool(v.0 == 0),
            );
        }
        sys.run_contained(5, &RunPolicy::default())
    }

    fn key(tag: u64) -> RunKey {
        let mut w = crate::wire::Writer::new();
        w.u64(tag);
        RunKey::new("test", w.finish())
    }

    #[test]
    fn run_key_round_trips_through_its_bytes() {
        let original = key(42);
        let back = RunKey::from_bytes(original.bytes().to_vec());
        assert_eq!(back.bytes(), original.bytes());
        assert_eq!(back.fingerprint(), original.fingerprint());
    }

    #[test]
    fn fingerprint_is_fnv1a() {
        // Known FNV-1a vectors.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hit_returns_the_same_arc_and_counts() {
        clear();
        let k = key(0xA11CE);
        let first = memoize_discrete(&k, || run_triangle(1)).unwrap();
        let again = memoize_discrete::<&str>(&k, || panic!("must not re-run")).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let s = stats();
        assert!(s.hits >= 1 && s.bytes_saved > 0);
    }

    #[test]
    fn different_keys_do_not_alias() {
        clear();
        let a = memoize_discrete(&key(1), || run_triangle(1)).unwrap();
        let b = memoize_discrete(&key(2), || run_triangle(2)).unwrap();
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn colliding_fingerprints_fall_back_to_full_key_compare() {
        clear();
        // Two keys forced into the same bucket: identical fingerprint field
        // can only arise from distinct bytes via a real FNV collision, which
        // we simulate by inserting both and checking the probe compares
        // bytes, not fingerprints (same domain, different payload ⇒ distinct
        // bytes; equal-fp is the worst case the byte compare must survive).
        let k1 = key(7);
        let k2 = key(8);
        let a = memoize_discrete(&k1, || run_triangle(7)).unwrap();
        let b = memoize_discrete(&k2, || run_triangle(8)).unwrap();
        assert_ne!(a.edges(), b.edges());
        let a2 = memoize_discrete::<&str>(&k1, || panic!("hit expected")).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        drop(b);
    }

    #[test]
    fn bypass_scope_never_touches_the_store() {
        clear();
        reset_stats();
        let k = key(0xB1);
        let _ = bypass(|| memoize_discrete(&k, || run_triangle(3))).unwrap();
        assert!(!is_bypassed());
        assert_eq!(stats().entries, 0);
        // A later cached call must re-run (no entry was stored).
        let _ = memoize_discrete(&k, || run_triangle(3)).unwrap();
        assert_eq!(stats().entries, 1);
    }

    #[test]
    fn error_paths_are_not_cached() {
        clear();
        let k = key(0xE0);
        let r: Result<_, &str> = memoize_discrete(&k, || Err("boom"));
        assert!(r.is_err());
        assert_eq!(stats().entries, 0);
    }

    #[test]
    fn lru_eviction_bounds_the_store() {
        clear();
        for i in 0..(max_entries() as u64 + 40) {
            let _ = memoize_discrete(&key(0x1_0000 + i), || run_triangle(1)).unwrap();
        }
        let s = stats();
        assert!(s.entries <= max_entries());
        assert!(s.evictions >= 40);
        clear();
    }

    #[test]
    fn recently_hit_entries_survive_eviction_pressure() {
        // Direct `Store` test (no global state): fill to the cap, touch the
        // oldest entry, then push past the cap — the refreshed recency must
        // protect it while strictly older untouched entries go first.
        let mut store = Store::default();
        let value = CachedValue::Discrete(Arc::new(run_triangle(1).unwrap()));
        let hot = key(0x2_0000);
        store.insert(&hot, value.clone(), 1);
        for i in 1..max_entries() as u64 {
            store.insert(&key(0x2_0000 + i), value.clone(), 1);
        }
        assert!(store.lookup_touch(&hot).is_some());
        for i in 0..32 {
            store.insert(&key(0x3_0000 + i), value.clone(), 1);
        }
        assert!(store.lookup_touch(&hot).is_some(), "hot entry was evicted");
        assert!(store.entry_count <= max_entries());
    }

    #[test]
    fn cached_behavior_is_byte_identical_to_a_fresh_run() {
        clear();
        let k = key(0xD1FF);
        let cached = memoize_discrete(&k, || run_triangle(9)).unwrap();
        let fresh = run_triangle(9).unwrap();
        assert_eq!(cached.edges(), fresh.edges());
        for v in fresh.graph().nodes() {
            assert_eq!(cached.node(v), fresh.node(v));
        }
    }
}
