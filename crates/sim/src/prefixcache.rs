//! Run-prefix trie: incremental simulation by forking mid-run snapshots.
//!
//! The whole-run cache ([`crate::runcache`]) only pays off when two runs
//! are byte-identical end to end. The refuters' dominant workload is one
//! step weaker than that: chain-link extractions, all-correct ring pairs,
//! and campaign probes re-simulate systems whose *early ticks* are
//! identical and which diverge only near the end (a masquerade trace
//! perturbed at the final tick, a longer horizon, a different fault plan
//! tail). This module memoizes those shared prefixes.
//!
//! A run declares a [`PrefixSchedule`]: a `static` part (everything about
//! the run except the horizon and the per-tick masquerade trace contents)
//! plus one byte string per tick (the scripted nodes' pinned outputs for
//! that tick — empty for runs with no scripted nodes). While the SoA kernel
//! ([`crate::kernel`]) executes, it captures forkable [`TickSnapshot`]s at
//! a few tick boundaries; the trie stores them keyed by the incremental
//! fingerprint of `(static, ticks 0..t)`. The next run with the same
//! schedule prefix forks the deepest stored snapshot and simulates only
//! its divergent suffix.
//!
//! # Soundness
//!
//! Forking a snapshot at boundary `t` is sound exactly when the resumed
//! run would have executed ticks `0..t` identically — i.e. when the static
//! bytes and the tick bytes for `0..t` are equal. Fingerprints are an
//! index only: every probe compares the static bytes and each tick's bytes
//! piecewise, so FNV collisions (or a forged fingerprint) cannot alias two
//! different prefixes. Scripted nodes' devices are never forked or
//! restored — their outputs are pinned per tick by the schedule's tick
//! bytes, and a [`crate::replay::ReplayDevice`]'s `step` reads only the
//! tick index — so the restored system behaves identically from `t` on by
//! the determinism axiom. Quarantined nodes store no device either: the
//! restored quarantine flags keep them silent, same as in the original
//! run.
//!
//! Like the whole-run cache, the trie replaces simulation, never checking:
//! scenario matching, degradation accounting, and decision comparison all
//! still execute against the (byte-identical) resumed behavior.
//!
//! # Controls
//!
//! * `FLM_PREFIXCACHE=0` disables the trie process-wide.
//! * [`crate::runcache::bypass`] scopes cover this module too: inside a
//!   bypass scope, lookups miss, nothing is captured, and no counters move
//!   — so differential tests and cold bench legs stay genuinely cold.
//! * The store is bounded (`FLM_PREFIXCACHE_CAP` entries, default
//!   [`MAX_ENTRIES`]; [`MAX_SNAPSHOT_BYTES`] total) with LRU eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use flm_graph::NodeId;

use crate::behavior::SystemBehavior;
use crate::kernel::{CaptureSpec, TickSnapshot};
use crate::runcache::{self, RunKey};
use crate::system::{RunPolicy, System, SystemError};

/// Default maximum number of stored tick snapshots before LRU eviction.
/// Override with `FLM_PREFIXCACHE_CAP=<n>` (read once per process).
pub const MAX_ENTRIES: usize = 512;

/// Maximum total approximate snapshot bytes held before LRU eviction.
pub const MAX_SNAPSHOT_BYTES: u64 = 64 << 20;

/// How many capture boundaries a run plants, horizon permitting: snapshots
/// land at multiples of `max(1, horizon / STRIDE_DIVISOR)` plus the
/// horizon itself, so a divergent suffix re-simulates at most ~1/8 of the
/// run beyond the deepest shared boundary.
const STRIDE_DIVISOR: u32 = 8;

/// The prefix identity of a run: everything that determines its behavior,
/// split into a static part and per-tick parts so two runs can share the
/// ticks before their first divergence.
///
/// `static_bytes` must canonically encode every run ingredient except the
/// horizon and the tick-indexed masquerade trace contents: the graph, the
/// device assignment (protocol registry names), the wiring, the inputs,
/// the run policy, which nodes are scripted, and the shape of their
/// scripts. `tick_bytes[t]` holds the scripted nodes' pinned outputs for
/// tick `t` in a canonical order; trailing ticks may simply not be pushed
/// (missing ticks compare as empty), which is what lets a horizon-20 run
/// share a horizon-10 run's snapshots when neither scripts anything.
#[derive(Debug, Clone)]
pub struct PrefixSchedule {
    /// `static_bytes` plus the scripted-node list, length-delimited — the
    /// unit of static equality, so a schedule can never alias another with
    /// the same free-form bytes but a different scripted set.
    head: Vec<u8>,
    tick_bytes: Vec<Vec<u8>>,
    scripted: Vec<NodeId>,
}

impl PrefixSchedule {
    /// Builds a schedule from the static encoding and the scripted-node
    /// set (nodes whose devices replay pinned outputs; empty for honest or
    /// crash-only runs).
    pub fn new(static_bytes: Vec<u8>, scripted: Vec<NodeId>) -> PrefixSchedule {
        let mut head = Vec::with_capacity(static_bytes.len() + 8 + scripted.len() * 4);
        head.extend_from_slice(&(static_bytes.len() as u32).to_le_bytes());
        head.extend_from_slice(&static_bytes);
        head.extend_from_slice(&(scripted.len() as u32).to_le_bytes());
        for v in &scripted {
            head.extend_from_slice(&v.0.to_le_bytes());
        }
        PrefixSchedule {
            head,
            tick_bytes: Vec::new(),
            scripted,
        }
    }

    /// Appends tick `t`'s scripted outputs, where `t` is the number of
    /// ticks pushed so far. Runs with no scripted nodes push nothing.
    pub fn push_tick(&mut self, bytes: Vec<u8>) {
        self.tick_bytes.push(bytes);
    }

    /// The scripted nodes, for the kernel's capture spec.
    pub fn scripted(&self) -> &[NodeId] {
        &self.scripted
    }

    fn tick_at(&self, t: usize) -> &[u8] {
        self.tick_bytes.get(t).map_or(&[], Vec::as_slice)
    }

    /// Incremental FNV chain: `fps[t]` fingerprints `(head, ticks 0..t)`,
    /// each tick extended length-delimited. Index only — probes compare
    /// bytes.
    fn chain_fps(&self, up_to: u32) -> Vec<u64> {
        let mut fps = Vec::with_capacity(up_to as usize + 1);
        let mut h = fnv_extend(0xcbf2_9ce4_8422_2325, &self.head);
        fps.push(h);
        for t in 0..up_to as usize {
            let bytes = self.tick_at(t);
            h = fnv_extend(h, &(bytes.len() as u32).to_le_bytes());
            h = fnv_extend(h, bytes);
            fps.push(h);
        }
        fps
    }

    /// True when `self` and `other` agree on everything that determines
    /// ticks `0..t`: the head bytes and each tick's bytes, missing ticks
    /// reading as empty.
    fn shares_prefix(&self, other: &PrefixSchedule, t: u32) -> bool {
        self.head == other.head && (0..t as usize).all(|i| self.tick_at(i) == other.tick_at(i))
    }
}

fn fnv_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    seq: u64,
    boundary: u32,
    schedule: PrefixSchedule,
    snap: TickSnapshot,
    approx_bytes: u64,
}

#[derive(Default)]
struct Trie {
    buckets: HashMap<u64, Vec<Entry>>,
    next_seq: u64,
    entry_count: usize,
    total_bytes: u64,
}

impl Trie {
    /// Finds the deepest stored snapshot whose schedule prefix matches
    /// `schedule` at a boundary `<= horizon`, forks it, and re-stamps its
    /// recency. `fps` must be `schedule.chain_fps(horizon)`.
    fn deepest_fork(
        &mut self,
        schedule: &PrefixSchedule,
        fps: &[u64],
        horizon: u32,
    ) -> Option<TickSnapshot> {
        for t in (1..=horizon).rev() {
            let Some(bucket) = self.buckets.get_mut(&fps[t as usize]) else {
                continue;
            };
            let Some(entry) = bucket
                .iter_mut()
                .find(|e| e.boundary == t && e.schedule.shares_prefix(schedule, t))
            else {
                continue;
            };
            let Some(forked) = entry.snap.fork() else {
                continue;
            };
            entry.seq = self.next_seq;
            self.next_seq += 1;
            return Some(forked);
        }
        None
    }

    fn insert(&mut self, schedule: &PrefixSchedule, fp: u64, snap: TickSnapshot) {
        let boundary = snap.tick();
        let bucket = self.buckets.entry(fp).or_default();
        if bucket
            .iter()
            .any(|e| e.boundary == boundary && e.schedule.shares_prefix(schedule, boundary))
        {
            return; // another thread raced us to the same prefix
        }
        let approx_bytes = snap.approx_bytes() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        bucket.push(Entry {
            seq,
            boundary,
            schedule: schedule.clone(),
            snap,
            approx_bytes,
        });
        self.entry_count += 1;
        self.total_bytes += approx_bytes;
        while self.entry_count > max_entries() || self.total_bytes > MAX_SNAPSHOT_BYTES {
            // LRU by direct min-seq scan; the store is small (hundreds of
            // entries), so the scan beats maintaining a recency queue full
            // of stale pairs.
            let Some((&fp, i)) = self
                .buckets
                .iter()
                .flat_map(|(fp, b)| b.iter().enumerate().map(move |(i, e)| (fp, i, e.seq)))
                .min_by_key(|&(_, _, seq)| seq)
                .map(|(fp, i, _)| (fp, i))
            else {
                break;
            };
            let bucket = self.buckets.get_mut(&fp).expect("bucket just seen");
            let evicted = bucket.swap_remove(i);
            self.total_bytes -= evicted.approx_bytes;
            self.entry_count -= 1;
            EVICTIONS.fetch_add(1, Ordering::Relaxed);
            if bucket.is_empty() {
                self.buckets.remove(&fp);
            }
        }
    }
}

fn trie() -> &'static Mutex<Trie> {
    static TRIE: OnceLock<Mutex<Trie>> = OnceLock::new();
    TRIE.get_or_init(|| Mutex::new(Trie::default()))
}

/// Locks the global trie, recovering from poisoning the way the serve
/// plane's queues do (`PoisonError::into_inner`) instead of panicking.
/// A contained probe that panics while holding the lock may have left a
/// half-inserted entry behind, so recovery drops the whole store — the trie
/// is a cache, and an empty cache is always sound — and clears the poison
/// flag so later lockers skip this path. The alternative (`.expect`) turned
/// one panicking probe into a cascading panic for every later run in the
/// process, including all serve workers.
fn lock_trie() -> std::sync::MutexGuard<'static, Trie> {
    let mutex = trie();
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            *guard = Trie::default();
            mutex.clear_poison();
            guard
        }
    }
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static TICKS_SAVED: AtomicU64 = AtomicU64::new(0);

/// True unless `FLM_PREFIXCACHE=0` disabled the trie process-wide.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("FLM_PREFIXCACHE").map_or(true, |v| v.trim() != "0"))
}

/// The effective entry cap: `FLM_PREFIXCACHE_CAP` if set to a positive
/// integer, else [`MAX_ENTRIES`].
pub fn max_entries() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("FLM_PREFIXCACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(MAX_ENTRIES)
    })
}

fn active() -> bool {
    enabled() && !runcache::is_bypassed()
}

/// The capture plan for a run of `horizon` ticks resumed at `resumed`:
/// stride multiples past the resume point, plus the completion boundary
/// (so a later shorter-or-equal-horizon run can extract with zero ticks
/// re-simulated).
fn capture_plan(horizon: u32, resumed: u32) -> Vec<u32> {
    if horizon == 0 {
        return Vec::new();
    }
    let stride = (horizon / STRIDE_DIVISOR).max(1);
    let mut at: Vec<u32> = (1..=horizon / stride)
        .map(|k| k * stride)
        .filter(|&b| b > resumed)
        .collect();
    if at.last() != Some(&horizon) && horizon > resumed {
        at.push(horizon);
    }
    at
}

/// Memoizes a contained run at two levels: the whole-run cache first (a
/// byte-identical re-run costs a lookup), then the prefix trie (a run
/// sharing only a schedule prefix forks the deepest stored snapshot and
/// simulates the divergent suffix). `key` is the whole-run key exactly as
/// [`runcache::memoize_discrete`] expects; `schedule` is the same
/// information split for prefix sharing. `build` assembles the system only
/// when the whole-run cache misses.
///
/// # Errors
///
/// Whatever `build` returns, or a [`SystemError`] through `map_err`; a
/// cache hit never errors.
pub fn memoize_prefixed<E>(
    key: &RunKey,
    schedule: &PrefixSchedule,
    horizon: u32,
    policy: &RunPolicy,
    build: impl FnOnce() -> Result<System, E>,
    map_err: impl Fn(SystemError) -> E,
) -> Result<Arc<SystemBehavior>, E> {
    runcache::memoize_discrete(key, || {
        let mut sys = build()?;
        let horizon = horizon.min(policy.max_ticks);
        if !active() {
            return sys.run_contained(horizon, policy).map_err(&map_err);
        }
        let fps = schedule.chain_fps(horizon);
        let resume = lock_trie().deepest_fork(schedule, &fps, horizon);
        let resumed = resume.as_ref().map_or(0, TickSnapshot::tick);
        match &resume {
            Some(_) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                TICKS_SAVED.fetch_add(u64::from(resumed), Ordering::Relaxed);
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut scripted = vec![false; sys.graph().node_count()];
        for v in schedule.scripted() {
            scripted[v.index()] = true;
        }
        let at = capture_plan(horizon, resumed);
        let spec = CaptureSpec {
            at: &at,
            scripted: &scripted,
        };
        let (behavior, captures) = sys
            .run_contained_prefixed(horizon, policy, resume, Some(&spec))
            .map_err(&map_err)?;
        let mut trie = lock_trie();
        for snap in captures {
            trie.insert(schedule, fps[snap.tick() as usize], snap);
        }
        Ok(behavior)
    })
}

/// Drops every stored snapshot (counters are kept; see [`reset_stats`]).
pub fn clear() {
    let mut trie = lock_trie();
    *trie = Trie::default();
}

/// Zeroes the hit/miss/eviction/ticks-saved counters.
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
    TICKS_SAVED.store(0, Ordering::Relaxed);
}

/// A snapshot of the trie counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixStats {
    /// Runs that resumed from a stored snapshot.
    pub hits: u64,
    /// Runs that found no shareable prefix and simulated from tick 0.
    pub misses: u64,
    /// Snapshots dropped by the LRU bound.
    pub evictions: u64,
    /// Total ticks skipped by resuming instead of re-simulating.
    pub ticks_saved: u64,
    /// Snapshots currently stored.
    pub entries: usize,
}

/// Reads the current counters and entry count.
pub fn stats() -> PrefixStats {
    let entries = lock_trie().entry_count;
    PrefixStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        ticks_saved: TICKS_SAVED.load(Ordering::Relaxed),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(static_tag: u8, ticks: &[&[u8]]) -> PrefixSchedule {
        let mut s = PrefixSchedule::new(vec![static_tag], vec![NodeId(0)]);
        for t in ticks {
            s.push_tick(t.to_vec());
        }
        s
    }

    #[test]
    fn chain_fingerprints_are_incremental_and_horizon_agnostic() {
        let a = schedule(1, &[b"x", b"y"]);
        let long = a.chain_fps(6);
        let short = a.chain_fps(3);
        assert_eq!(&long[..4], &short[..]);
        // Missing ticks read as empty: pushing an explicit empty tick
        // keeps the chain identical.
        let b = schedule(1, &[b"x", b"y", b""]);
        assert_eq!(a.chain_fps(4), b.chain_fps(4));
    }

    #[test]
    fn shared_prefixes_match_only_up_to_the_divergence() {
        let a = schedule(1, &[b"x", b"y", b"z"]);
        let b = schedule(1, &[b"x", b"y", b"w"]);
        assert!(a.shares_prefix(&b, 2));
        assert!(!a.shares_prefix(&b, 3));
        assert_eq!(a.chain_fps(3)[2], b.chain_fps(3)[2]);
        assert_ne!(a.chain_fps(3)[3], b.chain_fps(3)[3]);
    }

    #[test]
    fn differing_static_bytes_never_share() {
        let a = schedule(1, &[]);
        let b = schedule(2, &[]);
        assert!(!a.shares_prefix(&b, 0));
        // Same free-form bytes, different scripted set: also disjoint.
        let c = PrefixSchedule::new(vec![1], vec![NodeId(0)]);
        let d = PrefixSchedule::new(vec![1], vec![NodeId(1)]);
        assert!(!c.shares_prefix(&d, 0));
    }

    #[test]
    fn forged_fingerprint_collisions_are_rejected_by_byte_compare() {
        // Plant an entry under schedule `a`'s boundary-2 fingerprint, then
        // probe with a schedule that diverges at tick 0 but whose entry we
        // force into the same bucket — the piecewise byte compare must
        // refuse it even though the fingerprint index matches.
        let a = schedule(1, &[b"x", b"y"]);
        let b = schedule(1, &[b"q", b"y"]);
        let fp = a.chain_fps(2)[2];
        let mut trie = Trie::default();
        trie.buckets.entry(fp).or_default().push(Entry {
            seq: 0,
            boundary: 2,
            schedule: a.clone(),
            // A dead snapshot is fine: the byte compare must reject before
            // forking is even attempted.
            snap: crate::kernel::TickSnapshot::empty_for_tests(2),
            approx_bytes: 0,
        });
        trie.entry_count = 1;
        let forged_fps = vec![fp; 3];
        assert!(trie.deepest_fork(&b, &forged_fps, 2).is_none());
        // The honest owner still matches its own entry.
        assert!(trie
            .buckets
            .get(&fp)
            .is_some_and(|bucket| bucket[0].schedule.shares_prefix(&a, 2)));
    }

    /// Regression: a probe that panics while holding the trie lock used to
    /// poison it for the rest of the process — every later run (including
    /// every serve worker) then panicked in `.expect("prefix trie
    /// poisoned")`. Recovery resets the store and clears the poison flag.
    #[test]
    fn poisoned_trie_recovers_instead_of_cascading() {
        // Poison the global trie exactly the way a panicking contained
        // probe would: unwind while the lock is held.
        let _ = std::thread::spawn(|| {
            let _guard = trie()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("poisoning the prefix trie on purpose");
        })
        .join();

        // Every entry point must recover (drop the store, clear the
        // poison) instead of cascading the panic.
        let _ = stats();
        clear();

        // And a full prefix-memoized run still succeeds end to end,
        // repopulating the recovered trie.
        let g = flm_graph::builders::triangle();
        let key = RunKey::new("prefixpoison", b"recovery".to_vec());
        let schedule = PrefixSchedule::new(b"prefixpoison-recovery".to_vec(), vec![]);
        memoize_prefixed(
            &key,
            &schedule,
            8,
            &RunPolicy::default(),
            || {
                let mut sys = System::new(g.clone());
                for v in g.nodes() {
                    sys.assign(
                        v,
                        Box::new(crate::devices::TableDevice::new(u64::from(v.0), 16)),
                        crate::Input::Bool(true),
                    );
                }
                Ok::<_, SystemError>(sys)
            },
            |e| e,
        )
        .expect("a run after poison recovery must succeed");
    }

    #[test]
    fn capture_plan_strides_and_always_includes_completion() {
        assert_eq!(capture_plan(0, 0), Vec::<u32>::new());
        assert_eq!(capture_plan(5, 0), vec![1, 2, 3, 4, 5]);
        assert_eq!(capture_plan(16, 0), vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(capture_plan(17, 0), vec![2, 4, 6, 8, 10, 12, 14, 16, 17]);
        // Resumed runs only capture boundaries past the resume point.
        assert_eq!(capture_plan(16, 10), vec![12, 14, 16]);
        assert_eq!(capture_plan(16, 16), Vec::<u32>::new());
    }
}
